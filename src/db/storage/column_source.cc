#include "db/storage/column_source.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "db/storage/paged_table.h"

namespace dl2sql::db::storage {

namespace {

class ResidentSource : public ColumnSource {
 public:
  ResidentSource(TablePtr table, int64_t window_rows)
      : table_(std::move(table)),
        window_rows_(window_rows > 0 ? window_rows : table_->num_rows()) {
    if (window_rows_ <= 0) window_rows_ = 1;  // empty table: one empty window
  }

  int64_t num_rows() const override { return table_->num_rows(); }
  int64_t num_windows() const override {
    return std::max<int64_t>(
        (table_->num_rows() + window_rows_ - 1) / window_rows_, 1);
  }
  int64_t window_start(int64_t w) const override { return w * window_rows_; }
  int64_t window_rows(int64_t w) const override {
    return std::min(window_rows_, table_->num_rows() - window_start(w));
  }
  Result<Table> ReadWindow(int64_t w) const override {
    if (num_windows() == 1 && window_start(0) == 0) {
      return *table_;  // COW column share, no copy
    }
    std::vector<int64_t> idx(static_cast<size_t>(window_rows(w)));
    std::iota(idx.begin(), idx.end(), window_start(w));
    return table_->TakeRows(idx);
  }

 private:
  TablePtr table_;
  int64_t window_rows_;
};

class PagedSource : public ColumnSource {
 public:
  explicit PagedSource(TablePtr table) : table_(std::move(table)) {}

  int64_t num_rows() const override { return table_->num_rows(); }
  int64_t num_windows() const override {
    return std::max<int64_t>(table_->paged()->num_chunks(), 1);
  }
  int64_t window_start(int64_t w) const override {
    const auto& paged = *table_->paged();
    return paged.num_chunks() == 0 ? 0 : paged.chunk_first_row(w);
  }
  int64_t window_rows(int64_t w) const override {
    const auto& paged = *table_->paged();
    return paged.num_chunks() == 0 ? 0 : paged.chunk_rows(w);
  }
  Result<Table> ReadWindow(int64_t w) const override {
    const auto& paged = *table_->paged();
    if (paged.num_chunks() == 0) return Table(table_->schema());
    DL2SQL_ASSIGN_OR_RETURN(std::vector<Column> cols, paged.ReadChunk(w));
    return Table::FromColumns(table_->schema(), std::move(cols));
  }

 private:
  TablePtr table_;
};

}  // namespace

std::unique_ptr<ColumnSource> MakeColumnSource(const TablePtr& table,
                                               int64_t window_rows_hint) {
  if (table->is_paged()) {
    return std::make_unique<PagedSource>(table);
  }
  return std::make_unique<ResidentSource>(table, window_rows_hint);
}

}  // namespace dl2sql::db::storage
