#include "db/storage/storage_engine.h"

#include <stdio.h>
#include <stdlib.h>
#include <sys/resource.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/metrics.h"

namespace dl2sql::db::storage {

namespace {

// Parses a positive integer env var; returns `fallback` (warning logged) on
// absent or unparseable values, mirroring the DL2SQL_VECTOR-style gates.
int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* v = ::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = ::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || parsed <= 0) {
    DL2SQL_LOG(Warning) << name << "='" << v
                        << "' is not a positive integer; using " << fallback;
    return fallback;
  }
  return parsed;
}

}  // namespace

StorageOptions StorageOptions::FromEnv() {
  StorageOptions o;
  o.pool_bytes = static_cast<size_t>(
      EnvInt64("DL2SQL_BUFFER_POOL_BYTES", static_cast<int64_t>(o.pool_bytes)));
  o.page_min_bytes = static_cast<size_t>(EnvInt64(
      "DL2SQL_PAGE_MIN_BYTES", static_cast<int64_t>(o.page_min_bytes)));
  o.spill_partitions = static_cast<int>(
      EnvInt64("DL2SQL_SPILL_PARTITIONS", o.spill_partitions));
  const char* dir = ::getenv("DL2SQL_STORAGE_DIR");
  if (dir != nullptr && *dir != '\0') o.dir = dir;
  return o;
}

Result<std::shared_ptr<StorageEngine>> StorageEngine::Create(
    const StorageOptions& options) {
  if (options.block_bytes == 0 || options.chunk_rows <= 0 ||
      options.shards <= 0 || options.spill_partitions <= 0) {
    return Status::InvalidArgument(
        "StorageOptions: block_bytes, chunk_rows, shards, and "
        "spill_partitions must all be positive");
  }
  DL2SQL_ASSIGN_OR_RETURN(auto file,
                          BlockFile::Open(options.dir, options.block_bytes));
  return std::shared_ptr<StorageEngine>(
      new StorageEngine(options, std::move(file)));
}

StorageEngine::StorageEngine(StorageOptions options,
                             std::unique_ptr<BlockFile> file)
    : options_(std::move(options)), file_(std::move(file)) {
  pool_ = std::make_unique<BufferPool>(file_.get(), options_.pool_bytes,
                                       options_.shards);
}

std::vector<int64_t> StorageEngine::AllocateBlocks(int64_t n) {
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.push_back(file_->Allocate());
  return out;
}

void StorageEngine::FreeBlocks(const std::vector<int64_t>& blocks) {
  pool_->Discard(blocks);
  for (const int64_t b : blocks) file_->Free(b);
}

void StorageEngine::UpdateMetrics() {
  auto& reg = MetricsRegistry::Global();
  const BufferPool::Stats s = pool_->stats();
  reg.gauge("storage.pool.frames")->Set(static_cast<double>(s.frames));
  reg.gauge("storage.pool.frame_bytes")
      ->Set(static_cast<double>(s.frame_bytes));
  reg.gauge("storage.pool.pinned")->Set(static_cast<double>(s.pinned));
  reg.gauge("storage.pool.dirty")->Set(static_cast<double>(s.dirty));
  reg.gauge("storage.pool.budget_bytes")
      ->Set(static_cast<double>(s.budget_bytes));
  reg.gauge("storage.pool.hits")->Set(static_cast<double>(s.hits));
  reg.gauge("storage.pool.misses")->Set(static_cast<double>(s.misses));
  reg.gauge("storage.pool.evictions")->Set(static_cast<double>(s.evictions));
  reg.gauge("storage.pool.writebacks")->Set(static_cast<double>(s.writebacks));
  reg.gauge("storage.file.allocated_blocks")
      ->Set(static_cast<double>(file_->allocated_blocks()));
  reg.gauge("storage.file.bytes")
      ->Set(static_cast<double>(file_->file_blocks()) *
            static_cast<double>(file_->block_bytes()));
  UpdateProcessRssMetrics();
}

int64_t StorageEngine::UpdateProcessRssMetrics() {
  int64_t rss_bytes = 0;
  if (FILE* f = ::fopen("/proc/self/statm", "r")) {
    long long size_pages = 0, rss_pages = 0;
    if (::fscanf(f, "%lld %lld", &size_pages, &rss_pages) == 2) {
      rss_bytes = static_cast<int64_t>(rss_pages) * ::sysconf(_SC_PAGESIZE);
    }
    ::fclose(f);
  }
  int64_t peak_bytes = 0;
  struct rusage ru;
  if (::getrusage(RUSAGE_SELF, &ru) == 0) {
    peak_bytes = static_cast<int64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
  }
  auto& reg = MetricsRegistry::Global();
  if (rss_bytes > 0) {
    reg.gauge("process.rss_bytes")->Set(static_cast<double>(rss_bytes));
  }
  if (peak_bytes > 0) {
    reg.gauge("process.peak_rss_bytes")->Set(static_cast<double>(peak_bytes));
  }
  return rss_bytes;
}

}  // namespace dl2sql::db::storage
