#include "db/storage/buffer_pool.h"

#include <string.h>

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/cache.h"
#include "common/logging.h"

namespace dl2sql::db::storage {

struct BufferPool::Frame {
  int64_t block = -1;       ///< block id cached here, -1 = free slot
  int pins = 0;
  bool dirty = false;
  bool referenced = false;  ///< clock second-chance bit
  std::vector<char> data;
};

struct BufferPool::Shard {
  mutable std::mutex mu;
  std::vector<Frame> frames;
  std::unordered_map<int64_t, int> block_to_frame;
  std::vector<int> free_frames;  ///< slots whose block == -1 (data released)
  size_t clock_hand = 0;
  // The budget is enforced with this plain counter, NOT with
  // MemTracker::TryConsume: the tracker gate (DL2SQL_MEM_TRACKER=OFF) must
  // not turn off the frame cap — bounded residency is a functional property.
  // The tracker mirrors the counter for system.metrics / profiles only.
  int64_t charged_bytes = 0;
  int64_t limit_bytes = 0;
  std::unique_ptr<MemTracker> tracker;
  // stats
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t writebacks = 0;
};

BufferPool::BufferPool(BlockFile* file, size_t budget_bytes, int shards)
    : file_(file),
      budget_(std::max(budget_bytes, file->block_bytes() *
                                         static_cast<size_t>(std::max(shards, 1)))) {
  const int n = std::max(shards, 1);
  tracker_ = std::make_unique<MemTracker>("storage.buffer_pool",
                                          MemTracker::Process(),
                                          static_cast<int64_t>(budget_));
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->limit_bytes = static_cast<int64_t>(budget_ / n);
    s->tracker = std::make_unique<MemTracker>(
        "storage.buffer_pool.shard" + std::to_string(i), tracker_.get());
    shards_.push_back(std::move(s));
  }
}

BufferPool::~BufferPool() {
  // Best-effort flush so a durability-minded caller who forgot FlushAll
  // still gets its dirty spill data on disk; errors are unreportable here.
  (void)FlushAll();
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (Frame& f : s->frames) {
      DL2SQL_CHECK(f.pins == 0) << "BufferPool destroyed with pinned frames";
    }
    s->frames.clear();
    s->tracker->Release(s->charged_bytes);
    s->charged_bytes = 0;
  }
}

int BufferPool::ShardOf(int64_t block) const {
  return static_cast<int>(Hash64(&block, sizeof(block)) % shards_.size());
}

Result<int> BufferPool::AcquireFrameLocked(Shard& s) {
  const int64_t bytes = static_cast<int64_t>(file_->block_bytes());
  // Admit a new frame under budget; the first frame of a shard is admitted
  // unconditionally so a sub-block budget still makes progress.
  if (s.charged_bytes + bytes <= s.limit_bytes || s.charged_bytes == 0) {
    s.charged_bytes += bytes;
    s.tracker->Consume(bytes);
    int idx;
    if (!s.free_frames.empty()) {
      idx = s.free_frames.back();
      s.free_frames.pop_back();
    } else {
      s.frames.emplace_back();
      idx = static_cast<int>(s.frames.size()) - 1;
    }
    s.frames[idx].data.resize(file_->block_bytes());
    return idx;
  }
  // Budget exhausted: evict an unpinned frame, clock second-chance. The
  // victim's charge transfers with the frame. Two full sweeps — the first
  // may only clear reference bits.
  for (size_t step = 0; step < 2 * s.frames.size(); ++step) {
    Frame& f = s.frames[s.clock_hand];
    const size_t here = s.clock_hand;
    s.clock_hand = (s.clock_hand + 1) % s.frames.size();
    if (f.block < 0 || f.pins > 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    if (f.dirty) {
      DL2SQL_RETURN_NOT_OK(file_->Write(f.block, f.data.data()));
      f.dirty = false;
      ++s.writebacks;
    }
    s.block_to_frame.erase(f.block);
    f.block = -1;
    ++s.evictions;
    return static_cast<int>(here);
  }
  return Status::ResourceExhausted(
      "buffer pool shard has all ", s.frames.size(),
      " frames pinned and no budget for more (pool budget ", budget_,
      " bytes)");
}

Result<int> BufferPool::PinLocked(Shard& s, int64_t block) {
  auto it = s.block_to_frame.find(block);
  if (it != s.block_to_frame.end()) {
    Frame& f = s.frames[it->second];
    ++f.pins;
    f.referenced = true;
    ++s.hits;
    return it->second;
  }
  ++s.misses;
  DL2SQL_ASSIGN_OR_RETURN(const int idx, AcquireFrameLocked(s));
  Frame& f = s.frames[idx];
  DL2SQL_RETURN_NOT_OK(file_->Read(block, f.data.data()));
  f.block = block;
  f.pins = 1;
  f.dirty = false;
  f.referenced = true;
  s.block_to_frame.emplace(block, idx);
  return idx;
}

Result<PinnedBlock> BufferPool::Pin(int64_t block) {
  const int si = ShardOf(block);
  Shard& s = *shards_[si];
  std::lock_guard<std::mutex> lock(s.mu);
  DL2SQL_ASSIGN_OR_RETURN(const int idx, PinLocked(s, block));
  Frame& f = s.frames[idx];
  return PinnedBlock(this, si, idx, f.data.data(), f.data.size());
}

Status BufferPool::Put(int64_t block, const char* data, size_t len) {
  if (len > file_->block_bytes()) {
    return Status::InvalidArgument("Put of ", len, " bytes exceeds block size ",
                                   file_->block_bytes());
  }
  const int si = ShardOf(block);
  Shard& s = *shards_[si];
  std::lock_guard<std::mutex> lock(s.mu);
  int idx;
  auto it = s.block_to_frame.find(block);
  if (it != s.block_to_frame.end()) {
    idx = it->second;
  } else {
    ++s.misses;
    auto acquired = AcquireFrameLocked(s);
    if (!acquired.ok()) {
      // No frame available: write through to the file directly. The caller's
      // data is complete, so the cache is an optimization here, not a need.
      std::vector<char> padded(file_->block_bytes(), 0);
      ::memcpy(padded.data(), data, len);
      return file_->Write(block, padded.data());
    }
    idx = *acquired;
    Frame& f = s.frames[idx];
    f.block = block;
    f.pins = 0;
    s.block_to_frame.emplace(block, idx);
  }
  Frame& f = s.frames[idx];
  ::memcpy(f.data.data(), data, len);
  if (len < f.data.size()) {
    ::memset(f.data.data() + len, 0, f.data.size() - len);
  }
  f.dirty = true;
  f.referenced = true;
  return Status::OK();
}

void BufferPool::Discard(const std::vector<int64_t>& blocks) {
  for (const int64_t block : blocks) {
    Shard& s = *shards_[ShardOf(block)];
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.block_to_frame.find(block);
    if (it == s.block_to_frame.end()) continue;
    Frame& f = s.frames[it->second];
    DL2SQL_CHECK(f.pins == 0) << "Discard of a pinned block";
    f.block = -1;
    f.dirty = false;
    f.referenced = false;
    // Release the buffer itself, not just the charge — freed slots must not
    // hold memory the counter no longer accounts for.
    f.data.clear();
    f.data.shrink_to_fit();
    s.free_frames.push_back(it->second);
    s.block_to_frame.erase(it);
    const int64_t bytes = static_cast<int64_t>(file_->block_bytes());
    s.charged_bytes -= bytes;
    s.tracker->Release(bytes);
  }
}

Status BufferPool::FlushAll() {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    for (Frame& f : s.frames) {
      if (f.block < 0 || !f.dirty) continue;
      DL2SQL_RETURN_NOT_OK(file_->Write(f.block, f.data.data()));
      f.dirty = false;
      ++s.writebacks;
    }
  }
  return Status::OK();
}

BufferPool::Stats BufferPool::stats() const {
  Stats out;
  out.budget_bytes = static_cast<int64_t>(budget_);
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    for (const Frame& f : s.frames) {
      if (f.block < 0) continue;
      ++out.frames;
      if (f.pins > 0) ++out.pinned;
      if (f.dirty) ++out.dirty;
    }
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.writebacks += s.writebacks;
  }
  out.frame_bytes = out.frames * static_cast<int64_t>(file_->block_bytes());
  return out;
}

void BufferPool::Unpin(int shard, int frame) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  Frame& f = s.frames[frame];
  DL2SQL_CHECK(f.pins > 0) << "Unpin underflow";
  --f.pins;
}

PinnedBlock& PinnedBlock::operator=(PinnedBlock&& o) noexcept {
  if (this != &o) {
    if (pool_ != nullptr) pool_->Unpin(shard_, frame_);
    pool_ = o.pool_;
    shard_ = o.shard_;
    frame_ = o.frame_;
    data_ = o.data_;
    size_ = o.size_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
    o.size_ = 0;
  }
  return *this;
}

PinnedBlock::~PinnedBlock() {
  if (pool_ != nullptr) pool_->Unpin(shard_, frame_);
}

}  // namespace dl2sql::db::storage
