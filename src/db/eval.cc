#include "db/eval.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "accel/thread_pool.h"
#include "common/cache.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "db/exec/vector_filter.h"

namespace dl2sql::db {

namespace {

// ------------------------------------------------------ nUDF result cache ----

/// Appends a collision-free encoding of one nUDF argument to the key buffer
/// (same layout idea as row_key.h, but over Values: 1 type byte + payload).
void AppendValueKeyPart(const Value& v, std::string* out) {
  switch (v.type()) {
    case DataType::kNull:
      out->push_back('\x00');
      return;
    case DataType::kBool:
      out->push_back('\x01');
      out->push_back(v.bool_value() ? '\x01' : '\x00');
      return;
    case DataType::kInt64: {
      out->push_back('\x02');
      const int64_t i = v.int_value();
      out->append(reinterpret_cast<const char*>(&i), sizeof(i));
      return;
    }
    case DataType::kFloat64: {
      out->push_back('\x03');
      const double d = v.float_value();
      out->append(reinterpret_cast<const char*>(&d), sizeof(d));
      return;
    }
    case DataType::kString:
    case DataType::kBlob: {
      out->push_back(v.type() == DataType::kString ? '\x04' : '\x05');
      const std::string& s = v.string_value();
      const uint32_t len = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
      return;
    }
  }
}

/// Cache key of one invocation: model fingerprint x serialized argument row.
/// `buf` is reused across rows to avoid per-row allocations.
uint64_t NudfRowKey(uint64_t fingerprint, const std::vector<Value>& row,
                    std::string* buf) {
  buf->clear();
  for (const Value& v : row) AppendValueKeyPart(v, buf);
  return HashCombine(fingerprint, Hash64(*buf));
}

/// Approximate heap footprint of a memoized result Value.
size_t ValueCacheCharge(const Value& v) {
  size_t charge = sizeof(Value) + 2 * sizeof(void*);  // entry bookkeeping
  if (v.type() == DataType::kString || v.type() == DataType::kBlob) {
    charge += v.string_value().size();
  }
  return charge;
}

/// Memoization applies only to neural bodies that declared a model
/// fingerprint (pure functions of their arguments); fingerprint 0 keeps
/// stateful or hand-registered bodies on the uncached path.
bool NudfCacheActive(const ScalarUdf* udf, const EvalContext* ctx) {
  return ctx != nullptr && ctx->nudf_cache != nullptr && udf->is_neural &&
         udf->neural.fingerprint != 0;
}

int64_t MorselSizeOf(const EvalContext* ctx) {
  return ctx != nullptr && ctx->morsel_size > 0 ? ctx->morsel_size
                                                : ThreadPool::kDefaultMorselSize;
}

/// Runs `fn` over [0, n) in morsels, on the context's pool when one is wired.
/// Morsel boundaries are identical with and without a pool, so kernels that
/// keep per-morsel output buffers produce bit-identical results in both modes.
Status ForEachMorsel(EvalContext* ctx, int64_t n, const ThreadPool::MorselFn& fn) {
  const int64_t m = MorselSizeOf(ctx);
  if (ctx != nullptr && ctx->pool != nullptr) {
    return ctx->pool->ParallelForMorsel(n, m, fn);
  }
  for (int64_t b = 0; b < n; b += m) {
    DL2SQL_RETURN_NOT_OK(fn(b, std::min(n, b + m), 0));
  }
  return Status::OK();
}

ColumnHandle Own(Column c) {
  return std::make_shared<const Column>(std::move(c));
}

/// Non-owning alias to a column that outlives the evaluation.
ColumnHandle Alias(const Column& c) {
  return ColumnHandle(std::shared_ptr<const void>(), &c);
}

Column BroadcastValue(const Value& v, int64_t n) {
  DataType t = v.type();
  if (t == DataType::kNull) t = DataType::kFloat64;  // arbitrary carrier
  Column c(t);
  c.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    // Append of a NULL into any typed column marks invalid.
    (void)c.Append(v);
  }
  return c;
}

bool BothNumericNoNulls(const Column& a, const Column& b) {
  return IsNumeric(a.type()) && IsNumeric(b.type()) && !a.HasNulls() &&
         !b.HasNulls();
}

/// Reads a numeric column element as double without Value boxing.
inline double NumAt(const Column& c, int64_t i) {
  return c.type() == DataType::kInt64
             ? static_cast<double>(c.ints()[static_cast<size_t>(i)])
             : c.floats()[static_cast<size_t>(i)];
}

}  // namespace

Result<Value> EvalValueBinary(BinaryOp op, const Value& l, const Value& r) {
  // Logical connectives use three-valued logic.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    auto as_tri = [](const Value& v) -> Result<int> {
      if (v.is_null()) return -1;
      if (v.type() != DataType::kBool) {
        return Status::TypeError("logical operand must be BOOL, got ",
                                 DataTypeToString(v.type()));
      }
      return v.bool_value() ? 1 : 0;
    };
    DL2SQL_ASSIGN_OR_RETURN(int a, as_tri(l));
    DL2SQL_ASSIGN_OR_RETURN(int b, as_tri(r));
    if (op == BinaryOp::kAnd) {
      if (a == 0 || b == 0) return Value::Bool(false);
      if (a == -1 || b == -1) return Value::Null();
      return Value::Bool(true);
    }
    if (a == 1 || b == 1) return Value::Bool(true);
    if (a == -1 || b == -1) return Value::Null();
    return Value::Bool(false);
  }

  if (l.is_null() || r.is_null()) return Value::Null();

  if (IsComparison(op)) {
    const int c = l.Compare(r);
    switch (op) {
      case BinaryOp::kEq:
        return Value::Bool(c == 0);
      case BinaryOp::kNe:
        return Value::Bool(c != 0);
      case BinaryOp::kLt:
        return Value::Bool(c < 0);
      case BinaryOp::kLe:
        return Value::Bool(c <= 0);
      case BinaryOp::kGt:
        return Value::Bool(c > 0);
      case BinaryOp::kGe:
        return Value::Bool(c >= 0);
      default:
        break;
    }
  }

  // Arithmetic.
  if (op == BinaryOp::kMod) {
    DL2SQL_ASSIGN_OR_RETURN(int64_t a, l.AsInt());
    DL2SQL_ASSIGN_OR_RETURN(int64_t b, r.AsInt());
    if (b == 0) return Status::InvalidArgument("modulo by zero");
    return Value::Int(a % b);
  }
  if (op == BinaryOp::kDiv) {
    DL2SQL_ASSIGN_OR_RETURN(double a, l.AsDouble());
    DL2SQL_ASSIGN_OR_RETURN(double b, r.AsDouble());
    // ClickHouse semantics: division always yields a float; x/0 -> inf.
    return Value::Float(a / b);
  }
  const bool both_int =
      l.type() == DataType::kInt64 && r.type() == DataType::kInt64;
  if (both_int) {
    const int64_t a = l.int_value();
    const int64_t b = r.int_value();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int(a + b);
      case BinaryOp::kSub:
        return Value::Int(a - b);
      case BinaryOp::kMul:
        return Value::Int(a * b);
      default:
        break;
    }
  }
  DL2SQL_ASSIGN_OR_RETURN(double a, l.AsDouble());
  DL2SQL_ASSIGN_OR_RETURN(double b, r.AsDouble());
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Float(a + b);
    case BinaryOp::kSub:
      return Value::Float(a - b);
    case BinaryOp::kMul:
      return Value::Float(a * b);
    default:
      break;
  }
  return Status::InternalError("unhandled binary op");
}

namespace {

/// Vectorized arithmetic/comparison fast path for null-free numeric columns.
/// All branches write disjoint slots of a preallocated output vector, so the
/// morsel loop parallelizes without synchronization.
Result<ColumnHandle> FastBinary(BinaryOp op, const Column& a, const Column& b,
                                EvalContext* ctx) {
  const int64_t n = a.size();
  if (IsComparison(op)) {
    std::vector<uint8_t> out(static_cast<size_t>(n));
    DL2SQL_RETURN_NOT_OK(
        ForEachMorsel(ctx, n, [&](int64_t bgn, int64_t end, int) {
          for (int64_t i = bgn; i < end; ++i) {
            const double x = NumAt(a, i);
            const double y = NumAt(b, i);
            bool v = false;
            switch (op) {
              case BinaryOp::kEq:
                v = x == y;
                break;
              case BinaryOp::kNe:
                v = x != y;
                break;
              case BinaryOp::kLt:
                v = x < y;
                break;
              case BinaryOp::kLe:
                v = x <= y;
                break;
              case BinaryOp::kGt:
                v = x > y;
                break;
              case BinaryOp::kGe:
                v = x >= y;
                break;
              default:
                break;
            }
            out[static_cast<size_t>(i)] = v ? 1 : 0;
          }
          return Status::OK();
        }));
    return Own(Column::Bools(std::move(out)));
  }
  const bool both_int = a.type() == DataType::kInt64 &&
                        b.type() == DataType::kInt64 && op != BinaryOp::kDiv;
  if (both_int) {
    std::vector<int64_t> out(static_cast<size_t>(n));
    const auto& xa = a.ints();
    const auto& xb = b.ints();
    DL2SQL_RETURN_NOT_OK(
        ForEachMorsel(ctx, n, [&](int64_t bgn, int64_t end, int) -> Status {
          switch (op) {
            case BinaryOp::kAdd:
              for (int64_t i = bgn; i < end; ++i) out[i] = xa[i] + xb[i];
              break;
            case BinaryOp::kSub:
              for (int64_t i = bgn; i < end; ++i) out[i] = xa[i] - xb[i];
              break;
            case BinaryOp::kMul:
              for (int64_t i = bgn; i < end; ++i) out[i] = xa[i] * xb[i];
              break;
            case BinaryOp::kMod:
              for (int64_t i = bgn; i < end; ++i) {
                if (xb[i] == 0) return Status::InvalidArgument("modulo by zero");
                out[i] = xa[i] % xb[i];
              }
              break;
            default:
              return Status::InternalError("unhandled int binary op");
          }
          return Status::OK();
        }));
    return Own(Column::Ints(std::move(out)));
  }
  std::vector<double> out(static_cast<size_t>(n));
  DL2SQL_RETURN_NOT_OK(
      ForEachMorsel(ctx, n, [&](int64_t bgn, int64_t end, int) -> Status {
        for (int64_t i = bgn; i < end; ++i) {
          const double x = NumAt(a, i);
          const double y = NumAt(b, i);
          switch (op) {
            case BinaryOp::kAdd:
              out[static_cast<size_t>(i)] = x + y;
              break;
            case BinaryOp::kSub:
              out[static_cast<size_t>(i)] = x - y;
              break;
            case BinaryOp::kMul:
              out[static_cast<size_t>(i)] = x * y;
              break;
            case BinaryOp::kDiv:
              out[static_cast<size_t>(i)] = x / y;
              break;
            case BinaryOp::kMod:
              out[static_cast<size_t>(i)] = std::fmod(x, y);
              break;
            default:
              return Status::InternalError("unhandled float binary op");
          }
        }
        return Status::OK();
      }));
  return Own(Column::Floats(std::move(out)));
}

/// Vectorized string comparison fast path (morsel-parallel, disjoint writes).
Result<ColumnHandle> FastStringCompare(BinaryOp op, const Column& a,
                                       const Column& b, EvalContext* ctx) {
  const int64_t n = a.size();
  std::vector<uint8_t> out(static_cast<size_t>(n));
  const auto& xa = a.strings();
  const auto& xb = b.strings();
  DL2SQL_RETURN_NOT_OK(
      ForEachMorsel(ctx, n, [&](int64_t bgn, int64_t end, int) {
        for (int64_t i = bgn; i < end; ++i) {
          const int c =
              xa[static_cast<size_t>(i)].compare(xb[static_cast<size_t>(i)]);
          bool v = false;
          switch (op) {
            case BinaryOp::kEq:
              v = c == 0;
              break;
            case BinaryOp::kNe:
              v = c != 0;
              break;
            case BinaryOp::kLt:
              v = c < 0;
              break;
            case BinaryOp::kLe:
              v = c <= 0;
              break;
            case BinaryOp::kGt:
              v = c > 0;
              break;
            case BinaryOp::kGe:
              v = c >= 0;
              break;
            default:
              break;
          }
          out[static_cast<size_t>(i)] = v ? 1 : 0;
        }
        return Status::OK();
      }));
  return Own(Column::Bools(std::move(out)));
}

Result<ColumnHandle> EvalBinary(const Expr& e, const Table& input,
                                EvalContext* ctx) {
  DL2SQL_ASSIGN_OR_RETURN(ColumnHandle l, EvalExpr(*e.children[0], input, ctx));
  DL2SQL_ASSIGN_OR_RETURN(ColumnHandle r, EvalExpr(*e.children[1], input, ctx));
  const BinaryOp op = e.bin_op;

  if (op != BinaryOp::kAnd && op != BinaryOp::kOr) {
    if (BothNumericNoNulls(*l, *r)) return FastBinary(op, *l, *r, ctx);
    if (IsComparison(op) && l->type() == DataType::kString &&
        r->type() == DataType::kString && !l->HasNulls() && !r->HasNulls()) {
      return FastStringCompare(op, *l, *r, ctx);
    }
  } else if (l->type() == DataType::kBool && r->type() == DataType::kBool &&
             !l->HasNulls() && !r->HasNulls()) {
    const int64_t n = l->size();
    std::vector<uint8_t> out(static_cast<size_t>(n));
    const auto& xa = l->bools();
    const auto& xb = r->bools();
    DL2SQL_RETURN_NOT_OK(
        ForEachMorsel(ctx, n, [&](int64_t bgn, int64_t end, int) {
          if (op == BinaryOp::kAnd) {
            for (int64_t i = bgn; i < end; ++i) {
              out[i] = (xa[i] && xb[i]) ? 1 : 0;
            }
          } else {
            for (int64_t i = bgn; i < end; ++i) {
              out[i] = (xa[i] || xb[i]) ? 1 : 0;
            }
          }
          return Status::OK();
        }));
    return Own(Column::Bools(std::move(out)));
  }

  // Row-wise fallback with full NULL semantics. The output column type is
  // determined by the operator so empty and all-NULL results stay typed
  // (filters require BOOL masks even over zero rows).
  const int64_t n = l->size();
  DataType out_type;
  if (IsComparison(op) || op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    out_type = DataType::kBool;
  } else if (op == BinaryOp::kMod) {
    out_type = DataType::kInt64;
  } else {
    out_type = DataType::kFloat64;
  }
  Column out(out_type);
  out.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    DL2SQL_ASSIGN_OR_RETURN(Value v,
                            EvalValueBinary(op, l->GetValue(i), r->GetValue(i)));
    // Int arithmetic results coerce into the float output cleanly; other
    // type mismatches are genuine errors surfaced by Append.
    DL2SQL_RETURN_NOT_OK(out.Append(v));
  }
  return Own(std::move(out));
}

Result<ColumnHandle> EvalFuncCall(const Expr& e, const Table& input,
                                  EvalContext* ctx) {
  if (ctx == nullptr || ctx->udfs == nullptr) {
    return Status::InvalidArgument("no UDF registry available for call to ",
                                   e.func_name);
  }
  DL2SQL_ASSIGN_OR_RETURN(const ScalarUdf* udf, ctx->udfs->Find(e.func_name));
  if (udf->arity >= 0 && udf->arity != static_cast<int>(e.children.size())) {
    return Status::InvalidArgument(e.func_name, " expects ", udf->arity,
                                   " arguments, got ", e.children.size());
  }
  std::vector<ColumnHandle> args;
  args.reserve(e.children.size());
  for (const auto& c : e.children) {
    DL2SQL_ASSIGN_OR_RETURN(ColumnHandle a, EvalExpr(*c, input, ctx));
    args.push_back(std::move(a));
  }
  const int64_t n = input.num_rows();

  Stopwatch watch;
  Column out(udf->return_type == DataType::kNull ? DataType::kFloat64
                                                 : udf->return_type);
  out.Reserve(n);

  // Vectorized body: one call per morsel (batched nUDF inference). Splitting
  // the column into morsels bounds the argument buffer to morsel_size rows
  // instead of materializing the whole table, and lets parallel-safe bodies
  // run concurrently on the pool. Per-morsel result buffers concatenated in
  // morsel order keep output identical to the serial whole-column call.
  if (udf->batch_fn != nullptr) {
    const int64_t m = MorselSizeOf(ctx);
    const int64_t num_morsels = n == 0 ? 0 : (n + m - 1) / m;
    std::vector<std::vector<Value>> parts(static_cast<size_t>(num_morsels));
    const bool parallel = udf->parallel_safe && ctx->pool != nullptr &&
                          ctx->pool->num_threads() > 1;
    // Cross-query memoization: probe per row, forward only the misses to the
    // model. The cache is sharded + thread-safe, so concurrent morsels may
    // probe and insert freely.
    ShardedLruCache* const cache =
        NudfCacheActive(udf, ctx) ? ctx->nudf_cache : nullptr;
    const uint64_t fingerprint = udf->neural.fingerprint;
    // Cross-query batch coalescing (serving layer): miss batches of
    // parallel-safe, fingerprinted neural bodies are handed to the sink,
    // which may merge them with rows from concurrently running queries.
    // Per-row purity (implied by parallel_safe + fingerprint) guarantees the
    // regrouping cannot change any individual result.
    NudfBatchSink* const sink =
        (ctx->batch_sink != nullptr && udf->is_neural && udf->parallel_safe &&
         fingerprint != 0)
            ? ctx->batch_sink
            : nullptr;
    // Inference time is accumulated per worker and merged once: concurrent
    // `ctx->inference_seconds +=` from morsel bodies would race, and the sum
    // of per-worker compute seconds stays meaningful under parallelism where
    // a single wall-clock watch would under-count work done.
    std::vector<double> worker_seconds(
        static_cast<size_t>(parallel ? ctx->pool->num_threads() : 1), 0.0);
    // Sink attribution (wait vs. billed batch share), accumulated per worker
    // for the same race-freedom reason, folded into ctx after the loop.
    std::vector<NudfBatchSink::NudfBatchStats> worker_sink_stats(
        worker_seconds.size());
    // Morsels whose miss set was non-empty, i.e. real batch_fn invocations;
    // fully memoized morsels never reach the model.
    std::atomic<int64_t> invoked_batches{0};
    // Rows answered from the result cache (atomic: probed on pool workers).
    std::atomic<int64_t> cache_hit_rows{0};
    auto body = [&](int64_t bgn, int64_t end, int worker) -> Status {
      std::vector<std::vector<Value>> rows(static_cast<size_t>(end - bgn));
      {
        DL2SQL_TRACE_SPAN("nudf", "build_args");
        for (int64_t i = bgn; i < end; ++i) {
          auto& row = rows[static_cast<size_t>(i - bgn)];
          row.reserve(args.size());
          for (const auto& a : args) row.push_back(a->GetValue(i));
        }
      }
      std::vector<Value> results(rows.size());
      std::vector<uint64_t> keys;
      std::vector<size_t> miss;  // local indices still needing the model
      if (cache != nullptr) {
        DL2SQL_TRACE_SPAN("cache", "nudf_probe");
        keys.resize(rows.size());
        miss.reserve(rows.size());
        std::string buf;
        for (size_t i = 0; i < rows.size(); ++i) {
          keys[i] = NudfRowKey(fingerprint, rows[i], &buf);
          auto hit = cache->LookupAs<Value>(keys[i]);
          if (hit != nullptr) {
            results[i] = *hit;
          } else {
            miss.push_back(i);
          }
        }
        cache_hit_rows.fetch_add(
            static_cast<int64_t>(rows.size() - miss.size()),
            std::memory_order_relaxed);
      } else {
        miss.resize(rows.size());
        for (size_t i = 0; i < rows.size(); ++i) miss[i] = i;
      }
      if (!miss.empty()) {
        const bool all_miss = miss.size() == rows.size();
        std::vector<std::vector<Value>> miss_rows;
        if (!all_miss) {
          miss_rows.reserve(miss.size());
          for (size_t i : miss) miss_rows.push_back(std::move(rows[i]));
        }
        Stopwatch morsel_watch;
        std::vector<Value> fresh;
        if (sink != nullptr) {
          // The sink performs (and accounts for) the real model invocations;
          // the measured time includes any coalescing wait, which is genuine
          // inference latency from this query's point of view.
          DL2SQL_TRACE_SPAN("nudf", "coalesce_batch");
          DL2SQL_ASSIGN_OR_RETURN(
              fresh,
              sink->RunBatch(fingerprint, udf->batch_fn,
                             all_miss ? std::move(rows)
                                      : std::move(miss_rows),
                             &worker_sink_stats[static_cast<size_t>(worker)]));
        } else {
          DL2SQL_TRACE_SPAN("nudf", "invoke_batch");
          DL2SQL_ASSIGN_OR_RETURN(fresh,
                                  udf->batch_fn(all_miss ? rows : miss_rows));
          invoked_batches.fetch_add(1, std::memory_order_relaxed);
          if (udf->is_neural) {
            static Histogram* const batch_us =
                MetricsRegistry::Global().histogram("nudf.batch_us");
            batch_us->Record(
                static_cast<int64_t>(morsel_watch.ElapsedSeconds() * 1e6));
          }
        }
        const double batch_seconds = morsel_watch.ElapsedSeconds();
        worker_seconds[static_cast<size_t>(worker)] += batch_seconds;
        if (fresh.size() != miss.size()) {
          return Status::InternalError(e.func_name, " batch body returned ",
                                       fresh.size(), " values for ",
                                       miss.size(), " rows");
        }
        for (size_t j = 0; j < miss.size(); ++j) {
          if (cache != nullptr) {
            cache->Insert(keys[miss[j]],
                          std::make_shared<const Value>(fresh[j]),
                          ValueCacheCharge(fresh[j]));
          }
          results[miss[j]] = std::move(fresh[j]);
        }
      }
      parts[static_cast<size_t>(bgn / m)] = std::move(results);
      return Status::OK();
    };
    if (parallel) {
      DL2SQL_RETURN_NOT_OK(ctx->pool->ParallelForMorsel(n, m, body));
    } else {
      for (int64_t b = 0; b < n; b += m) {
        DL2SQL_RETURN_NOT_OK(body(b, std::min(n, b + m), 0));
      }
    }
    for (auto& part : parts) {
      for (auto& v : part) {
        DL2SQL_RETURN_NOT_OK(
            out.Append(std::move(v)).WithContext("result of " + e.func_name));
      }
    }
    if (udf->is_neural) {
      double secs = 0.0;
      for (double s : worker_seconds) secs += s;
      ctx->inference_seconds += secs;
      for (const auto& ss : worker_sink_stats) {
        ctx->nudf_wait_seconds += ss.wait_seconds;
        ctx->nudf_billed_seconds += ss.billed_seconds;
      }
      // Rows answered by the model, memoized or fresh: cache hits must not
      // perturb the per-row tallies the hint/pruning tests assert on.
      ctx->neural_calls += n;
      ctx->nudf_cache_hits +=
          cache_hit_rows.load(std::memory_order_relaxed);
      if (ctx->costs != nullptr) ctx->costs->Add("inference", secs);
      static Counter* const invocations =
          MetricsRegistry::Global().counter("nudf.invocations");
      static Counter* const batches =
          MetricsRegistry::Global().counter("nudf.batches");
      invocations->Increment(n);
      batches->Increment(invoked_batches.load(std::memory_order_relaxed));
    }
    return Own(std::move(out));
  }

  std::vector<Value> row(args.size());
  bool typed = udf->return_type != DataType::kNull;
  // Memoize per-row results only for declared-return-type neural UDFs (all
  // model deployments are); the dynamic-type path below stays untouched.
  ShardedLruCache* const row_cache =
      typed && NudfCacheActive(udf, ctx) ? ctx->nudf_cache : nullptr;
  std::string key_buf;
  std::vector<Value> untyped_buffer;
  for (int64_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < args.size(); ++a) row[a] = args[a]->GetValue(i);
    uint64_t key = 0;
    if (row_cache != nullptr) {
      key = NudfRowKey(udf->neural.fingerprint, row, &key_buf);
      if (auto hit = row_cache->LookupAs<Value>(key)) {
        ctx->nudf_cache_hits += 1;
        DL2SQL_RETURN_NOT_OK(
            out.Append(*hit).WithContext("result of " + e.func_name));
        continue;
      }
    }
    DL2SQL_ASSIGN_OR_RETURN(Value v, udf->fn(row));
    if (row_cache != nullptr) {
      row_cache->Insert(key, std::make_shared<const Value>(v),
                        ValueCacheCharge(v));
    }
    if (!typed) {
      // Functions with dynamic return type (e.g. if()): type from first
      // non-null result.
      untyped_buffer.push_back(std::move(v));
      if (!untyped_buffer.back().is_null()) {
        Column c(untyped_buffer.back().type());
        c.Reserve(n);
        for (auto& bv : untyped_buffer) {
          DL2SQL_RETURN_NOT_OK(c.Append(std::move(bv)));
        }
        out = std::move(c);
        typed = true;
        untyped_buffer.clear();
      }
      continue;
    }
    DL2SQL_RETURN_NOT_OK(
        out.Append(std::move(v)).WithContext("result of " + e.func_name));
  }
  if (!typed && n > 0) {
    // Every row came back NULL from a function with no declared return type,
    // so there is nothing to infer the column type from. Silently picking
    // float64 used to mask schema bugs downstream; surface it instead.
    return Status::TypeError(e.func_name, ": untyped function returned NULL ",
                             "for all ", n,
                             " rows; cannot infer result column type");
  }
  if (udf->is_neural) {
    const double secs = watch.ElapsedSeconds();
    ctx->inference_seconds += secs;
    ctx->neural_calls += n;
    if (ctx->costs != nullptr) ctx->costs->Add("inference", secs);
    static Counter* const invocations =
        MetricsRegistry::Global().counter("nudf.invocations");
    invocations->Increment(n);
  }
  return Own(std::move(out));
}

}  // namespace

Result<ColumnHandle> EvalExpr(const Expr& e, const Table& input,
                              EvalContext* ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return Own(BroadcastValue(e.literal, input.num_rows()));
    case ExprKind::kColumnRef: {
      int idx = e.bound_index;
      if (idx < 0) {
        DL2SQL_ASSIGN_OR_RETURN(idx, input.schema().Find(e.column_name));
      }
      if (idx >= input.num_columns()) {
        return Status::InternalError("bound column index ", idx,
                                     " out of range");
      }
      return Alias(input.column(idx));
    }
    case ExprKind::kBinary:
      return EvalBinary(e, input, ctx);
    case ExprKind::kUnary: {
      DL2SQL_ASSIGN_OR_RETURN(ColumnHandle x,
                              EvalExpr(*e.children[0], input, ctx));
      const int64_t n = x->size();
      if (e.un_op == UnaryOp::kNot) {
        if (x->type() != DataType::kBool) {
          return Status::TypeError("NOT expects BOOL, got ",
                                   DataTypeToString(x->type()));
        }
        Column out(DataType::kBool);
        out.Reserve(n);
        for (int64_t i = 0; i < n; ++i) {
          const Value v = x->GetValue(i);
          DL2SQL_RETURN_NOT_OK(out.Append(
              v.is_null() ? Value::Null() : Value::Bool(!v.bool_value())));
        }
        return Own(std::move(out));
      }
      // Negation.
      if (x->type() == DataType::kInt64 && !x->HasNulls()) {
        std::vector<int64_t> out(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) out[i] = -x->ints()[i];
        return Own(Column::Ints(std::move(out)));
      }
      Column out(DataType::kFloat64);
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        const Value v = x->GetValue(i);
        if (v.is_null()) {
          DL2SQL_RETURN_NOT_OK(out.Append(Value::Null()));
        } else {
          DL2SQL_ASSIGN_OR_RETURN(double d, v.AsDouble());
          DL2SQL_RETURN_NOT_OK(out.Append(Value::Float(-d)));
        }
      }
      return Own(std::move(out));
    }
    case ExprKind::kFuncCall:
      return EvalFuncCall(e, input, ctx);
    case ExprKind::kAggCall:
      return Status::InternalError(
          "aggregate call reached the evaluator; it should have been planned "
          "into an Aggregate operator: ",
          e.ToString());
    case ExprKind::kScalarSubquery: {
      if (ctx == nullptr || !ctx->subquery_exec) {
        return Status::InvalidArgument("scalar subquery without executor");
      }
      DL2SQL_ASSIGN_OR_RETURN(Value v, ctx->subquery_exec(*e.subquery));
      return Own(BroadcastValue(v, input.num_rows()));
    }
    case ExprKind::kInList: {
      DL2SQL_ASSIGN_OR_RETURN(ColumnHandle tested,
                              EvalExpr(*e.children[0], input, ctx));
      std::vector<Value> list;
      for (size_t i = 1; i < e.children.size(); ++i) {
        DL2SQL_ASSIGN_OR_RETURN(Value v, EvalScalar(*e.children[i], ctx));
        list.push_back(std::move(v));
      }
      const int64_t n = tested->size();
      Column out(DataType::kBool);
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        const Value v = tested->GetValue(i);
        if (v.is_null()) {
          DL2SQL_RETURN_NOT_OK(out.Append(Value::Null()));
          continue;
        }
        bool found = false;
        for (const auto& item : list) {
          if (v.Equals(item)) {
            found = true;
            break;
          }
        }
        DL2SQL_RETURN_NOT_OK(out.Append(Value::Bool(found)));
      }
      return Own(std::move(out));
    }
    case ExprKind::kStar:
      return Status::InternalError("'*' reached the evaluator");
  }
  return Status::InternalError("unhandled expression kind");
}

Result<Value> EvalScalar(const Expr& e, EvalContext* ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kScalarSubquery: {
      if (ctx == nullptr || !ctx->subquery_exec) {
        return Status::InvalidArgument("scalar subquery without executor");
      }
      return ctx->subquery_exec(*e.subquery);
    }
    case ExprKind::kBinary: {
      DL2SQL_ASSIGN_OR_RETURN(Value l, EvalScalar(*e.children[0], ctx));
      DL2SQL_ASSIGN_OR_RETURN(Value r, EvalScalar(*e.children[1], ctx));
      return EvalValueBinary(e.bin_op, l, r);
    }
    case ExprKind::kUnary: {
      DL2SQL_ASSIGN_OR_RETURN(Value v, EvalScalar(*e.children[0], ctx));
      if (v.is_null()) return Value::Null();
      if (e.un_op == UnaryOp::kNot) {
        if (v.type() != DataType::kBool) {
          return Status::TypeError("NOT expects BOOL");
        }
        return Value::Bool(!v.bool_value());
      }
      DL2SQL_ASSIGN_OR_RETURN(double d, v.AsDouble());
      if (v.type() == DataType::kInt64) return Value::Int(-v.int_value());
      return Value::Float(-d);
    }
    case ExprKind::kFuncCall: {
      if (ctx == nullptr || ctx->udfs == nullptr) {
        return Status::InvalidArgument("no UDF registry for ", e.func_name);
      }
      DL2SQL_ASSIGN_OR_RETURN(const ScalarUdf* udf, ctx->udfs->Find(e.func_name));
      std::vector<Value> args;
      for (const auto& c : e.children) {
        DL2SQL_ASSIGN_OR_RETURN(Value v, EvalScalar(*c, ctx));
        args.push_back(std::move(v));
      }
      uint64_t key = 0;
      ShardedLruCache* const cache =
          NudfCacheActive(udf, ctx) ? ctx->nudf_cache : nullptr;
      if (cache != nullptr) {
        std::string buf;
        key = NudfRowKey(udf->neural.fingerprint, args, &buf);
        if (auto hit = cache->LookupAs<Value>(key)) {
          // Memoized model answer: still a neural call for accounting.
          ctx->neural_calls += 1;
          ctx->nudf_cache_hits += 1;
          static Counter* const invocations =
              MetricsRegistry::Global().counter("nudf.invocations");
          invocations->Increment();
          return *hit;
        }
      }
      Stopwatch watch;
      DL2SQL_ASSIGN_OR_RETURN(Value out, udf->fn(args));
      if (udf->is_neural) {
        const double secs = watch.ElapsedSeconds();
        ctx->inference_seconds += secs;
        ctx->neural_calls += 1;
        if (ctx->costs != nullptr) ctx->costs->Add("inference", secs);
        static Counter* const invocations =
            MetricsRegistry::Global().counter("nudf.invocations");
        invocations->Increment();
      }
      if (cache != nullptr) {
        cache->Insert(key, std::make_shared<const Value>(out),
                      ValueCacheCharge(out));
      }
      return out;
    }
    default:
      return Status::InvalidArgument("expression is not row-independent: ",
                                     e.ToString());
  }
}

Result<DataType> InferExprType(const Expr& e, const TableSchema& schema,
                               const UdfRegistry* udfs) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal.type() == DataType::kNull ? DataType::kFloat64
                                                 : e.literal.type();
    case ExprKind::kColumnRef: {
      if (e.bound_index >= 0 && e.bound_index < schema.num_fields()) {
        return schema.field(e.bound_index).type;
      }
      DL2SQL_ASSIGN_OR_RETURN(int idx, schema.Find(e.column_name));
      return schema.field(idx).type;
    }
    case ExprKind::kBinary: {
      if (IsComparison(e.bin_op) || e.bin_op == BinaryOp::kAnd ||
          e.bin_op == BinaryOp::kOr) {
        return DataType::kBool;
      }
      if (e.bin_op == BinaryOp::kDiv) return DataType::kFloat64;
      if (e.bin_op == BinaryOp::kMod) return DataType::kInt64;
      DL2SQL_ASSIGN_OR_RETURN(DataType l,
                              InferExprType(*e.children[0], schema, udfs));
      DL2SQL_ASSIGN_OR_RETURN(DataType r,
                              InferExprType(*e.children[1], schema, udfs));
      if (l == DataType::kInt64 && r == DataType::kInt64) {
        return DataType::kInt64;
      }
      return DataType::kFloat64;
    }
    case ExprKind::kUnary:
      if (e.un_op == UnaryOp::kNot) return DataType::kBool;
      return InferExprType(*e.children[0], schema, udfs);
    case ExprKind::kFuncCall: {
      if (udfs != nullptr) {
        auto r = udfs->Find(e.func_name);
        if (r.ok() && (*r)->return_type != DataType::kNull) {
          return (*r)->return_type;
        }
      }
      return DataType::kFloat64;
    }
    case ExprKind::kAggCall:
      switch (e.agg_func) {
        case AggFunc::kCount:
        case AggFunc::kCountStar:
          return DataType::kInt64;
        case AggFunc::kMin:
        case AggFunc::kMax:
          return InferExprType(*e.children[0], schema, udfs);
        default:
          return DataType::kFloat64;
      }
    case ExprKind::kScalarSubquery:
      return DataType::kFloat64;
    case ExprKind::kInList:
      return DataType::kBool;
    case ExprKind::kStar:
      return Status::InvalidArgument("cannot type '*'");
  }
  return Status::InternalError("unhandled expression kind");
}

Result<std::vector<int64_t>> FilterRows(const Expr& predicate,
                                        const Table& input, EvalContext* ctx) {
  if (ctx != nullptr && ctx->vectorized) {
    // Batch-at-a-time path: compile the predicate to selection-vector
    // kernels and skip boolean-mask materialization entirely. Falls through
    // to the row path when the predicate doesn't compile.
    std::vector<int64_t> vrows;
    DL2SQL_ASSIGN_OR_RETURN(bool done,
                            vec::TryVectorFilter(predicate, input, ctx, &vrows));
    if (done) return vrows;
  }
  DL2SQL_ASSIGN_OR_RETURN(ColumnHandle mask, EvalExpr(predicate, input, ctx));
  if (mask->type() != DataType::kBool) {
    return Status::TypeError("filter predicate must be BOOL, got ",
                             DataTypeToString(mask->type()), " from ",
                             predicate.ToString());
  }
  std::vector<int64_t> rows;
  const int64_t n = mask->size();
  const int64_t m = MorselSizeOf(ctx);
  if (ctx == nullptr || ctx->pool == nullptr || ctx->pool->num_threads() <= 1 ||
      n <= m) {
    const auto& bits = mask->bools();
    for (int64_t i = 0; i < n; ++i) {
      if (mask->IsValid(i) && bits[static_cast<size_t>(i)] != 0) {
        rows.push_back(i);
      }
    }
    return rows;
  }
  // Morsel-parallel selection: each morsel collects its passing indices into
  // its own buffer; concatenating buffers in morsel order reproduces the
  // serial ascending order exactly, for any thread count.
  const int64_t num_morsels = (n + m - 1) / m;
  std::vector<std::vector<int64_t>> parts(static_cast<size_t>(num_morsels));
  DL2SQL_RETURN_NOT_OK(ctx->pool->ParallelForMorsel(
      n, m, [&](int64_t bgn, int64_t end, int) {
        auto& part = parts[static_cast<size_t>(bgn / m)];
        const auto& bits = mask->bools();
        for (int64_t i = bgn; i < end; ++i) {
          if (mask->IsValid(i) && bits[static_cast<size_t>(i)] != 0) {
            part.push_back(i);
          }
        }
        return Status::OK();
      }));
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  rows.reserve(total);
  for (const auto& p : parts) rows.insert(rows.end(), p.begin(), p.end());
  return rows;
}

}  // namespace dl2sql::db
