#include "db/udf.h"

#include <cmath>

#include "common/string_util.h"

namespace dl2sql::db {

double NUdfSelectivity::Probability(const std::string& label) const {
  const int64_t total = TotalCount();
  if (total == 0) return 0.5;
  auto it = histogram.find(label);
  if (it == histogram.end()) {
    // Unseen class: spread residual mass uniformly-ish.
    return 1.0 / static_cast<double>(histogram.size() + 1);
  }
  return static_cast<double>(it->second) / static_cast<double>(total);
}

int64_t NUdfSelectivity::TotalCount() const {
  int64_t t = 0;
  for (const auto& [_, c] : histogram) t += c;
  return t;
}

UdfRegistry::UdfRegistry() { RegisterBuiltins(); }

void UdfRegistry::Register(ScalarUdf udf) {
  const std::string key = ToLower(udf.name);
  // Model-reload invalidation: replacing a neural body whose fingerprint
  // changed means previously memoized results describe a stale model.
  auto it = fns_.find(key);
  if (it != fns_.end() && it->second.is_neural && udf.is_neural &&
      it->second.neural.fingerprint != udf.neural.fingerprint &&
      neural_replaced_hook_) {
    neural_replaced_hook_(key);
  }
  fns_[key] = std::move(udf);
  ++version_;
}

void UdfRegistry::RegisterNeural(const std::string& name, DataType return_type,
                                 ScalarFn fn, NUdfInfo info, BatchFn batch_fn,
                                 int arity, bool parallel_safe) {
  ScalarUdf udf;
  udf.name = name;
  udf.arity = arity;
  udf.return_type = return_type;
  udf.fn = std::move(fn);
  udf.batch_fn = std::move(batch_fn);
  udf.is_neural = true;
  udf.neural = std::move(info);
  udf.parallel_safe = parallel_safe;
  Register(std::move(udf));
}

Result<const ScalarUdf*> UdfRegistry::Find(const std::string& name) const {
  auto it = fns_.find(ToLower(name));
  if (it == fns_.end()) {
    return Status::NotFound("function '", name, "' is not registered");
  }
  return &it->second;
}

bool UdfRegistry::IsNeural(const std::string& name) const {
  auto r = Find(name);
  return r.ok() && (*r)->is_neural;
}

std::vector<std::string> UdfRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(fns_.size());
  for (const auto& [k, _] : fns_) names.push_back(k);
  return names;
}

namespace {

Status CheckNumeric(const Value& v, const char* fname) {
  if (!IsNumeric(v.type()) && v.type() != DataType::kBool) {
    return Status::TypeError(fname, ": non-numeric argument of type ",
                             DataTypeToString(v.type()));
  }
  return Status::OK();
}

/// Wraps a double->double math function as a UDF body.
ScalarFn Unary(double (*f)(double), const char* fname) {
  return [f, fname](const std::vector<Value>& args) -> Result<Value> {
    if (args[0].is_null()) return Value::Null();
    DL2SQL_RETURN_NOT_OK(CheckNumeric(args[0], fname));
    return Value::Float(f(*args[0].AsDouble()));
  };
}

}  // namespace

void UdfRegistry::RegisterBuiltins() {
  Register({"abs", 1, DataType::kFloat64, Unary(std::fabs, "abs"),
            nullptr,
            false,
            {}});
  Register({"sqrt", 1, DataType::kFloat64, Unary(std::sqrt, "sqrt"),
            nullptr,
            false,
            {}});
  Register({"exp", 1, DataType::kFloat64, Unary(std::exp, "exp"),
            nullptr,
            false,
            {}});
  Register({"ln", 1, DataType::kFloat64, Unary(std::log, "ln"),
            nullptr,
            false,
            {}});
  Register(
      {"floor", 1, DataType::kFloat64, Unary(std::floor, "floor"),
            nullptr,
            false,
            {}});
  Register({"ceil", 1, DataType::kFloat64, Unary(std::ceil, "ceil"),
            nullptr,
            false,
            {}});
  Register(
      {"round", 1, DataType::kFloat64, Unary(std::round, "round"),
            nullptr,
            false,
            {}});

  Register({"pow", 2, DataType::kFloat64,
            [](const std::vector<Value>& args) -> Result<Value> {
              if (args[0].is_null() || args[1].is_null()) return Value::Null();
              DL2SQL_ASSIGN_OR_RETURN(double a, args[0].AsDouble());
              DL2SQL_ASSIGN_OR_RETURN(double b, args[1].AsDouble());
              return Value::Float(std::pow(a, b));
            },
            nullptr,
            false,
            {}});

  Register({"greatest", -1, DataType::kFloat64,
            [](const std::vector<Value>& args) -> Result<Value> {
              if (args.empty()) {
                return Status::InvalidArgument("greatest: no arguments");
              }
              Value best = args[0];
              for (size_t i = 1; i < args.size(); ++i) {
                if (best.is_null() || (!args[i].is_null() &&
                                       args[i].Compare(best) > 0)) {
                  best = args[i];
                }
              }
              return best;
            },
            nullptr,
            false,
            {}});

  Register({"least", -1, DataType::kFloat64,
            [](const std::vector<Value>& args) -> Result<Value> {
              if (args.empty()) {
                return Status::InvalidArgument("least: no arguments");
              }
              Value best = args[0];
              for (size_t i = 1; i < args.size(); ++i) {
                if (best.is_null() || (!args[i].is_null() &&
                                       args[i].Compare(best) < 0)) {
                  best = args[i];
                }
              }
              return best;
            },
            nullptr,
            false,
            {}});

  Register({"if", 3, DataType::kNull,
            [](const std::vector<Value>& args) -> Result<Value> {
              if (args[0].is_null()) return args[2];
              if (args[0].type() != DataType::kBool) {
                return Status::TypeError("if: condition must be BOOL");
              }
              return args[0].bool_value() ? args[1] : args[2];
            },
            nullptr,
            false,
            {}});

  Register({"intdiv", 2, DataType::kInt64,
            [](const std::vector<Value>& args) -> Result<Value> {
              if (args[0].is_null() || args[1].is_null()) return Value::Null();
              DL2SQL_ASSIGN_OR_RETURN(int64_t a, args[0].AsInt());
              DL2SQL_ASSIGN_OR_RETURN(int64_t b, args[1].AsInt());
              if (b == 0) return Status::InvalidArgument("intDiv by zero");
              return Value::Int(a / b);
            },
            nullptr,
            false,
            {}});

  Register({"modulo", 2, DataType::kInt64,
            [](const std::vector<Value>& args) -> Result<Value> {
              if (args[0].is_null() || args[1].is_null()) return Value::Null();
              DL2SQL_ASSIGN_OR_RETURN(int64_t a, args[0].AsInt());
              DL2SQL_ASSIGN_OR_RETURN(int64_t b, args[1].AsInt());
              if (b == 0) return Status::InvalidArgument("modulo by zero");
              return Value::Int(a % b);
            },
            nullptr,
            false,
            {}});

  Register({"length", 1, DataType::kInt64,
            [](const std::vector<Value>& args) -> Result<Value> {
              if (args[0].is_null()) return Value::Null();
              if (args[0].type() != DataType::kString &&
                  args[0].type() != DataType::kBlob) {
                return Status::TypeError("length: expects STRING/BLOB");
              }
              return Value::Int(
                  static_cast<int64_t>(args[0].string_value().size()));
            },
            nullptr,
            false,
            {}});
}

}  // namespace dl2sql::db
