/// \file types.h
/// \brief Logical column types, fields and schemas for the lindb engine.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace dl2sql::db {

/// Storage/logical type of a column or scalar value.
enum class DataType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kFloat64 = 3,
  kString = 4,
  kBlob = 5,  ///< opaque bytes; used for serialized keyframe tensors
};

const char* DataTypeToString(DataType t);

/// True if arithmetic is defined on the type.
inline bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kFloat64;
}

/// \brief A named, typed column slot.
struct Field {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const Field& o) const {
    return name == o.name && type == o.type;
  }
};

/// \brief Ordered list of fields. Column names are matched case-insensitively
/// and may be qualified ("alias.column"); Find() accepts either form.
class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// Index of the unique field matching `name` (case-insensitive).
  /// A bare name matches a qualified field's suffix after the dot.
  /// Returns NotFound if absent, InvalidArgument if ambiguous.
  Result<int> Find(const std::string& name) const;

  /// True if some field matches.
  bool Contains(const std::string& name) const { return Find(name).ok(); }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace dl2sql::db
