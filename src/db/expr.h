/// \file expr.h
/// \brief Expression AST shared by the SQL parser, planner and evaluator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/types.h"
#include "db/value.h"

namespace dl2sql::db {

struct SelectStmt;  // defined in db/sql/ast.h

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kBinary,
  kUnary,
  kFuncCall,
  kAggCall,
  kScalarSubquery,
  kInList,
  kStar,
};

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp : uint8_t { kNot, kNeg };

enum class AggFunc : uint8_t {
  kCount,      ///< COUNT(expr): non-null (and non-false for bool) rows
  kCountStar,  ///< COUNT(*)
  kSum,
  kAvg,
  kMin,
  kMax,
  kStddevSamp,  ///< sample standard deviation (ClickHouse stddevSamp)
};

const char* BinaryOpToString(BinaryOp op);
const char* AggFuncToString(AggFunc f);
bool IsComparison(BinaryOp op);

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// \brief A node in the expression tree.
///
/// One class with a kind tag (rather than a class hierarchy) keeps cloning,
/// printing and tree-walking in one place; only a few fields are meaningful
/// per kind.
class Expr {
 public:
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef: `name` as written; `bound_index` set by the planner (or -1,
  // in which case the evaluator resolves by name at runtime).
  std::string column_name;
  int bound_index = -1;

  // kBinary / kUnary
  BinaryOp bin_op = BinaryOp::kAdd;
  UnaryOp un_op = UnaryOp::kNot;

  // kFuncCall: function (built-in or UDF) name.
  std::string func_name;

  // kAggCall
  AggFunc agg_func = AggFunc::kCount;

  // kScalarSubquery
  std::shared_ptr<SelectStmt> subquery;

  // children: operands / arguments / IN-list elements (first = tested expr)
  std::vector<ExprPtr> children;

  /// \name Factory helpers
  /// @{
  static ExprPtr Lit(Value v);
  static ExprPtr Col(std::string name);
  static ExprPtr BoundCol(int index, std::string name = "");
  static ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Unary(UnaryOp op, ExprPtr x);
  static ExprPtr Func(std::string name, std::vector<ExprPtr> args);
  static ExprPtr Agg(AggFunc f, ExprPtr arg);  // arg may be null for COUNT(*)
  static ExprPtr Subquery(std::shared_ptr<SelectStmt> stmt);
  static ExprPtr In(ExprPtr tested, std::vector<ExprPtr> list);
  static ExprPtr Star();
  /// @}

  /// Deep copy.
  ExprPtr Clone() const;

  /// True if the subtree contains an aggregate call.
  bool HasAggregate() const;

  /// True if the subtree calls the named function (case-insensitive).
  bool CallsFunction(const std::string& name) const;

  /// Collects the names of all referenced (unbound) columns.
  void CollectColumns(std::vector<std::string>* out) const;

  /// SQL-ish rendering for plan output and error messages.
  std::string ToString() const;
};

/// Splits a conjunctive predicate into its AND-ed terms.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

/// AND-combines terms (returns TRUE literal for empty input).
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& terms);

}  // namespace dl2sql::db
