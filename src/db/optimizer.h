/// \file optimizer.h
/// \brief Plan rewrites: predicate pushdown, equi-join extraction, and the
/// paper's nUDF hint rules (Section IV-B).
#pragma once

#include <memory>

#include "db/cost_model.h"
#include "db/plan.h"

namespace dl2sql::db {

/// \brief Selectivity/cost model that understands nUDFs: predicate
/// selectivities come from the offline class histograms (Eq. 10) and neural
/// filter conjuncts are charged per-row model cost. This is the "customized
/// cost model" half of DL2SQL-OP; the conv-cardinality formulas (Eqs. 3-8)
/// live in src/dl2sql/cost_model.h for pipeline-level estimation.
class NeuralAwareCostModel : public DefaultCostModel {
 public:
  Status Annotate(PlanNode* node, const CostContext& ctx) const override;
  double EstimateSelectivity(const Expr& pred, const PlanNode& child,
                             const CostContext& ctx) const override;
};

/// Options controlling which rewrites run.
struct OptimizerOptions {
  bool enable_pushdown = true;
  /// Greedy reordering of 3+-relation inner-join chains by estimated
  /// cardinality (smallest-first, equi-connected preferred).
  bool enable_join_reorder = true;
  /// Hint rules for nUDF placement/ordering and symmetric hash joins.
  /// Disabled = the plain engine behaviour the paper calls "DL2SQL" /
  /// "DB-UDF"; enabled = "DL2SQL-OP".
  bool enable_nudf_hints = false;
  /// Model used both for hint decisions and final annotation.
  std::shared_ptr<const CostModel> cost_model;
};

/// \brief Rewrites a bound plan tree in place (returns the new root).
class Optimizer {
 public:
  Optimizer(OptimizerOptions options, CostContext ctx);

  Result<PlanPtr> Optimize(PlanPtr plan);

 private:
  /// Annotates the final tree and flags hash joins whose build side should
  /// be the (smaller) left child.
  Status ChooseBuildSides(PlanNode* node) const;

  /// Recursive rewrite (pushdown + hint placement) without the final
  /// annotation pass.
  Result<PlanPtr> OptimizeNode(PlanPtr plan);

  /// Greedy reordering of a join chain rooted at `node` (post-pushdown).
  /// Returns the (possibly unchanged) subtree; the output column order is
  /// preserved via a restoring projection.
  Result<PlanPtr> ReorderJoins(PlanPtr node);
  /// Recursive pushdown. `preds` are conjuncts bound against node's output
  /// schema; returns a subtree with them placed as low as legal.
  Result<PlanPtr> PushDown(PlanPtr node, std::vector<ExprPtr> preds);

  /// Applies hint rule 1 (scan-time vs delayed nUDF evaluation) and the
  /// multi-nUDF ordering rule to the query's neural conjuncts.
  Result<PlanPtr> PlaceNeuralPredicates(PlanPtr plan,
                                        std::vector<ExprPtr> neural_preds);

  bool IsNeuralExpr(const Expr& e) const;

  OptimizerOptions options_;
  CostContext ctx_;
  std::shared_ptr<const CostModel> model_;
};

/// Clears bound indexes so an expression can be re-bound after a schema
/// change (used when predicates move across operators).
void UnbindExpr(Expr* e);

/// Rebases bound column indexes by `delta` (moving a predicate from a join's
/// output scope into its right child scope).
void ShiftBoundIndexes(Expr* e, int delta);

}  // namespace dl2sql::db
