#include "db/query_log.h"

#include <algorithm>
#include <cstring>

namespace dl2sql::db {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSelect:
      return "select";
    case QueryKind::kInsert:
      return "insert";
    case QueryKind::kUpdate:
      return "update";
    case QueryKind::kDelete:
      return "delete";
    case QueryKind::kDdl:
      return "ddl";
    case QueryKind::kOther:
      return "other";
  }
  return "other";
}

const char* DistStrategyLabel(uint8_t code) {
  switch (code) {
    case 1:
      return "pushdown";
    case 2:
      return "merge_aggregate";
    case 3:
      return "fallback";
    default:
      return "";
  }
}

namespace {

/// Stores `text` (truncated with "..." past `cap`) into an atomic<char>
/// array, returning the stored length. Relaxed stores: the slot's seqlock
/// version (release-published) orders them for readers.
template <size_t N>
uint16_t StoreText(std::atomic<char> (&dst)[N], const std::string& text) {
  size_t len = text.size();
  if (len > N) {
    len = N;
    for (size_t i = 0; i < N - 3; ++i) {
      dst[i].store(text[i], std::memory_order_relaxed);
    }
    for (size_t i = N - 3; i < N; ++i) {
      dst[i].store('.', std::memory_order_relaxed);
    }
  } else {
    for (size_t i = 0; i < len; ++i) {
      dst[i].store(text[i], std::memory_order_relaxed);
    }
  }
  return static_cast<uint16_t>(len);
}

template <size_t N>
std::string LoadText(const std::atomic<char> (&src)[N], uint16_t len) {
  const size_t n = std::min<size_t>(len, N);
  std::string out(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    out[i] = src[i].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace

/// Seqlock protocol per slot: a writer stores version = 2*seq+1 (odd:
/// in-progress), writes every field, then stores 2*seq+2 (even: published).
/// A reader accepts a slot only if it observes the same even version before
/// and after copying the fields. Distinct writers always hold distinct seq
/// numbers, so even in the pathological wrap-around case (one writer stalled
/// for a full ring revolution) the reader sees mismatched versions and skips.
struct QueryLog::Slot {
  std::atomic<uint64_t> version{0};  ///< 0 = never written
  std::atomic<int64_t> id{0};
  std::atomic<int64_t> duration_us{0};
  std::atomic<int64_t> rows{0};
  std::atomic<int64_t> neural_calls{0};
  std::atomic<int64_t> nudf_cache_hits{0};
  std::atomic<int64_t> admission_wait_us{0};
  std::atomic<int64_t> session_id{0};
  std::atomic<int64_t> peak_operator_bytes{0};
  std::atomic<int64_t> operator_rows{0};
  std::atomic<int64_t> vector_batches{0};
  std::atomic<int64_t> end_micros{0};
  std::atomic<int64_t> cpu_us{0};
  std::atomic<int64_t> lock_wait_us{0};
  std::atomic<int64_t> pool_queue_wait_us{0};
  std::atomic<int64_t> coalesce_wait_us{0};
  std::atomic<int64_t> billed_batch_us{0};
  std::atomic<int64_t> mem_peak_bytes{0};
  std::atomic<int64_t> mem_cumulative_bytes{0};
  std::atomic<int64_t> spill_bytes{0};
  std::atomic<int64_t> spill_partitions{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> parent_span_id{0};
  std::atomic<int64_t> dist_shards{0};
  std::atomic<int64_t> dist_slowest_shard{-1};
  std::atomic<int64_t> dist_slowest_us{0};
  std::atomic<int64_t> dist_merge_us{0};
  std::atomic<uint8_t> dist_strategy{0};
  std::atomic<uint16_t> sql_len{0};
  std::atomic<uint16_t> error_len{0};
  std::atomic<uint8_t> kind{0};
  std::atomic<uint8_t> plan_cache_hit{0};
  std::atomic<char> sql[kMaxSqlBytes];
  std::atomic<char> error[kMaxErrorBytes];
};

QueryLog::QueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {
  for (size_t s = 0; s < capacity_; ++s) {
    for (auto& c : slots_[s].sql) c.store('\0', std::memory_order_relaxed);
    for (auto& c : slots_[s].error) c.store('\0', std::memory_order_relaxed);
  }
}

QueryLog::~QueryLog() = default;

void QueryLog::Record(const QueryLogRecord& record) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  slot.version.store(2 * seq + 1, std::memory_order_release);
  slot.id.store(static_cast<int64_t>(seq), std::memory_order_relaxed);
  slot.duration_us.store(record.duration_us, std::memory_order_relaxed);
  slot.rows.store(record.rows, std::memory_order_relaxed);
  slot.neural_calls.store(record.neural_calls, std::memory_order_relaxed);
  slot.nudf_cache_hits.store(record.nudf_cache_hits,
                             std::memory_order_relaxed);
  slot.admission_wait_us.store(record.admission_wait_us,
                               std::memory_order_relaxed);
  slot.session_id.store(record.session_id, std::memory_order_relaxed);
  slot.peak_operator_bytes.store(record.peak_operator_bytes,
                                 std::memory_order_relaxed);
  slot.operator_rows.store(record.operator_rows, std::memory_order_relaxed);
  slot.vector_batches.store(record.vector_batches, std::memory_order_relaxed);
  slot.end_micros.store(record.end_micros, std::memory_order_relaxed);
  slot.cpu_us.store(record.cpu_us, std::memory_order_relaxed);
  slot.lock_wait_us.store(record.lock_wait_us, std::memory_order_relaxed);
  slot.pool_queue_wait_us.store(record.pool_queue_wait_us,
                                std::memory_order_relaxed);
  slot.coalesce_wait_us.store(record.coalesce_wait_us,
                              std::memory_order_relaxed);
  slot.billed_batch_us.store(record.billed_batch_us,
                             std::memory_order_relaxed);
  slot.mem_peak_bytes.store(record.mem_peak_bytes, std::memory_order_relaxed);
  slot.mem_cumulative_bytes.store(record.mem_cumulative_bytes,
                                  std::memory_order_relaxed);
  slot.spill_bytes.store(record.spill_bytes, std::memory_order_relaxed);
  slot.spill_partitions.store(record.spill_partitions,
                              std::memory_order_relaxed);
  slot.trace_id.store(record.trace_id, std::memory_order_relaxed);
  slot.parent_span_id.store(record.parent_span_id, std::memory_order_relaxed);
  slot.dist_shards.store(record.dist_shards, std::memory_order_relaxed);
  slot.dist_slowest_shard.store(record.dist_slowest_shard,
                                std::memory_order_relaxed);
  slot.dist_slowest_us.store(record.dist_slowest_us,
                             std::memory_order_relaxed);
  slot.dist_merge_us.store(record.dist_merge_us, std::memory_order_relaxed);
  slot.dist_strategy.store(record.dist_strategy, std::memory_order_relaxed);
  slot.sql_len.store(StoreText(slot.sql, record.sql),
                     std::memory_order_relaxed);
  slot.error_len.store(StoreText(slot.error, record.error),
                       std::memory_order_relaxed);
  slot.kind.store(static_cast<uint8_t>(record.kind),
                  std::memory_order_relaxed);
  slot.plan_cache_hit.store(record.plan_cache_hit ? 1 : 0,
                            std::memory_order_relaxed);
  slot.version.store(2 * seq + 2, std::memory_order_release);
}

std::vector<QueryLogRecord> QueryLog::Snapshot() const {
  std::vector<QueryLogRecord> out;
  out.reserve(capacity_);
  for (size_t s = 0; s < capacity_; ++s) {
    const Slot& slot = slots_[s];
    const uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) continue;  // never written / mid-write
    QueryLogRecord r;
    r.id = slot.id.load(std::memory_order_relaxed);
    r.duration_us = slot.duration_us.load(std::memory_order_relaxed);
    r.rows = slot.rows.load(std::memory_order_relaxed);
    r.neural_calls = slot.neural_calls.load(std::memory_order_relaxed);
    r.nudf_cache_hits = slot.nudf_cache_hits.load(std::memory_order_relaxed);
    r.admission_wait_us =
        slot.admission_wait_us.load(std::memory_order_relaxed);
    r.session_id = slot.session_id.load(std::memory_order_relaxed);
    r.peak_operator_bytes =
        slot.peak_operator_bytes.load(std::memory_order_relaxed);
    r.operator_rows = slot.operator_rows.load(std::memory_order_relaxed);
    r.vector_batches = slot.vector_batches.load(std::memory_order_relaxed);
    r.end_micros = slot.end_micros.load(std::memory_order_relaxed);
    r.cpu_us = slot.cpu_us.load(std::memory_order_relaxed);
    r.lock_wait_us = slot.lock_wait_us.load(std::memory_order_relaxed);
    r.pool_queue_wait_us =
        slot.pool_queue_wait_us.load(std::memory_order_relaxed);
    r.coalesce_wait_us = slot.coalesce_wait_us.load(std::memory_order_relaxed);
    r.billed_batch_us = slot.billed_batch_us.load(std::memory_order_relaxed);
    r.mem_peak_bytes = slot.mem_peak_bytes.load(std::memory_order_relaxed);
    r.mem_cumulative_bytes =
        slot.mem_cumulative_bytes.load(std::memory_order_relaxed);
    r.spill_bytes = slot.spill_bytes.load(std::memory_order_relaxed);
    r.spill_partitions =
        slot.spill_partitions.load(std::memory_order_relaxed);
    r.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    r.parent_span_id = slot.parent_span_id.load(std::memory_order_relaxed);
    r.dist_shards = slot.dist_shards.load(std::memory_order_relaxed);
    r.dist_slowest_shard =
        slot.dist_slowest_shard.load(std::memory_order_relaxed);
    r.dist_slowest_us = slot.dist_slowest_us.load(std::memory_order_relaxed);
    r.dist_merge_us = slot.dist_merge_us.load(std::memory_order_relaxed);
    r.dist_strategy = slot.dist_strategy.load(std::memory_order_relaxed);
    r.sql = LoadText(slot.sql, slot.sql_len.load(std::memory_order_relaxed));
    r.error =
        LoadText(slot.error, slot.error_len.load(std::memory_order_relaxed));
    r.kind = static_cast<QueryKind>(std::min<uint8_t>(
        slot.kind.load(std::memory_order_relaxed),
        static_cast<uint8_t>(QueryKind::kOther)));
    r.plan_cache_hit =
        slot.plan_cache_hit.load(std::memory_order_relaxed) != 0;
    // Accept only if nothing republished the slot while we copied.
    const uint64_t v2 = slot.version.load(std::memory_order_acquire);
    if (v1 != v2) continue;
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const QueryLogRecord& a, const QueryLogRecord& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace dl2sql::db
