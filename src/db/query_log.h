/// \file query_log.h
/// \brief Lock-free fixed-capacity ring buffer of finished queries.
///
/// Backs system.queries and the slow-query log. Writers (query threads
/// finishing a statement) claim a slot with one fetch_add and publish via a
/// per-slot seqlock version, so recording never blocks — not on readers, not
/// on other writers. Readers (system.queries scans) copy slots out and use
/// the version protocol to detect and skip records that were mid-write,
/// giving torn-free snapshots without ever stalling the write path.
///
/// Every slot field is an atomic (including the SQL/error text, stored as
/// fixed-size atomic<char> arrays), so concurrent read/write is defined
/// behavior and TSAN-clean by construction; the seqlock only ensures the
/// *combination* of fields a reader returns belongs to one record.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dl2sql::db {

/// Statement class recorded with each query-log entry.
enum class QueryKind : uint8_t {
  kSelect = 0,
  kInsert,
  kUpdate,
  kDelete,
  kDdl,
  kOther,
};

const char* QueryKindName(QueryKind kind);

/// Distributed-strategy code recorded by a coordinator (0 on plain shards
/// and embedded use). Codes mirror cluster::DistStrategy; the label mapping
/// lives here so system.queries can render it without a cluster dependency.
/// 0 = "" (not distributed), 1 = pushdown, 2 = merge_aggregate, 3 = fallback.
const char* DistStrategyLabel(uint8_t code);

/// One finished query, copied out of the ring.
struct QueryLogRecord {
  int64_t id = 0;           ///< monotonically increasing finish sequence
  std::string sql;          ///< statement text (truncated to slot capacity)
  QueryKind kind = QueryKind::kOther;
  std::string error;        ///< empty on success
  int64_t duration_us = 0;
  int64_t rows = 0;         ///< result rows (SELECT) or affected rows (DML)
  int64_t neural_calls = 0;
  int64_t nudf_cache_hits = 0;
  bool plan_cache_hit = false;
  int64_t admission_wait_us = 0;  ///< server-side queueing delay; 0 if direct
  int64_t session_id = 0;         ///< serving-layer session; 0 if direct
  int64_t peak_operator_bytes = 0;  ///< largest single operator output
  int64_t operator_rows = 0;        ///< rows produced across all plan nodes
  int64_t vector_batches = 0;  ///< vectorized batches across all operators
  int64_t end_micros = 0;  ///< finish time, microseconds since trace epoch
  /// \name Resource-accounting profile (zeros with DL2SQL_MEM_TRACKER=OFF)
  /// @{
  int64_t cpu_us = 0;       ///< thread CPU, incl. pool morsels run on behalf
  int64_t lock_wait_us = 0;       ///< session statement RW-lock acquisition
  int64_t pool_queue_wait_us = 0;  ///< submit-to-start delay of pool tasks
  int64_t coalesce_wait_us = 0;    ///< blocked in the batch sink beyond share
  int64_t billed_batch_us = 0;  ///< share of coalesced batch_fn time billed
  int64_t mem_peak_bytes = 0;      ///< query tracker high-water mark
  int64_t mem_cumulative_bytes = 0;  ///< total bytes ever charged to it
  int64_t spill_bytes = 0;  ///< logical bytes written to spill partitions
  int64_t spill_partitions = 0;  ///< non-empty spill partition runs
  /// @}
  /// \name Distributed tracing / scatter-gather attribution
  /// @{
  uint64_t trace_id = 0;       ///< coordinator-assigned id; 0 = untraced
  uint64_t parent_span_id = 0;  ///< parent span on the coordinator; 0 = root
  uint8_t dist_strategy = 0;   ///< see DistStrategyLabel(); 0 on shards
  int64_t dist_shards = 0;      ///< shards the statement touched
  int64_t dist_slowest_shard = -1;  ///< index of the straggler; -1 = n/a
  int64_t dist_slowest_us = 0;  ///< straggler's shard-side wall time
  int64_t dist_merge_us = 0;    ///< coordinator-side merge/concat time
  /// @}
};

/// \brief The ring. Capacity is fixed at construction; records overwrite the
/// oldest once full.
class QueryLog {
 public:
  /// Longest SQL/error text preserved per record; longer text is truncated
  /// with a trailing "..." so slots stay fixed-size (lock-freedom needs
  /// atomically typed storage, which rules out std::string in slots).
  static constexpr size_t kMaxSqlBytes = 512;
  static constexpr size_t kMaxErrorBytes = 256;

  explicit QueryLog(size_t capacity);
  ~QueryLog();

  /// Publishes one finished query. Wait-free apart from the slot fetch_add.
  void Record(const QueryLogRecord& record);

  /// Copies out every published record, oldest first. Records being written
  /// during the scan are skipped (they reappear complete on the next scan).
  std::vector<QueryLogRecord> Snapshot() const;

  size_t capacity() const { return capacity_; }

  /// Total records ever published (>= capacity once the ring has wrapped).
  int64_t total_recorded() const {
    return static_cast<int64_t>(next_.load(std::memory_order_relaxed));
  }

 private:
  struct Slot;

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
};

}  // namespace dl2sql::db
