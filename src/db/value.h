/// \file value.h
/// \brief Value: a scalar datum used by literals, UDF arguments/results and
/// row-wise access paths. Bulk execution is columnar (see column.h); Value is
/// the boundary currency.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "db/types.h"

namespace dl2sql::db {

/// \brief A dynamically typed scalar (SQL datum), including SQL NULL.
class Value {
 public:
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Float(double v) { return Value(Payload(v)); }
  static Value String(std::string v) {
    return Value(Payload(StringBox{std::move(v), /*is_blob=*/false}));
  }
  static Value Blob(std::string bytes) {
    return Value(Payload(StringBox{std::move(bytes), /*is_blob=*/true}));
  }

  DataType type() const {
    if (std::holds_alternative<std::monostate>(data_)) return DataType::kNull;
    if (std::holds_alternative<bool>(data_)) return DataType::kBool;
    if (std::holds_alternative<int64_t>(data_)) return DataType::kInt64;
    if (std::holds_alternative<double>(data_)) return DataType::kFloat64;
    return std::get<StringBox>(data_).is_blob ? DataType::kBlob
                                              : DataType::kString;
  }

  bool is_null() const { return type() == DataType::kNull; }

  /// \name Unchecked accessors (call only after checking type()).
  /// @{
  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double float_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    return std::get<StringBox>(data_).bytes;
  }
  /// Destructively moves the string/blob payload out, leaving this Value's
  /// bytes in a moved-from state. Call only after checking type().
  std::string TakeString() { return std::move(std::get<StringBox>(data_).bytes); }
  /// @}

  /// Numeric coercion: int/float/bool -> double. Fails otherwise.
  Result<double> AsDouble() const {
    switch (type()) {
      case DataType::kInt64:
        return static_cast<double>(int_value());
      case DataType::kFloat64:
        return float_value();
      case DataType::kBool:
        return bool_value() ? 1.0 : 0.0;
      default:
        return Status::TypeError("cannot convert ", DataTypeToString(type()),
                                 " to double");
    }
  }

  /// Numeric coercion to int64 (floats truncate).
  Result<int64_t> AsInt() const {
    switch (type()) {
      case DataType::kInt64:
        return int_value();
      case DataType::kFloat64:
        return static_cast<int64_t>(float_value());
      case DataType::kBool:
        return static_cast<int64_t>(bool_value());
      default:
        return Status::TypeError("cannot convert ", DataTypeToString(type()),
                                 " to int");
    }
  }

  /// SQL equality (NULL != anything, including NULL).
  bool Equals(const Value& other) const;

  /// Three-way ordering for ORDER BY / grouping; NULLs sort first.
  /// Numeric types compare by value across int/float.
  int Compare(const Value& other) const;

  /// Rendered form used by result printing and tests.
  std::string ToString() const;

 private:
  struct StringBox {
    std::string bytes;
    bool is_blob;
    bool operator==(const StringBox& o) const = default;
  };
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, StringBox>;

  explicit Value(Payload p) : data_(std::move(p)) {}

  Payload data_;
};

}  // namespace dl2sql::db
