/// \file system_tables.h
/// \brief The built-in system.* virtual tables.
///
/// Each provider materializes live engine state on scan (see
/// virtual_table.h). Database-scoped providers (registered by the Database
/// constructor when introspection is enabled):
///   system.metrics — every MetricsRegistry counter/gauge/histogram, with
///     histograms expanded into .count/.sum_us/.p50_us/.p95_us/.p99_us rows
///   system.queries — the query-log ring: last N finished statements
///   system.spans   — per-name span summaries from the trace subsystem
///   system.caches  — nUDF result cache + prepared-plan cache stats
///   system.tables  — catalog contents (tables, views, virtual tables)
/// The serving layer adds system.sessions (see server/session.h), which
/// needs the session registry only QueryService has.
#pragma once

namespace dl2sql::db {

class Database;

/// Registers the five Database-scoped providers above into db->catalog().
/// Called from the Database constructor; safe to call again after an
/// unregister (providers capture `db` and read its state at scan time).
void RegisterDatabaseSystemTables(Database* db);

}  // namespace dl2sql::db
