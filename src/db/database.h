/// \file database.h
/// \brief Database: the embedded lindb engine facade — parse, plan, optimize,
/// execute, with per-operator cost accounting.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cache.h"
#include "common/mem_tracker.h"
#include "common/timer.h"
#include "db/catalog.h"
#include "db/eval.h"
#include "db/exec/symmetric_hash_join.h"
#include "db/optimizer.h"
#include "db/planner.h"
#include "db/query_log.h"
#include "db/sql/parser.h"

namespace dl2sql {
class Device;
}

namespace dl2sql::db {

namespace storage {
class StorageEngine;
struct StorageOptions;
}  // namespace storage

/// \brief Table residency policy (see DESIGN.md, "Out-of-core storage").
///
/// kInMemory (the default) keeps every table fully resident — the exact
/// pre-storage-engine behavior. kPaged pages base tables at least
/// page_min_bytes large out to the engine's block file behind the pinning
/// buffer pool, and arms the executor's spill paths (grace hash join,
/// external aggregation) for inputs that exceed the query memory budget.
/// Results are bit-identical in both modes; the environment variable
/// DL2SQL_STORAGE=paged selects kPaged at Database construction.
enum class StorageMode {
  kInMemory = 0,
  kPaged,
};

/// \brief Intra-query parallelism knobs threaded through plan execution.
///
/// When `device` is set, relational hot loops (predicate evaluation,
/// FilterRows, hash-join probe, hash aggregation, batched nUDFs) run as
/// morsels on the device's thread pool. A null device — or a 1-thread device
/// such as kEdgeCpu — degenerates every loop to the original serial path.
struct ExecOptions {
  /// Compute substrate whose ThreadPool executes morsels. Not owned; must
  /// outlive the Database (engines own both).
  Device* device = nullptr;
  /// Rows per morsel pulled off the atomic cursor.
  int64_t morsel_size = 4096;
};

/// \brief Cross-query caching knobs (see DESIGN.md, "Caching").
///
/// Two independent caches, both owned by the Database and both LRU with a
/// byte budget: the nUDF result cache memoizes per-row model outputs keyed by
/// (model fingerprint, serialized argument row); the plan cache memoizes
/// optimized SELECT plans keyed by normalized SQL + optimizer configuration,
/// validated against per-relation catalog versions on every hit. Defaults are
/// ON; the environment variable DL2SQL_CACHE=OFF (or "off"/"0") disables both
/// at Database construction.
struct CacheOptions {
  bool enable_nudf_cache = true;
  bool enable_plan_cache = true;
  size_t nudf_cache_bytes = 64ull << 20;
  size_t plan_cache_bytes = 8ull << 20;
};

/// \brief Introspection knobs: the system.* virtual tables, the query-log
/// ring behind system.queries, and the slow-query log.
///
/// Defaults are ON; DL2SQL_INTROSPECTION=OFF (or "off"/"0") disables the
/// whole layer at Database construction — no providers are registered and
/// query recording short-circuits to a null check, so the serving hot path
/// pays nothing. DL2SQL_QUERY_LOG_CAPACITY and DL2SQL_SLOW_QUERY_MS override
/// the other two knobs.
struct IntrospectionOptions {
  bool enabled = true;
  /// Ring slots behind system.queries; oldest records are overwritten.
  size_t query_log_capacity = 512;
  /// Statements at least this slow also emit a WARN line with the plan
  /// snapshot. <= 0 disables the slow-query log (recording continues).
  double slow_query_ms = 250.0;
};

/// \brief Serving-layer context attached to a recorded query (admission wait
/// measured by QueryService, the session the statement ran on). Zeros for
/// direct embedded use.
struct QueryRecordHints {
  int64_t session_id = 0;
  int64_t admission_wait_us = 0;
  /// Statement RW-lock acquisition delay measured by QueryService.
  int64_t lock_wait_us = 0;
  /// The session's memory tracker; the per-query tracker parents under it
  /// (falls back to MemTracker::Process() when null). Not owned; must stay
  /// alive for the duration of the call.
  MemTracker* session_mem = nullptr;
  /// Distributed trace context propagated from the coordinator (".trace"
  /// wire header); zeros for untraced statements.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  /// When non-null, receives a copy of the query-log record for this
  /// statement (so a shard server can ship the profile back in the wire
  /// trailer without re-scanning the ring). Untouched when introspection is
  /// off or the statement fails before recording.
  QueryLogRecord* record_out = nullptr;
};

/// \brief An embedded, in-memory, columnar SQL engine.
///
/// This plays the role of the paper's in-memory ClickHouse build: columnar
/// storage, vectorized expression evaluation, hash joins and hash
/// aggregation, a cost-based optimizer with pluggable cost models, scalar
/// UDFs (including neural UDFs), and views/temp tables used heavily by the
/// DL2SQL pipelines.
class Database {
 public:
  Database();

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  UdfRegistry& udfs() { return udfs_; }
  const UdfRegistry& udfs() const { return udfs_; }

  /// Optimizer configuration (pushdown, nUDF hint rules, cost model).
  OptimizerOptions& optimizer_options() { return opt_options_; }

  /// Symmetric-hash-join tuning (hint rule 3).
  SymmetricHashJoinOptions& symmetric_join_options() { return shj_options_; }

  /// Intra-query parallelism: wires a Device's thread pool into plan
  /// execution. Engines call this once at construction.
  void set_exec_options(ExecOptions opts) { exec_options_ = opts; }
  const ExecOptions& exec_options() const { return exec_options_; }

  /// Switches the table-residency policy (DL2SQL_STORAGE=paged selects
  /// kPaged at construction). Entering kPaged creates the storage engine —
  /// StorageOptions::FromEnv() for the one-argument form — if none exists
  /// yet; returning to kInMemory keeps the engine alive so already-paged
  /// tables stay readable (they heal to resident on next mutation). Takes
  /// effect for tables registered/mutated after the call.
  Status set_storage_mode(StorageMode mode);
  Status set_storage_mode(StorageMode mode,
                          const storage::StorageOptions& options);
  StorageMode storage_mode() const { return storage_mode_; }
  /// The out-of-core engine, or nullptr before the first kPaged switch.
  const std::shared_ptr<storage::StorageEngine>& storage_engine() const {
    return storage_;
  }

  /// Batch-at-a-time vectorized execution (see DESIGN.md, "Vectorized
  /// execution"). Default ON; the environment variable DL2SQL_VECTOR=OFF
  /// (or "off"/"0") disables it at Database construction, and tests flip it
  /// per-instance for the off-vs-on bit-identity suite. Off runs the exact
  /// pre-vectorization row paths.
  void set_vectorized(bool on) { vectorized_ = on; }
  bool vectorized() const { return vectorized_; }

  /// Reconfigures the cross-query caches. Rebuilds (and therefore clears)
  /// both; disabled caches are destroyed so the engine runs the exact
  /// pre-cache code paths, which is how the ablation bench and the
  /// off-vs-on bit-identity tests get their baselines.
  void set_cache_options(CacheOptions opts);
  const CacheOptions& cache_options() const { return cache_options_; }

  /// The nUDF result cache, or nullptr when disabled (test introspection).
  ShardedLruCache* nudf_cache() { return nudf_cache_.get(); }
  /// The prepared-plan cache, or nullptr when disabled.
  ShardedLruCache* plan_cache() { return plan_cache_.get(); }

  /// Routes cache-miss batched-nUDF invocations through `sink` (the serving
  /// layer's cross-query coalescer); nullptr restores direct invocation. Only
  /// parallel-safe neural UDFs with a non-zero fingerprint are routed, so
  /// results stay bit-identical either way. Not owned; callers must clear the
  /// sink before destroying it, and must not swap it mid-query.
  void set_nudf_batch_sink(NudfBatchSink* sink) { nudf_batch_sink_ = sink; }
  NudfBatchSink* nudf_batch_sink() const { return nudf_batch_sink_; }

  /// When set, operator wall time is charged into this accumulator under
  /// buckets: "scan", "filter", "join", "groupby", "project", "sort",
  /// "limit", and nUDF time separately under "inference".
  void set_cost_accumulator(CostAccumulator* acc) { costs_ = acc; }
  CostAccumulator* cost_accumulator() const { return costs_; }

  /// Total nUDF invocations since construction (hint-pruning assertions).
  /// Atomic: nUDF bodies may finish on pool workers under morsel parallelism.
  int64_t neural_calls() const {
    return neural_calls_.load(std::memory_order_relaxed);
  }
  void reset_neural_calls() {
    neural_calls_.store(0, std::memory_order_relaxed);
  }

  /// Executes one SQL statement; SELECTs return their result set, DML/DDL
  /// return an empty result (row count in the zero-column table).
  Result<Table> Execute(const std::string& sql);

  /// Executes a ';'-separated script, discarding intermediate results.
  Status ExecuteScript(const std::string& script);

  Result<Table> ExecuteStatement(const Statement& stmt);
  Result<Table> ExecuteSelect(const SelectStmt& stmt);

  /// ExecuteStatement plus query-log recording: duration, result rows,
  /// per-query neural/cache tallies, error status, and the serving-layer
  /// hints. Execute()/ExecuteScript() route through this; the serving layer
  /// calls it directly (it parses before admission, so it holds the
  /// Statement and the raw SQL separately). With introspection disabled this
  /// is exactly ExecuteStatement.
  Result<Table> ExecuteStatementRecorded(const Statement& stmt,
                                         const std::string& sql,
                                         const QueryRecordHints& hints);

  /// The query-log ring, or nullptr when introspection is disabled.
  QueryLog* query_log() { return query_log_.get(); }

  const IntrospectionOptions& introspection_options() const {
    return introspection_options_;
  }
  /// Runtime-adjustable slow-query threshold. Atomic: tests and tooling may
  /// lower it while serving threads are recording.
  void set_slow_query_ms(double ms) {
    slow_query_ms_.store(ms, std::memory_order_relaxed);
  }
  double slow_query_ms() const {
    return slow_query_ms_.load(std::memory_order_relaxed);
  }

  /// Per-query hard memory budget in bytes (0 = unlimited, the default; the
  /// environment variable DL2SQL_QUERY_MEM_LIMIT seeds it at construction).
  /// A recorded statement whose operator charges would exceed the budget
  /// fails with ResourceExhausted naming the offending operator — it never
  /// aborts. Takes effect for statements starting after the call.
  void set_query_mem_limit(int64_t bytes) {
    query_mem_limit_.store(bytes, std::memory_order_relaxed);
  }
  int64_t query_mem_limit() const {
    return query_mem_limit_.load(std::memory_order_relaxed);
  }

  /// Plans and optimizes without executing (EXPLAIN). When `referenced` is
  /// non-null it receives every catalog relation the planner resolved — the
  /// dependency set the plan cache validates against catalog versions.
  Result<PlanPtr> PlanQuery(const SelectStmt& stmt,
                            std::vector<std::string>* referenced = nullptr);
  Result<std::string> Explain(const std::string& sql);

  /// Executes the SELECT and renders the plan annotated with actual row
  /// counts and per-operator wall time (cumulative and self).
  Result<std::string> ExplainAnalyze(const std::string& sql);

  /// Runs an already-optimized plan.
  Result<Table> ExecutePlan(const PlanNode& plan);

  /// Convenience: create (or replace) a base table.
  Status RegisterTable(const std::string& name, Table table,
                       bool temporary = false);

  /// The optimized plan of the most recent SELECT (test introspection).
  /// Returned by value: concurrent sessions race on "most recent", so the
  /// snapshot is taken under a lock.
  PlanPtr last_plan() const {
    std::lock_guard<std::mutex> lock(last_run_mu_);
    return last_plan_;
  }

  /// Stats of the most recent symmetric hash join, if any ran.
  SymmetricHashJoinStats last_symmetric_stats() const {
    std::lock_guard<std::mutex> lock(last_run_mu_);
    return last_shj_stats_;
  }

  /// Count of symmetric hash joins executed since construction.
  int64_t symmetric_joins_executed() const {
    return symmetric_joins_.load(std::memory_order_relaxed);
  }

  /// Count of hash joins that reused a prebuilt base-table index.
  int64_t index_joins_executed() const {
    return index_joins_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-node runtime profile collected when ExplainAnalyze drives a query.
  struct NodeRunStats {
    int64_t rows = 0;
    double cumulative_seconds = 0;
    /// Bytes of this node's output table (peak materialized footprint of the
    /// operator; columnar payload, not allocator overhead).
    int64_t output_bytes = 0;
    /// Seconds each pool worker spent inside morsel bodies while this node
    /// (or its subtree) executed; empty when no pool is wired.
    std::vector<double> worker_busy_seconds;
    /// \name Vectorized-kernel profile (zero when the node ran the row path)
    /// @{
    int64_t vec_batches = 0;
    int64_t vec_rows_in = 0;
    int64_t vec_rows_selected = 0;
    /// @}
  };

  /// Per-query tallies accumulated while a recorded statement executes,
  /// reached through a thread_local pointer (set/cleared by
  /// ExecuteStatementRecorded on the query's calling thread; operators and
  /// DrainEvalContext fold into it from that same thread).
  struct QueryTally {
    int64_t neural_calls = 0;
    int64_t nudf_cache_hits = 0;
    bool plan_cache_hit = false;
    int64_t operator_rows = 0;
    int64_t peak_operator_bytes = 0;
    /// Vectorized batches processed across all operators of the statement.
    int64_t vector_batches = 0;
    /// \name Resource accounting (null/zero when MemTracker is disabled)
    /// @{
    /// The per-query tracker (owned by ExecuteStatementRecorded's stack
    /// frame); operator charges and limit checks go through it.
    MemTracker* mem = nullptr;
    /// Lazily created per-PlanKind operator trackers, children of `mem`
    /// (labels "op.<kind>"; the map key is the PlanKind value).
    std::map<int, std::unique_ptr<MemTracker>> op_trackers;
    /// Operator output-charge frames: each ExecNode wrapper pushes a frame,
    /// children's output charges land in their parent's (then-innermost)
    /// frame, and popping the frame releases them — so the tracker holds a
    /// node's inputs and output simultaneously, like execution does. Charges
    /// left at depth 0 (the root output) are released at end of statement.
    std::vector<std::vector<std::pair<MemTracker*, int64_t>>> mem_frames;
    /// Coalesced-batch attribution folded from EvalContexts.
    double nudf_wait_seconds = 0.0;
    double nudf_billed_seconds = 0.0;
    /// @}
    /// \name Out-of-core spill accounting (grace join / external aggregation)
    /// @{
    /// Logical bytes written to spill partitions in the block file.
    int64_t spill_bytes = 0;
    /// Spill partitions produced (non-empty partition runs).
    int64_t spill_partitions = 0;
    /// @}
  };

  Result<Table> ExecNode(const PlanNode& node);
  /// ExecNodeImpl plus NodeRunStats collection (ExplainAnalyze runs).
  Result<Table> ExecNodeCollect(const PlanNode& node);
  Result<Table> ExecNodeImpl(const PlanNode& node);
  /// Lazily created "op.<kind>" child of the running recorded statement's
  /// query tracker; null when no tracked statement is active on this thread.
  /// Operators charge transient state (join build sides, aggregation groups)
  /// against it via ScopedMemCharge.
  MemTracker* OpScratchTracker(PlanKind kind);
  /// Charges `out_bytes` of operator output against the per-PlanKind tracker
  /// of the running recorded statement; parks the charge in the parent's
  /// frame (released when the parent operator finishes). ResourceExhausted
  /// when the charge would exceed a tracker limit up the chain.
  Status ChargeOperatorOutput(QueryTally* tally, const PlanNode& node,
                              int64_t out_bytes);
  Result<Table> ExecScan(const PlanNode& node);
  Result<Table> ExecFilter(const PlanNode& node, Table input);
  Result<Table> ExecProject(const PlanNode& node, Table input);
  Result<Table> ExecJoin(const PlanNode& node, Table left, Table right);
  Result<Table> ExecAggregate(const PlanNode& node, Table input);
  Result<Table> ExecSort(const PlanNode& node, Table input);

  /// \name Out-of-core execution (paged storage mode)
  /// @{
  /// ExecNode plus root materialization: SELECT results hand resident
  /// columns to callers, so a paged root output is decoded here.
  Result<Table> ExecRoot(const PlanNode& plan);
  /// Pages `table` out through the storage engine when paged mode is on and
  /// the table's logical size reaches page_min_bytes; no-op otherwise.
  Status MaybePageOut(Table* table);
  /// Admission probe + materialization for a paged operator input: true if
  /// `t` is (now) resident, false if its resident form would not fit under
  /// the query memory budget (the caller must take a spill path or fail).
  Result<bool> TryEnsureResident(PlanKind kind, Table* t);
  /// Windowed filter/project over a paged input: evaluates row-local
  /// expressions one storage chunk at a time and streams the output back out
  /// through the engine, bounding residency to one window.
  Result<Table> ExecFilterPaged(const PlanNode& node, const Table& input);
  Result<Table> ExecProjectPaged(const PlanNode& node, const Table& input);
  /// Grace hash join: partitions both sides by key hash into block-file
  /// spill runs, joins partition pairs, restores the classic pair order.
  Result<Table> ExecJoinGrace(const PlanNode& node, Table left, Table right);
  /// External aggregation: partitions rows (key + argument values) into
  /// block-file spill runs, aggregates each partition in-core, and merges
  /// groups back into first-seen order.
  Result<Table> ExecAggregateExternal(const PlanNode& node,
                                      const Table& input);
  /// Folds spilled bytes/partitions into the running query tally and the
  /// db.spill.* metrics counters.
  void TallySpill(int64_t bytes, int64_t partitions);
  /// @}

  Result<Table> ExecCreateTable(const CreateTableStmt& stmt);
  Result<Table> ExecInsert(const InsertStmt& stmt);
  Result<Table> ExecUpdate(const UpdateStmt& stmt);
  Result<Table> ExecDelete(const DeleteStmt& stmt);
  Result<Table> ExecDrop(const DropStmt& stmt);

  /// (Re)creates the caches from cache_options_; disabled ones become null.
  void RebuildCaches();
  /// Plan-cache key: normalized SQL x optimizer config x parallelism x UDF
  /// registry version.
  uint64_t PlanCacheKey(const SelectStmt& stmt) const;

  void SetLastPlan(PlanPtr plan) {
    std::lock_guard<std::mutex> lock(last_run_mu_);
    last_plan_ = std::move(plan);
  }

  /// Builds an EvalContext wired to this database (UDFs, subqueries, costs).
  EvalContext MakeEvalContext();
  /// Folds a finished context's counters into the database totals and
  /// returns the inference seconds consumed inside it.
  double DrainEvalContext(const EvalContext& ctx);

  Catalog catalog_;
  UdfRegistry udfs_;
  OptimizerOptions opt_options_;
  SymmetricHashJoinOptions shj_options_;
  ExecOptions exec_options_;
  CacheOptions cache_options_;
  /// Cross-query nUDF result memoization; null when disabled.
  std::unique_ptr<ShardedLruCache> nudf_cache_;
  /// Prepared-plan cache; null when disabled.
  std::unique_ptr<ShardedLruCache> plan_cache_;
  CostAccumulator* costs_ = nullptr;
  NudfBatchSink* nudf_batch_sink_ = nullptr;
  /// Batch-at-a-time vectorized execution toggle (DL2SQL_VECTOR).
  bool vectorized_ = true;
  IntrospectionOptions introspection_options_;
  /// Table residency policy (DL2SQL_STORAGE). The engine outlives a switch
  /// back to kInMemory: paged tables hold shared_ptrs into it.
  StorageMode storage_mode_ = StorageMode::kInMemory;
  std::shared_ptr<storage::StorageEngine> storage_;
  std::atomic<double> slow_query_ms_{250.0};
  /// Per-query memory budget (0 = unlimited; DL2SQL_QUERY_MEM_LIMIT).
  std::atomic<int64_t> query_mem_limit_{0};
  /// Ring behind system.queries; null when introspection is disabled.
  std::unique_ptr<QueryLog> query_log_;
  std::atomic<int64_t> neural_calls_{0};
  /// Guards the "most recent run" introspection snapshots below, which
  /// concurrent sessions would otherwise race on.
  mutable std::mutex last_run_mu_;
  PlanPtr last_plan_;
  SymmetricHashJoinStats last_shj_stats_;
  std::atomic<int64_t> symmetric_joins_{0};
  std::atomic<int64_t> index_joins_{0};
  /// Tally of the recorded statement currently executing on this thread;
  /// null outside ExecuteStatementRecorded (and always null with
  /// introspection disabled, keeping the hot path a single TLS load).
  static thread_local QueryTally* tls_tally_;
  bool collect_node_stats_ = false;
  /// Guards node_stats_: nUDF bodies can re-enter the executor while an
  /// ExplainAnalyze run is collecting (generated DL2SQL pipelines).
  std::mutex node_stats_mu_;
  std::map<const PlanNode*, NodeRunStats> node_stats_;
};

}  // namespace dl2sql::db
