/// \file distributed_planner.h
/// \brief Classifies a SELECT over a sharded table and rewrites it for
/// scatter-gather execution (see DESIGN.md, "Distributed serving").
///
/// Three strategies, tried in order of decreasing pushdown:
///
///  - kPushdown: no aggregation. The original statement ships to every shard
///    verbatim (filters and nUDF calls run data-local); the coordinator
///    concatenates in shard order, or k-way merges when every ORDER BY key
///    maps to an output column (top-k: LIMIT ships too and is re-applied
///    after the merge).
///  - kMergeAggregate: single-table aggregation whose select items are bare
///    group keys or bare COUNT/SUM/AVG/MIN/MAX calls. Shards compute partial
///    aggregates (AVG as its SUM+COUNT rewrite) grouped by the full GROUP BY
///    tuple; the coordinator re-aggregates partials, orders groups
///    deterministically, and applies the final ORDER BY/LIMIT.
///  - kFallback: everything else (joins, subqueries, HAVING, stddevSamp,
///    ORDER BY on non-output expressions, AVG over booleans). The
///    coordinator gathers the referenced shard tables whole and executes the
///    original statement locally — always correct, never fast.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "cluster/merge.h"
#include "common/result.h"
#include "db/database.h"
#include "db/sql/ast.h"

namespace dl2sql::cluster {

enum class DistStrategy { kPushdown, kMergeAggregate, kFallback };

const char* DistStrategyName(DistStrategy s);

struct DistributedQueryPlan {
  DistStrategy strategy = DistStrategy::kFallback;
  /// Statement sent to every shard (kPushdown / kMergeAggregate).
  std::string shard_sql;
  /// Typed layout of shard responses (parses their TSV cells).
  db::TableSchema shard_schema;
  /// Final output layout; identical names/types to single-node execution.
  db::TableSchema output_schema;
  /// kPushdown: ORDER BY keys as output columns for the k-way merge; empty
  /// means concatenate in shard order.
  std::vector<SortKeySpec> merge_keys;
  /// kMergeAggregate: leading group-key columns of the shard partials.
  int num_group_keys = 0;
  /// kMergeAggregate: how each output column rebuilds from partials.
  std::vector<MergeOutputSpec> outputs;
  /// kMergeAggregate: final ORDER BY over output columns.
  std::vector<SortKeySpec> final_order;
  /// LIMIT re-applied after the merge (-1 = none).
  int64_t limit = -1;
  /// Why the planner fell back (empty otherwise) — surfaced in logs.
  std::string fallback_reason;
};

class DistributedPlanner {
 public:
  /// `local` is the coordinator's database: it holds empty stub tables with
  /// the sharded schemas (plus the replicated model UDFs), so planning the
  /// original statement locally yields the exact single-node output schema.
  explicit DistributedPlanner(db::Database* local) : db_(local) {}

  /// Plans `stmt`, which must reference at least one name in
  /// `sharded_tables` (lower-cased). Statement-level errors (unknown
  /// columns, bad types) surface here exactly as single-node planning would
  /// report them.
  Result<DistributedQueryPlan> Plan(const db::SelectStmt& stmt,
                                    const std::set<std::string>& sharded_tables);

 private:
  db::Database* const db_;
};

}  // namespace dl2sql::cluster
