/// \file merge.h
/// \brief Coordinator-side result merging: concatenation, k-way ordered
/// merge, and partial-aggregate re-aggregation (see DESIGN.md, "Distributed
/// serving").
///
/// All functions here are pure table-in/table-out so the merge semantics are
/// unit-testable without sockets or a running cluster. The re-aggregation
/// rules deliberately mirror Database::ExecAggregate's output semantics
/// (AggOutputValue): COUNT merges by integer addition, SUM by adding non-NULL
/// partial sums (all-NULL partials stay NULL), AVG from a SUM+COUNT rewrite,
/// MIN/MAX by Value::Compare — so a merged result is indistinguishable from
/// running the same aggregate on one node whenever float addition order
/// cannot matter (integers, or a single contributing shard).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "db/table.h"

namespace dl2sql::cluster {

/// One ORDER BY key resolved to an output column.
struct SortKeySpec {
  int column = 0;
  bool ascending = true;
};

/// Appends shard partials in shard order; column types must match `schema`.
/// `limit` < 0 keeps every row.
Result<db::Table> ConcatTables(const db::TableSchema& schema,
                               const std::vector<db::Table>& parts,
                               int64_t limit);

/// K-way merge of per-shard tables that are each already sorted by `keys`
/// (Value::Compare: NULLs first, numeric across int/float — the executor's
/// ExecSort order). Stable across shards: ties keep the lower shard index
/// first, then that shard's row order, so merging N sorted shard streams of
/// a unique key column reproduces the single-node ordering byte for byte.
Result<db::Table> MergeSortedTables(const db::TableSchema& schema,
                                    const std::vector<db::Table>& parts,
                                    const std::vector<SortKeySpec>& keys,
                                    int64_t limit);

/// How one output column of a merge-aggregate query is rebuilt from the
/// shard partial columns (partial layout: group keys first, then partials).
struct MergeOutputSpec {
  enum class Kind { kGroupKey, kCount, kSum, kAvg, kMin, kMax };
  Kind kind = Kind::kGroupKey;
  /// Column in the shard partials carrying this output's key / count / sum /
  /// min / max payload (for kAvg: the partial SUM column).
  int partial_index = 0;
  /// kAvg only: the companion COUNT(arg) column in the shard partials.
  int count_index = -1;
};

/// Re-aggregates shard partial rows into final output rows. The first
/// `num_keys` columns of every partial row are the GROUP BY keys; rows with
/// equal keys (row_key encoding, as hash aggregation groups them) merge into
/// one output group. Groups are emitted in ascending key order
/// (Value::Compare lexicographic) — a deterministic order that is
/// independent of how rows were split across shards. With `num_keys` == 0
/// every shard contributes exactly one partial row (global aggregates always
/// produce a row) and exactly one output row results.
Result<db::Table> MergeAggregatePartials(const db::TableSchema& out_schema,
                                         const std::vector<db::Table>& parts,
                                         int num_keys,
                                         const std::vector<MergeOutputSpec>& outputs);

/// Sorts `table` by `keys` with the executor's comparator (stable,
/// Value::Compare, NULLs first) and applies `limit` (< 0 = all). Used for
/// the coordinator-side final ORDER BY of merge-aggregate results.
Result<db::Table> SortAndLimit(db::Table table,
                               const std::vector<SortKeySpec>& keys,
                               int64_t limit);

}  // namespace dl2sql::cluster
