/// \file coordinator.h
/// \brief The cluster coordinator: scatter-gather execution of statements
/// over hash-partitioned tables living on N lindb_server shard processes
/// (see DESIGN.md, "Distributed serving").
///
/// A coordinator-mode lindb_server owns a local Database exactly like a
/// single-node one — same catalog, same UDFs, same system tables — plus this
/// object, installed as the QueryService's DistributedExecutor. Tables
/// created with `PARTITION BY HASH (col)` become *sharded*: the coordinator
/// keeps an empty local stub (so planning, schema resolution and error
/// messages are byte-identical to single-node), broadcasts the DDL to every
/// shard, and from then on routes statements that touch the table:
///
///   SELECT  — classified by DistributedPlanner. Pushdown-complete queries
///             ship verbatim to every shard (filters and nUDFs run
///             data-local; the model was replicated at deploy) and results
///             concatenate or k-way merge; aggregations ship as partial
///             aggregates and re-merge; everything else gathers the shard
///             tables whole and runs locally (always correct, never fast).
///   INSERT  — VALUES rows route per-row by the partition key's hash;
///             INSERT..SELECT materializes the select, then routes.
///   UPDATE/DELETE — broadcast to every shard; all must acknowledge.
///   CREATE/DROP   — broadcast DDL plus the local stub.
///
/// Failure semantics: every shard failure is a returned Status naming the
/// shard (ShardClient's deadline discipline), never a hang. A write that
/// fails after some shards acknowledged leaves the cluster divergent on that
/// table; the error says which shard failed so the operator can retry — the
/// two-phase story stops at acks, there is no distributed rollback (see the
/// failure matrix in DESIGN.md).
///
/// Thread safety: Handles/IsReadOnly/Execute run on arbitrary serving
/// threads. The shard registry is mutex-guarded, ShardClients are internally
/// synchronized, and Execute relies on the QueryService statement RW lock —
/// shared for scatter-gather reads, exclusive for writes and for fallback
/// gathers (which temporarily materialize shard tables into the local
/// catalog). Statement classification happens before the lock, so a DDL
/// racing between classification and lock acquisition can demote a pushdown
/// plan to a fallback executed under the shared lock; the catalog itself is
/// internally locked, so the race costs staleness, never soundness.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/distributed_planner.h"
#include "cluster/shard_client.h"
#include "common/trace.h"
#include "db/database.h"
#include "server/session.h"

namespace dl2sql::cluster {

/// One sharded table's coordinator-side metadata.
struct ShardedTableInfo {
  std::string display_name;      ///< name as written in the CREATE
  db::TableSchema schema;
  std::string partition_column;  ///< as written
  int partition_index = 0;       ///< column position in `schema`
};

class Coordinator : public server::DistributedExecutor {
 public:
  /// `db` is the coordinator's local database (not owned; must outlive this
  /// object). Connections are dialed lazily, so construction succeeds even
  /// while shards are still starting; the connect retry budget absorbs the
  /// race. Registers system.shards and re-registers system.queries /
  /// system.sessions as federated views (restored by the destructor, which
  /// must run before the QueryService/Database it decorates is destroyed —
  /// and after the service's distributed_executor pointer is cleared).
  Coordinator(db::Database* db, std::vector<ShardEndpoint> endpoints,
              ShardClientOptions options);
  ~Coordinator() override;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// \name server::DistributedExecutor
  /// @{
  bool Handles(const db::Statement& stmt) override;
  bool IsReadOnly(const db::Statement& stmt) override;
  Result<db::Table> Execute(const db::Statement& stmt, const std::string& sql,
                            const db::QueryRecordHints& hints) override;
  /// Shard-labeled series for the coordinator's /metrics: each shard's
  /// MetricsRegistry scraped over system.metrics plus the per-shard client
  /// counters, rendered as `<name>{shard="N"} <value>`. Unreachable shards
  /// are skipped (system.shards reports the health).
  std::string FederatedMetricsText() override;
  /// Chrome-trace file of the last traced distributed query: coordinator
  /// spans on pid 1, shard-shipped spans on pid 2+shard, one shared trace id.
  /// Falls back to the whole local trace when nothing distributed was traced.
  Status WriteClusterTrace(const std::string& path) override;
  /// Runs the SELECT distributed and renders the plan with a per-shard
  /// footer: strategy, per-shard latency/rows/bytes, merge cost, and the
  /// slowest shard's share of wall time.
  Result<std::string> ExplainAnalyze(const db::Statement& stmt,
                                     const std::string& sql) override;
  /// @}

  int num_shards() const { return static_cast<int>(shards_.size()); }
  ShardClient* shard(int i) { return shards_[static_cast<size_t>(i)].get(); }

  /// Lower-cased names of every sharded table.
  std::set<std::string> ShardedTables() const;
  bool IsSharded(const std::string& name) const;

  /// Strategy of the last SELECT this coordinator executed (test
  /// introspection; guarded by the same mutex as the registry).
  DistStrategy last_strategy() const;
  std::string last_fallback_reason() const;

 private:
  /// One shard's share of the current distributed statement, accumulated by
  /// ScatterEach into the thread-local DistQueryStats (straggler diagnosis,
  /// EXPLAIN ANALYZE footer, query-log distributed fields).
  struct ShardCallStats {
    bool used = false;         ///< at least one statement went to this shard
    int64_t statements = 0;
    int64_t latency_us = 0;    ///< summed round-trip time
    int64_t rows = 0;          ///< body rows shipped back
    int64_t bytes = 0;         ///< response frame bytes shipped back
    bool has_profile = false;  ///< trailer profile arrived (traced statements)
    server::WireProfile profile;
  };

  /// Per-query scratch installed thread-locally for the duration of one
  /// distributed statement so ScatterEach (same thread) can attribute work.
  struct DistQueryStats {
    uint64_t trace_id = 0;
    uint64_t root_span_id = 0;
    int64_t start_us = 0;       ///< coordinator clock at statement start
    uint8_t strategy = 0;       ///< db::DistStrategyLabel code; 0 = none
    int64_t merge_us = 0;       ///< decode + merge time after the scatter
    std::vector<ShardCallStats> shards;
    std::vector<TraceEvent> shard_events;  ///< shipped spans, rebased, pid set
  };

  /// Dispatch wrapped with trace-context installation and stats collection;
  /// shared by Execute (which also writes the query log and the straggler
  /// WARN) and ExplainAnalyze (which renders the stats instead).
  Result<db::Table> ExecuteTraced(const db::Statement& stmt,
                                  const std::string& sql,
                                  DistQueryStats* stats);

  /// The statement currently executing on this serving thread (ScatterEach
  /// attributes per-shard work to it). Nested scatters — fallback gathers,
  /// INSERT..SELECT — accumulate into the same outer stats.
  static thread_local DistQueryStats* tls_stats_;

  Result<db::Table> Dispatch(const db::Statement& stmt,
                             const std::string& sql);
  Result<db::Table> ExecSelect(const db::SelectStmt& stmt);
  Result<db::Table> ExecCreate(const db::CreateTableStmt& stmt);
  Result<db::Table> ExecInsert(const db::InsertStmt& stmt);
  /// UPDATE/DELETE: broadcasts the original statement text to every shard.
  Result<db::Table> ExecBroadcastWrite(const std::string& sql,
                                       const db::Statement& stmt);
  Result<db::Table> ExecDrop(const db::DropStmt& stmt);

  /// The always-correct escape hatch: pulls every referenced sharded table
  /// whole into the local catalog, runs the statement locally (UDFs and all),
  /// and restores the empty stubs. Requires the exclusive statement lock.
  Result<db::Table> GatherFallback(const db::SelectStmt& stmt,
                                   const std::string& reason);

  /// Runs `sql` on every shard concurrently (shard 0 on the calling thread).
  std::vector<Result<server::WireResponse>> Scatter(const std::string& sql);
  /// Same, over an explicit per-shard statement list ("" = skip that shard).
  std::vector<Result<server::WireResponse>> ScatterEach(
      const std::vector<std::string>& sqls);

  /// Typed TSV decode of one shard frame against `schema`. The cell "NULL"
  /// decodes as SQL NULL for every column type — indistinguishable from a
  /// literal string "NULL" by design of the text protocol.
  Result<db::Table> ResponseToTable(const server::WireResponse& response,
                                    const db::TableSchema& schema,
                                    const std::string& shard_label) const;

  /// All-must-ack broadcast for write statements; returns total affected
  /// rows. The first failing shard's status is returned, named.
  Result<int64_t> BroadcastWrite(const std::string& sql);

  void RegisterClusterSystemTables();
  /// Looks up sharded-table info; error names the table when absent.
  Result<ShardedTableInfo> GetShardedTable(const std::string& name) const;

  db::Database* const db_;
  std::vector<std::unique_ptr<ShardClient>> shards_;

  mutable std::mutex mu_;
  /// Sharded tables keyed by lower-cased name.
  std::map<std::string, ShardedTableInfo> tables_;
  DistStrategy last_strategy_ = DistStrategy::kFallback;
  std::string last_fallback_reason_;

  /// Originals swapped out for the federated system.queries/system.sessions/
  /// system.spans/system.query_profiles providers; restored on destruction.
  std::shared_ptr<db::VirtualTableProvider> saved_queries_;
  std::shared_ptr<db::VirtualTableProvider> saved_sessions_;
  std::shared_ptr<db::VirtualTableProvider> saved_spans_;
  std::shared_ptr<db::VirtualTableProvider> saved_profiles_;
  bool shards_table_registered_ = false;

  /// Trace/span id allocator: a per-process base (construction time) plus a
  /// counter, so ids are unique within the coordinator and effectively unique
  /// across restarts. Never hands out 0.
  uint64_t NextId();
  std::atomic<uint64_t> id_seq_{0};
  uint64_t id_base_ = 0;

  /// The last traced distributed query, kept for WriteClusterTrace. Guarded
  /// by trace_mu_ (Execute runs on arbitrary serving threads).
  mutable std::mutex trace_mu_;
  uint64_t last_trace_id_ = 0;
  std::vector<TraceEvent> last_shard_events_;
};

}  // namespace dl2sql::cluster
