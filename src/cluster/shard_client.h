/// \file shard_client.h
/// \brief One coordinator's TCP client for one lindb_server shard: a small
/// connection pool speaking the wire.h line protocol with hard per-request
/// deadlines.
///
/// House style from the serving tier applies on the network path too: every
/// shard failure — connect refused past the retry budget, send/recv timeout,
/// dropped connection, malformed frame — is a returned Status::Unavailable
/// naming the shard, never a hang. Server-reported errors ("ERR ..." frames)
/// pass through with their original code; the connection stays healthy and
/// returns to the pool. Transport failures close the connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "server/wire.h"

namespace dl2sql::cluster {

struct ShardEndpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// "host:port" or bare "port" (loopback).
Result<ShardEndpoint> ParseShardEndpoint(const std::string& spec);

struct ShardClientOptions {
  /// Total budget for establishing one connection, retried with exponential
  /// backoff (10 ms doubling to 200 ms) — absorbs shard startup races.
  double connect_retry_ms = 3000.0;
  /// Per-statement deadline covering send + execute + full response.
  double statement_timeout_ms = 30000.0;
  /// Deadline for the .ping health probe (system.shards).
  double ping_timeout_ms = 1000.0;

  /// DL2SQL_CLUSTER_CONNECT_RETRY_MS / DL2SQL_CLUSTER_SHARD_TIMEOUT_MS /
  /// DL2SQL_CLUSTER_PING_TIMEOUT_MS override the defaults.
  static ShardClientOptions FromEnv();
};

class ShardClient {
 public:
  ShardClient(int shard_index, ShardEndpoint endpoint,
              ShardClientOptions options);
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  /// Sends one single-line statement (embedded newlines are flattened) and
  /// parses its framed response. `timeout_ms` <= 0 uses the options default.
  /// With an active `trace`, the statement ships under a ".trace" header so
  /// the shard stamps its spans/query-log with the coordinator's ids and
  /// returns its span/profile trailer in WireResponse::meta.
  /// Safe from any thread; each call uses its own pooled connection.
  Result<server::WireResponse> Execute(const std::string& sql,
                                       double timeout_ms = 0.0,
                                       const TraceContext* trace = nullptr);

  /// Round-trips the .ping meta command within ping_timeout_ms.
  Status Ping();

  int shard_index() const { return shard_index_; }
  const ShardEndpoint& endpoint() const { return endpoint_; }
  const ShardClientOptions& options() const { return options_; }
  /// "shard <i> (<host>:<port>)" — the name every failure status carries.
  const std::string& label() const { return label_; }

  int64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  int64_t failures() const { return failures_.load(std::memory_order_relaxed); }
  std::string last_error() const;

  /// \name Per-shard transfer/latency accounting (system.shards, federated
  /// /metrics). Counted on every statement, traced or not.
  /// @{
  int64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  int64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  /// Result rows shipped back by the shard (body rows of OK frames).
  int64_t rows_shipped() const {
    return rows_shipped_.load(std::memory_order_relaxed);
  }
  /// Statement round-trip latency distribution (send to parsed response).
  const Histogram& latency() const { return latency_; }
  int64_t p95_latency_us() const { return latency_.ApproxQuantileMicros(0.95); }
  /// @}

 private:
  /// Pops an idle pooled connection or dials a new one (bounded retry).
  Result<int> AcquireConn();
  void ReleaseConn(int fd);
  Result<int> Connect();
  /// Counts the failure, stashes it for system.shards, and returns it.
  Status Fail(Status status);

  const int shard_index_;
  const ShardEndpoint endpoint_;
  const ShardClientOptions options_;
  const std::string label_;
  std::mutex mu_;
  std::vector<int> idle_;
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> failures_{0};
  std::atomic<int64_t> bytes_sent_{0};
  std::atomic<int64_t> bytes_received_{0};
  std::atomic<int64_t> rows_shipped_{0};
  Histogram latency_;
  mutable std::mutex error_mu_;
  std::string last_error_;
};

}  // namespace dl2sql::cluster
