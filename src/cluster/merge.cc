#include "cluster/merge.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <string>
#include <utility>

#include "cluster/hash_partitioner.h"
#include "db/value.h"

namespace dl2sql::cluster {

namespace {

/// Lexicographic Value::Compare over two key tuples with per-key direction.
/// Returns <0, 0, >0.
int CompareKeyTuples(const std::vector<db::Value>& a,
                     const std::vector<db::Value>& b,
                     const std::vector<SortKeySpec>* specs) {
  for (size_t i = 0; i < a.size(); ++i) {
    int c = a[i].Compare(b[i]);
    if (specs != nullptr && !(*specs)[i].ascending) c = -c;
    if (c != 0) return c;
  }
  return 0;
}

std::vector<db::Value> ExtractKeys(const db::Table& t, int64_t row,
                                   const std::vector<SortKeySpec>& keys) {
  std::vector<db::Value> out;
  out.reserve(keys.size());
  for (const SortKeySpec& k : keys) out.push_back(t.column(k.column).GetValue(row));
  return out;
}

}  // namespace

Result<db::Table> ConcatTables(const db::TableSchema& schema,
                               const std::vector<db::Table>& parts,
                               int64_t limit) {
  db::Table out(schema);
  for (const db::Table& part : parts) {
    if (limit >= 0 && out.num_rows() >= limit) break;
    DL2SQL_RETURN_NOT_OK(out.AppendTable(part));
  }
  if (limit >= 0 && out.num_rows() > limit) {
    std::vector<int64_t> keep(static_cast<size_t>(limit));
    std::iota(keep.begin(), keep.end(), 0);
    out = out.TakeRows(keep);
  }
  return out;
}

Result<db::Table> MergeSortedTables(const db::TableSchema& schema,
                                    const std::vector<db::Table>& parts,
                                    const std::vector<SortKeySpec>& keys,
                                    int64_t limit) {
  db::Table out(schema);
  std::vector<int64_t> cursor(parts.size(), 0);
  while (limit < 0 || out.num_rows() < limit) {
    // Linear scan beats a heap at cluster-sized fan-ins, and the tie rule —
    // strictly-smaller wins, so equal keys keep the lowest shard index —
    // is what makes the merge stable across shards.
    int best = -1;
    std::vector<db::Value> best_keys;
    for (size_t s = 0; s < parts.size(); ++s) {
      if (cursor[s] >= parts[s].num_rows()) continue;
      std::vector<db::Value> k = ExtractKeys(parts[s], cursor[s], keys);
      if (best < 0 || CompareKeyTuples(k, best_keys, &keys) < 0) {
        best = static_cast<int>(s);
        best_keys = std::move(k);
      }
    }
    if (best < 0) break;
    DL2SQL_RETURN_NOT_OK(
        out.AppendRow(parts[static_cast<size_t>(best)].GetRow(cursor[best])));
    ++cursor[best];
  }
  return out;
}

Result<db::Table> MergeAggregatePartials(
    const db::TableSchema& out_schema, const std::vector<db::Table>& parts,
    int num_keys, const std::vector<MergeOutputSpec>& outputs) {
  /// Running state of one output column within one merged group.
  struct Acc {
    int64_t count = 0;     // kCount
    double sum = 0;        // kSum / kAvg numerator
    int64_t sum_count = 0; // kAvg denominator
    bool seen = false;     // any non-NULL partial folded in
    db::Value minmax;      // kMin / kMax (NULL = none yet)
  };
  struct Group {
    std::vector<db::Value> keys;
    std::vector<Acc> accs;
  };

  std::vector<Group> groups;
  std::map<std::string, size_t> index;
  for (const db::Table& part : parts) {
    for (int64_t r = 0; r < part.num_rows(); ++r) {
      std::string key;
      for (int k = 0; k < num_keys; ++k) {
        AppendCanonicalKey(part.column(k).GetValue(r), &key);
      }
      auto [it, fresh] = index.try_emplace(key, groups.size());
      if (fresh) {
        Group g;
        for (int k = 0; k < num_keys; ++k) {
          g.keys.push_back(part.column(k).GetValue(r));
        }
        g.accs.resize(outputs.size());
        groups.push_back(std::move(g));
      }
      Group& g = groups[it->second];
      for (size_t o = 0; o < outputs.size(); ++o) {
        const MergeOutputSpec& spec = outputs[o];
        if (spec.kind == MergeOutputSpec::Kind::kGroupKey) continue;
        Acc& acc = g.accs[o];
        const db::Value v = part.column(spec.partial_index).GetValue(r);
        switch (spec.kind) {
          case MergeOutputSpec::Kind::kCount: {
            DL2SQL_ASSIGN_OR_RETURN(int64_t n, v.AsInt());
            acc.count += n;
            break;
          }
          case MergeOutputSpec::Kind::kSum:
            // A NULL partial sum means that shard saw no non-NULL rows for
            // this group; it must not pull the merged SUM to 0.
            if (!v.is_null()) {
              DL2SQL_ASSIGN_OR_RETURN(double d, v.AsDouble());
              acc.sum += d;
              acc.seen = true;
            }
            break;
          case MergeOutputSpec::Kind::kAvg: {
            if (!v.is_null()) {
              DL2SQL_ASSIGN_OR_RETURN(double d, v.AsDouble());
              acc.sum += d;
            }
            const db::Value c = part.column(spec.count_index).GetValue(r);
            DL2SQL_ASSIGN_OR_RETURN(int64_t n, c.AsInt());
            acc.sum_count += n;
            break;
          }
          case MergeOutputSpec::Kind::kMin:
            if (!v.is_null() &&
                (acc.minmax.is_null() || v.Compare(acc.minmax) < 0)) {
              acc.minmax = v;
            }
            break;
          case MergeOutputSpec::Kind::kMax:
            if (!v.is_null() &&
                (acc.minmax.is_null() || v.Compare(acc.minmax) > 0)) {
              acc.minmax = v;
            }
            break;
          case MergeOutputSpec::Kind::kGroupKey:
            break;
        }
      }
    }
  }

  // A global aggregate (no GROUP BY) yields a row even over empty input;
  // if every shard's partial went missing we still owe the caller one row
  // of empty accumulators (COUNT 0, SUM/AVG/MIN/MAX NULL).
  if (num_keys == 0 && groups.empty()) {
    Group g;
    g.accs.resize(outputs.size());
    groups.push_back(std::move(g));
  }

  std::stable_sort(groups.begin(), groups.end(),
                   [](const Group& a, const Group& b) {
                     return CompareKeyTuples(a.keys, b.keys, nullptr) < 0;
                   });

  db::Table out(out_schema);
  for (const Group& g : groups) {
    std::vector<db::Value> row;
    row.reserve(outputs.size());
    for (size_t o = 0; o < outputs.size(); ++o) {
      const MergeOutputSpec& spec = outputs[o];
      const Acc& acc = g.accs[o];
      switch (spec.kind) {
        case MergeOutputSpec::Kind::kGroupKey:
          row.push_back(g.keys[static_cast<size_t>(spec.partial_index)]);
          break;
        case MergeOutputSpec::Kind::kCount:
          row.push_back(db::Value::Int(acc.count));
          break;
        case MergeOutputSpec::Kind::kSum:
          row.push_back(acc.seen ? db::Value::Float(acc.sum)
                                 : db::Value::Null());
          break;
        case MergeOutputSpec::Kind::kAvg:
          row.push_back(acc.sum_count == 0
                            ? db::Value::Null()
                            : db::Value::Float(
                                  acc.sum /
                                  static_cast<double>(acc.sum_count)));
          break;
        case MergeOutputSpec::Kind::kMin:
        case MergeOutputSpec::Kind::kMax:
          row.push_back(acc.minmax);
          break;
      }
    }
    DL2SQL_RETURN_NOT_OK(out.AppendRow(row));
  }
  return out;
}

Result<db::Table> SortAndLimit(db::Table table,
                               const std::vector<SortKeySpec>& keys,
                               int64_t limit) {
  if (!keys.empty()) {
    std::vector<int64_t> order(static_cast<size_t>(table.num_rows()));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return CompareKeyTuples(ExtractKeys(table, a, keys),
                              ExtractKeys(table, b, keys), &keys) < 0;
    });
    table = table.TakeRows(order);
  }
  if (limit >= 0 && table.num_rows() > limit) {
    std::vector<int64_t> keep(static_cast<size_t>(limit));
    std::iota(keep.begin(), keep.end(), 0);
    table = table.TakeRows(keep);
  }
  return table;
}

}  // namespace dl2sql::cluster
