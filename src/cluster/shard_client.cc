#include "cluster/shard_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/metrics.h"

namespace dl2sql::cluster {

namespace {

double EnvMs(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const double v = std::atof(env);
  return v > 0 ? v : fallback;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Waits until `fd` is ready for `events` or `deadline_ms` passes.
Status AwaitReady(int fd, short events, double deadline_ms,
                  const char* what) {
  while (true) {
    const double remain = deadline_ms - NowMs();
    if (remain <= 0) return Status::Unavailable("timed out ", what);
    pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, static_cast<int>(std::min(remain, 100.0)) + 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("poll failed ", what, ": ",
                                 std::strerror(errno));
    }
    if (n > 0) return Status::OK();
  }
}

struct ShardMetrics {
  Counter* requests;
  Counter* failures;

  static const ShardMetrics& Get() {
    static const ShardMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return ShardMetrics{r.counter("cluster.shard.requests"),
                          r.counter("cluster.shard.failures")};
    }();
    return m;
  }
};

}  // namespace

Result<ShardEndpoint> ParseShardEndpoint(const std::string& spec) {
  ShardEndpoint out;
  const size_t colon = spec.rfind(':');
  std::string port_str = spec;
  if (colon != std::string::npos) {
    out.host = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
  }
  const int port = std::atoi(port_str.c_str());
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad shard endpoint '", spec,
                                   "' (expected host:port)");
  }
  out.port = port;
  return out;
}

ShardClientOptions ShardClientOptions::FromEnv() {
  ShardClientOptions o;
  o.connect_retry_ms = EnvMs("DL2SQL_CLUSTER_CONNECT_RETRY_MS",
                             o.connect_retry_ms);
  o.statement_timeout_ms = EnvMs("DL2SQL_CLUSTER_SHARD_TIMEOUT_MS",
                                 o.statement_timeout_ms);
  o.ping_timeout_ms = EnvMs("DL2SQL_CLUSTER_PING_TIMEOUT_MS",
                            o.ping_timeout_ms);
  return o;
}

ShardClient::ShardClient(int shard_index, ShardEndpoint endpoint,
                         ShardClientOptions options)
    : shard_index_(shard_index), endpoint_(std::move(endpoint)),
      options_(options),
      label_("shard " + std::to_string(shard_index) + " (" + endpoint_.host +
             ":" + std::to_string(endpoint_.port) + ")") {}

ShardClient::~ShardClient() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : idle_) ::close(fd);
  idle_.clear();
}

std::string ShardClient::last_error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return last_error_;
}

Status ShardClient::Fail(Status status) {
  ShardMetrics::Get().failures->Increment();
  failures_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    last_error_ = status.message();
  }
  return status;
}

Result<int> ShardClient::Connect() {
  const double deadline = NowMs() + options_.connect_retry_ms;
  double backoff_ms = 10.0;
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Unavailable(label_, ": socket: ", std::strerror(errno));
    }
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(endpoint_.port));
    if (::inet_pton(AF_INET, endpoint_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return Status::InvalidArgument(label_, ": bad host");
    }
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
      Status st = AwaitReady(fd, POLLOUT, deadline, "connecting");
      if (st.ok()) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err == 0) return fd;
        errno = err;
        rc = -1;
      } else {
        ::close(fd);
        return Status::Unavailable(label_, ": connect timed out after ",
                                   options_.connect_retry_ms, " ms");
      }
    }
    if (rc == 0) return fd;
    const int saved = errno;
    ::close(fd);
    if (NowMs() + backoff_ms >= deadline) {
      return Status::Unavailable(label_, ": connect: ", std::strerror(saved),
                                 " (retried for ", options_.connect_retry_ms,
                                 " ms)");
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 200.0);
  }
}

Result<int> ShardClient::AcquireConn() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      const int fd = idle_.back();
      idle_.pop_back();
      return fd;
    }
  }
  return Connect();
}

void ShardClient::ReleaseConn(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(fd);
}

Result<server::WireResponse> ShardClient::Execute(const std::string& sql,
                                                  double timeout_ms,
                                                  const TraceContext* trace) {
  ShardMetrics::Get().requests->Increment();
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (timeout_ms <= 0) timeout_ms = options_.statement_timeout_ms;
  const double start_ms = NowMs();
  const double deadline = start_ms + timeout_ms;

  auto fd_result = AcquireConn();
  if (!fd_result.ok()) return Fail(fd_result.status());
  const int fd = *fd_result;

  // One statement per line: flatten any embedded newlines.
  std::string line = sql;
  for (char& c : line) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  if (trace != nullptr && trace->active()) {
    line = server::FormatTraceStatement(trace->trace_id,
                                        trace->parent_span_id, line);
  }
  line += '\n';

  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd, line.data() + sent, line.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status st = AwaitReady(fd, POLLOUT, deadline, "sending to shard");
      if (st.ok()) continue;
      ::close(fd);
      return Fail(Status::Unavailable(label_, ": statement timed out after ",
                                      timeout_ms, " ms (send)"));
    }
    ::close(fd);
    return Fail(Status::Unavailable(label_, ": send: ",
                                    std::strerror(errno)));
  }
  bytes_sent_.fetch_add(static_cast<int64_t>(line.size()),
                        std::memory_order_relaxed);

  std::string buffer;
  size_t frame_len = 0;
  while ((frame_len = server::CompleteFrameLength(buffer)) == 0) {
    Status st = AwaitReady(fd, POLLIN, deadline, "awaiting shard response");
    if (!st.ok()) {
      ::close(fd);
      return Fail(Status::Unavailable(label_, ": statement timed out after ",
                                      timeout_ms, " ms (awaiting response)"));
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    ::close(fd);
    if (n == 0) {
      return Fail(Status::Unavailable(
          label_, ": connection closed mid-response"));
    }
    return Fail(Status::Unavailable(label_, ": recv: ",
                                    std::strerror(errno)));
  }
  if (frame_len != buffer.size()) {
    // Bytes past the frame mean the stream is desynchronized; drop it.
    ::close(fd);
    return Fail(Status::Unavailable(label_, ": protocol desync (",
                                    buffer.size() - frame_len,
                                    " bytes past frame end)"));
  }

  auto parsed = server::ParseWireResponse(buffer);
  if (!parsed.ok()) {
    // Garbled frame: a transport problem, not a server-reported error.
    ::close(fd);
    return Fail(Status::Unavailable(label_, ": ", parsed.status().message()));
  }
  // The connection stays healthy either way — a clean "ERR ..." frame means
  // the shard executed and reported; its typed status passes through in
  // WireResponse::error for the caller to surface.
  ReleaseConn(fd);
  bytes_received_.fetch_add(static_cast<int64_t>(buffer.size()),
                            std::memory_order_relaxed);
  latency_.Record(static_cast<int64_t>((NowMs() - start_ms) * 1000.0));
  if (!parsed->error.ok()) {
    return parsed->error.WithContext(label_);
  }
  rows_shipped_.fetch_add(static_cast<int64_t>(parsed->cells.size()),
                          std::memory_order_relaxed);
  return parsed;
}

Status ShardClient::Ping() {
  auto response = Execute(".ping", options_.ping_timeout_ms);
  if (!response.ok()) return response.status();
  if (response->rows != 0 || !response->columns.empty()) {
    return Fail(Status::Unavailable(label_, ": unexpected .ping response"));
  }
  return Status::OK();
}

}  // namespace dl2sql::cluster
