#include "cluster/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <optional>
#include <thread>
#include <utility>

#include "cluster/hash_partitioner.h"
#include "cluster/merge.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "db/query_log.h"
#include "db/sql/printer.h"

namespace dl2sql::cluster {

namespace {

struct ClusterMetrics {
  Counter* pushdown;
  Counter* merge_agg;
  Counter* fallback;
  Counter* broadcast_writes;
  Counter* routed_rows;

  static const ClusterMetrics& Get() {
    static const ClusterMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return ClusterMetrics{r.counter("cluster.select.pushdown"),
                            r.counter("cluster.select.merge_aggregate"),
                            r.counter("cluster.select.fallback"),
                            r.counter("cluster.write.broadcasts"),
                            r.counter("cluster.insert.rows_routed")};
    }();
    return m;
  }
};

db::QueryKind KindOfStatement(const db::Statement& stmt) {
  if (std::holds_alternative<std::shared_ptr<db::SelectStmt>>(stmt)) {
    return db::QueryKind::kSelect;
  }
  if (std::holds_alternative<db::InsertStmt>(stmt)) {
    return db::QueryKind::kInsert;
  }
  if (std::holds_alternative<db::UpdateStmt>(stmt)) {
    return db::QueryKind::kUpdate;
  }
  if (std::holds_alternative<db::DeleteStmt>(stmt)) {
    return db::QueryKind::kDelete;
  }
  return db::QueryKind::kDdl;
}

void CollectReferencedTables(const db::SelectStmt& stmt,
                             std::vector<std::string>* out);

void CollectReferencedTablesExpr(const db::Expr& e,
                                 std::vector<std::string>* out) {
  if (e.subquery != nullptr) CollectReferencedTables(*e.subquery, out);
  for (const auto& child : e.children) {
    if (child != nullptr) CollectReferencedTablesExpr(*child, out);
  }
}

/// Every table name a SELECT mentions syntactically: FROM, joins, derived
/// tables, and scalar subqueries anywhere in the statement.
void CollectReferencedTables(const db::SelectStmt& stmt,
                             std::vector<std::string>* out) {
  auto visit_ref = [&](const db::TableRef& ref) {
    if (ref.IsDerived()) {
      CollectReferencedTables(*ref.subquery, out);
    } else if (!ref.table_name.empty()) {
      out->push_back(ref.table_name);
    }
  };
  if (stmt.from) visit_ref(*stmt.from);
  for (const auto& j : stmt.joins) visit_ref(j.table);
  for (const auto& item : stmt.items) {
    if (item.expr != nullptr) CollectReferencedTablesExpr(*item.expr, out);
  }
  if (stmt.where != nullptr) CollectReferencedTablesExpr(*stmt.where, out);
  for (const auto& g : stmt.group_by) {
    if (g != nullptr) CollectReferencedTablesExpr(*g, out);
  }
  if (stmt.having != nullptr) CollectReferencedTablesExpr(*stmt.having, out);
  for (const auto& o : stmt.order_by) {
    if (o.expr != nullptr) CollectReferencedTablesExpr(*o.expr, out);
  }
}

bool StatementHasSubquery(const db::Expr& e) {
  if (e.kind == db::ExprKind::kScalarSubquery) return true;
  for (const auto& child : e.children) {
    if (child != nullptr && StatementHasSubquery(*child)) return true;
  }
  return false;
}

/// SQL type token for broadcast DDL, chosen from the names LookupTypeName
/// accepts so the shard parses the reconstructed statement back to the same
/// schema.
Result<const char*> DdlTypeName(db::DataType type) {
  switch (type) {
    case db::DataType::kInt64:
      return "int64";
    case db::DataType::kFloat64:
      return "float64";
    case db::DataType::kString:
      return "text";
    case db::DataType::kBool:
      return "bool";
    case db::DataType::kBlob:
      return "blob";
    default:
      return Status::NotImplemented("column type ", db::DataTypeToString(type),
                                    " cannot be broadcast as DDL");
  }
}

/// The partition key of one VALUES cell. Only literals (and negated numeric
/// literals) qualify: routing must not depend on coordinator-side expression
/// evaluation the shards would repeat differently.
Result<db::Value> LiteralPartitionKey(const db::Expr& e) {
  if (e.kind == db::ExprKind::kLiteral) return e.literal;
  if (e.kind == db::ExprKind::kUnary && e.un_op == db::UnaryOp::kNeg &&
      !e.children.empty() && e.children[0] != nullptr &&
      e.children[0]->kind == db::ExprKind::kLiteral) {
    const db::Value& v = e.children[0]->literal;
    if (v.type() == db::DataType::kInt64) return db::Value::Int(-v.int_value());
    if (v.type() == db::DataType::kFloat64) {
      return db::Value::Float(-v.float_value());
    }
  }
  return Status::NotImplemented(
      "INSERT into a sharded table needs a literal partition key, got ",
      db::sql::PrintExpr(e));
}

/// Renders a materialized value back to a SQL literal for INSERT..SELECT
/// routing. Strings with embedded newlines are rejected: the line protocol
/// flattens newlines, so they cannot round-trip.
Result<std::string> FormatSqlLiteral(const db::Value& v) {
  switch (v.type()) {
    case db::DataType::kNull:
      return std::string("NULL");
    case db::DataType::kBool:
      return std::string(v.bool_value() ? "TRUE" : "FALSE");
    case db::DataType::kInt64:
      return std::to_string(v.int_value());
    case db::DataType::kFloat64: {
      if (!std::isfinite(v.float_value())) {
        return Status::NotImplemented(
            "non-finite float values cannot be routed as SQL literals");
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v.float_value());
      std::string text(buf);
      // Keep the literal's float type explicit when the value is integral.
      if (text.find_first_of(".eE") == std::string::npos) text += ".0";
      return text;
    }
    case db::DataType::kString: {
      const std::string& s = v.string_value();
      if (s.find('\n') != std::string::npos ||
          s.find('\r') != std::string::npos) {
        return Status::NotImplemented(
            "string values with newlines cannot be routed over the line "
            "protocol");
      }
      std::string out = "'";
      for (char c : s) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    default:
      return Status::NotImplemented("values of type ",
                                    db::DataTypeToString(v.type()),
                                    " cannot be routed as SQL literals");
  }
}

/// Typed decode of one wire TSV cell. "NULL" decodes as SQL NULL for every
/// column type (the text protocol cannot distinguish it from a literal
/// string "NULL" — acceptable for this workload's data).
Result<db::Value> DecodeCell(const std::string& cell, db::DataType type) {
  if (cell == "NULL") return db::Value::Null();
  switch (type) {
    case db::DataType::kBool:
      if (cell == "true") return db::Value::Bool(true);
      if (cell == "false") return db::Value::Bool(false);
      return Status::ParseError("bad bool cell '", cell, "'");
    case db::DataType::kInt64: {
      char* end = nullptr;
      const long long v = std::strtoll(cell.c_str(), &end, 10);
      if (end == cell.c_str() || *end != '\0') {
        return Status::ParseError("bad int cell '", cell, "'");
      }
      return db::Value::Int(static_cast<int64_t>(v));
    }
    case db::DataType::kFloat64: {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        return Status::ParseError("bad float cell '", cell, "'");
      }
      return db::Value::Float(v);
    }
    case db::DataType::kString:
      return db::Value::String(cell);
    case db::DataType::kBlob:
      return db::Value::Blob(cell);
    default:
      return Status::ParseError("cell for unsupported column type ",
                                db::DataTypeToString(type));
  }
}

/// Zero-column result carrying an affected-row count, matching what
/// single-node DML/DDL returns.
db::Table RowCountResult(int64_t rows) {
  db::Table out{db::TableSchema{}};
  out.SetZeroColumnRows(rows);
  return out;
}

/// db::DistStrategyLabel code for a planner strategy (query log, EXPLAIN
/// ANALYZE header).
uint8_t StrategyCode(DistStrategy strategy) {
  switch (strategy) {
    case DistStrategy::kPushdown:
      return 1;
    case DistStrategy::kMergeAggregate:
      return 2;
    case DistStrategy::kFallback:
      return 3;
  }
  return 0;
}

std::string FormatMs(int64_t micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(micros) / 1000.0);
  return buf;
}

}  // namespace

thread_local Coordinator::DistQueryStats* Coordinator::tls_stats_ = nullptr;

Coordinator::Coordinator(db::Database* db, std::vector<ShardEndpoint> endpoints,
                         ShardClientOptions options)
    : db_(db) {
  // Trace ids only need to be unique per coordinator plus unlikely to collide
  // across restarts; wall-clock micros at construction mixed with the object
  // address is plenty without dragging in a PRNG.
  id_base_ = static_cast<uint64_t>(
                 std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count())
             << 16;
  id_base_ ^= reinterpret_cast<uintptr_t>(this);
  shards_.reserve(endpoints.size());
  for (size_t i = 0; i < endpoints.size(); ++i) {
    shards_.push_back(std::make_unique<ShardClient>(
        static_cast<int>(i), std::move(endpoints[i]), options));
  }
  RegisterClusterSystemTables();
}

Coordinator::~Coordinator() {
  db::Catalog& catalog = db_->catalog();
  if (shards_table_registered_) {
    catalog.UnregisterVirtualTable("system.shards");
  }
  if (saved_queries_ != nullptr) {
    (void)catalog.RegisterVirtualTable(saved_queries_);
  }
  if (saved_sessions_ != nullptr) {
    (void)catalog.RegisterVirtualTable(saved_sessions_);
  }
  if (saved_spans_ != nullptr) {
    (void)catalog.RegisterVirtualTable(saved_spans_);
  }
  if (saved_profiles_ != nullptr) {
    (void)catalog.RegisterVirtualTable(saved_profiles_);
  }
}

uint64_t Coordinator::NextId() {
  const uint64_t id =
      id_base_ + id_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  return id == 0 ? 1 : id;
}

std::set<std::string> Coordinator::ShardedTables() const {
  std::set<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, info] : tables_) out.insert(name);
  return out;
}

bool Coordinator::IsSharded(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(ToLower(name)) != 0;
}

DistStrategy Coordinator::last_strategy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_strategy_;
}

std::string Coordinator::last_fallback_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_fallback_reason_;
}

Result<ShardedTableInfo> Coordinator::GetShardedTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("'", name, "' is not a sharded table");
  }
  return it->second;
}

namespace {

/// Sharded names a SELECT reaches, following local view definitions (a view
/// over a sharded table must route like the table itself).
void CollectShardedNames(const db::SelectStmt& stmt, const db::Catalog& catalog,
                         const std::set<std::string>& sharded,
                         std::set<std::string>* visited_views,
                         std::set<std::string>* out) {
  std::vector<std::string> names;
  CollectReferencedTables(stmt, &names);
  for (const std::string& name : names) {
    const std::string key = ToLower(name);
    if (sharded.count(key) != 0) {
      out->insert(key);
      continue;
    }
    if (visited_views->count(key) != 0) continue;
    visited_views->insert(key);
    if (catalog.HasView(name)) {
      auto view = catalog.GetView(name);
      if (view.ok() && *view != nullptr) {
        CollectShardedNames(**view, catalog, sharded, visited_views, out);
      }
    }
  }
}

}  // namespace

bool Coordinator::Handles(const db::Statement& stmt) {
  if (const auto* sel =
          std::get_if<std::shared_ptr<db::SelectStmt>>(&stmt)) {
    if (*sel == nullptr) return false;
    std::set<std::string> visited, sharded_refs;
    CollectShardedNames(**sel, db_->catalog(), ShardedTables(), &visited,
                        &sharded_refs);
    return !sharded_refs.empty();
  }
  if (const auto* create = std::get_if<db::CreateTableStmt>(&stmt)) {
    return !create->partition_by.empty() && !create->is_view;
  }
  if (const auto* insert = std::get_if<db::InsertStmt>(&stmt)) {
    return IsSharded(insert->table);
  }
  if (const auto* update = std::get_if<db::UpdateStmt>(&stmt)) {
    return IsSharded(update->table);
  }
  if (const auto* del = std::get_if<db::DeleteStmt>(&stmt)) {
    return IsSharded(del->table);
  }
  if (const auto* drop = std::get_if<db::DropStmt>(&stmt)) {
    return !drop->is_view && IsSharded(drop->name);
  }
  return false;
}

bool Coordinator::IsReadOnly(const db::Statement& stmt) {
  const auto* sel = std::get_if<std::shared_ptr<db::SelectStmt>>(&stmt);
  if (sel == nullptr || *sel == nullptr) return false;
  // A fallback gather mutates the local catalog, so it needs the exclusive
  // lock; pushdown and merge-aggregate scatter-gathers only read. Planning
  // errors stay read-only — Execute re-plans and returns the same error.
  DistributedPlanner planner(db_);
  auto plan = planner.Plan(**sel, ShardedTables());
  if (!plan.ok()) return true;
  return plan->strategy != DistStrategy::kFallback;
}

Result<db::Table> Coordinator::Execute(const db::Statement& stmt,
                                       const std::string& sql,
                                       const db::QueryRecordHints& hints) {
  Stopwatch watch;
  DistQueryStats stats;
  Result<db::Table> result = ExecuteTraced(stmt, sql, &stats);
  const int64_t duration_us = watch.ElapsedMicros();

  int64_t shards_used = 0;
  int64_t slowest_shard = -1;
  int64_t slowest_us = 0;
  for (size_t i = 0; i < stats.shards.size(); ++i) {
    if (!stats.shards[i].used) continue;
    ++shards_used;
    if (stats.shards[i].latency_us > slowest_us) {
      slowest_us = stats.shards[i].latency_us;
      slowest_shard = static_cast<int64_t>(i);
    }
  }

  db::QueryLog* log = db_->query_log();
  if (log != nullptr) {
    db::QueryLogRecord rec;
    rec.sql = sql;
    rec.kind = KindOfStatement(stmt);
    if (result.ok()) {
      rec.rows = result->num_rows();
    } else {
      rec.error = result.status().ToString();
    }
    rec.duration_us = duration_us;
    rec.session_id = hints.session_id;
    rec.admission_wait_us = hints.admission_wait_us;
    rec.lock_wait_us = hints.lock_wait_us;
    rec.end_micros = TraceCollector::NowMicros();
    rec.trace_id = stats.trace_id;
    rec.parent_span_id = hints.parent_span_id;
    rec.dist_strategy = stats.strategy;
    rec.dist_shards = shards_used;
    rec.dist_slowest_shard = slowest_shard;
    rec.dist_slowest_us = slowest_us;
    rec.dist_merge_us = stats.merge_us;
    log->Record(rec);
    if (hints.record_out != nullptr) *hints.record_out = rec;
  }

  // The single-node slow-query WARN lives in ExecuteStatementRecorded, which
  // distributed statements bypass — so the coordinator emits its own, naming
  // the straggler and its share of wall time.
  const double threshold_ms = db_->slow_query_ms();
  const double duration_ms = static_cast<double>(duration_us) / 1000.0;
  if (threshold_ms > 0 && duration_ms >= threshold_ms) {
    std::string straggler;
    if (slowest_shard >= 0 && duration_us > 0) {
      const int share = static_cast<int>(
          100.0 * static_cast<double>(slowest_us) /
          static_cast<double>(duration_us));
      straggler = " [slowest: " +
                  shards_[static_cast<size_t>(slowest_shard)]->label() + " " +
                  FormatMs(slowest_us) + " ms = " + std::to_string(share) +
                  "% of wall time, merge " + FormatMs(stats.merge_us) + " ms]";
    }
    const char* strategy = db::DistStrategyLabel(stats.strategy);
    DL2SQL_LOG(Warning) << "slow distributed query (" << duration_ms
                        << " ms >= " << threshold_ms << " ms threshold, "
                        << (*strategy != '\0' ? strategy : "no scatter") << ", "
                        << shards_used << " shards): " << sql << straggler;
  }
  return result;
}

Result<db::Table> Coordinator::ExecuteTraced(const db::Statement& stmt,
                                             const std::string& sql,
                                             DistQueryStats* stats) {
  stats->shards.resize(shards_.size());
  // Adopt an inbound trace context (a client/upstream coordinator sent a
  // ".trace"-headed statement) or mint a fresh trace id when tracing is on.
  // When tracing is off and nothing arrived, trace_id stays 0 and no shard
  // statement carries a header — the wire bytes are identical to pre-tracing.
  const TraceContext inbound = CurrentTraceContext();
  if (inbound.active() || TraceCollector::Global().enabled()) {
    stats->trace_id = inbound.active() ? inbound.trace_id : NextId();
    stats->root_span_id = NextId();
  }
  stats->start_us = TraceCollector::NowMicros();

  DistQueryStats* const prev = tls_stats_;
  tls_stats_ = stats;
  Result<db::Table> result = Status::InternalError("not dispatched");
  {
    std::optional<ScopedTraceContext> scoped;
    if (stats->trace_id != 0 && !inbound.active()) {
      scoped.emplace(TraceContext{stats->trace_id, stats->root_span_id});
    }
    DL2SQL_TRACE_SPAN("cluster", "distributed_query");
    result = Dispatch(stmt, sql);
  }
  tls_stats_ = prev;

  if (stats->trace_id != 0) {
    std::lock_guard<std::mutex> lock(trace_mu_);
    last_trace_id_ = stats->trace_id;
    last_shard_events_ = stats->shard_events;
  }
  return result;
}

Result<db::Table> Coordinator::Dispatch(const db::Statement& stmt,
                                        const std::string& sql) {
  if (const auto* sel =
          std::get_if<std::shared_ptr<db::SelectStmt>>(&stmt)) {
    return ExecSelect(**sel);
  }
  if (const auto* create = std::get_if<db::CreateTableStmt>(&stmt)) {
    return ExecCreate(*create);
  }
  if (const auto* insert = std::get_if<db::InsertStmt>(&stmt)) {
    return ExecInsert(*insert);
  }
  if (std::holds_alternative<db::UpdateStmt>(stmt) ||
      std::holds_alternative<db::DeleteStmt>(stmt)) {
    return ExecBroadcastWrite(sql, stmt);
  }
  if (const auto* drop = std::get_if<db::DropStmt>(&stmt)) {
    return ExecDrop(*drop);
  }
  return Status::InternalError("unroutable statement reached the coordinator");
}

std::vector<Result<server::WireResponse>> Coordinator::Scatter(
    const std::string& sql) {
  return ScatterEach(std::vector<std::string>(shards_.size(), sql));
}

std::vector<Result<server::WireResponse>> Coordinator::ScatterEach(
    const std::vector<std::string>& sqls) {
  std::vector<Result<server::WireResponse>> out(
      shards_.size(),
      Result<server::WireResponse>(Status::InternalError("not dispatched")));
  DistQueryStats* const stats = tls_stats_;
  TraceContext trace;
  if (stats != nullptr && stats->trace_id != 0) {
    trace = TraceContext{stats->trace_id, stats->root_span_id};
  }
  const TraceContext* const trace_ptr = trace.active() ? &trace : nullptr;

  struct Call {
    bool ran = false;
    int64_t start_us = 0;
    int64_t latency_us = 0;
  };
  std::vector<Call> calls(shards_.size());
  // Each invocation writes only its own out/calls slots, so the spawned
  // threads never touch shared state; everything folds into `stats` after
  // the join, on the calling thread.
  auto run_one = [&](size_t i) {
    calls[i].ran = true;
    calls[i].start_us = TraceCollector::NowMicros();
    out[i] = shards_[i]->Execute(sqls[i], 0.0, trace_ptr);
    calls[i].latency_us = TraceCollector::NowMicros() - calls[i].start_us;
  };

  // One thread per remote shard, shard 0 on the calling thread. Statement
  // counts here are serving-request rate, not row rate, so the per-statement
  // thread spawn is noise next to the network round-trip.
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (size_t i = 1; i < shards_.size(); ++i) {
    if (sqls[i].empty()) continue;
    threads.emplace_back([&run_one, i] { run_one(i); });
  }
  if (!shards_.empty() && !sqls[0].empty()) run_one(0);
  for (auto& t : threads) t.join();

  if (stats == nullptr) return out;
  const bool tracing = TraceCollector::Global().enabled();
  // Shipped-span cap per query: a pathological shard can't balloon the
  // coordinator's trace buffer.
  constexpr size_t kMaxShardEvents = 4096;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!calls[i].ran) continue;
    ShardCallStats& s = stats->shards[i];
    s.used = true;
    ++s.statements;
    s.latency_us += calls[i].latency_us;
    if (tracing) {
      // Coordinator-side view of the round trip; the shard's own spans (from
      // the trailer) nest under it on their per-shard lane.
      TraceEvent rpc;
      rpc.name = "shard " + std::to_string(i) + " rpc";
      rpc.category = "cluster";
      rpc.start_us = calls[i].start_us;
      rpc.duration_us = calls[i].latency_us;
      rpc.tid = TraceCollector::CurrentThreadId();
      rpc.trace_id = stats->trace_id;
      TraceCollector::Global().Record(std::move(rpc));
    }
    if (!out[i].ok()) continue;
    s.rows += static_cast<int64_t>(out[i]->cells.size());
    s.bytes += out[i]->wire_bytes;
    for (const auto& fields : out[i]->meta) {
      TraceEvent ev;
      server::WireProfile profile;
      if (server::ParseSpanMeta(fields, &ev)) {
        if (stats->shard_events.size() >= kMaxShardEvents) continue;
        ev.pid = 2 + static_cast<int32_t>(i);
        ev.trace_id = stats->trace_id;
        // Shard clocks ship relative to their statement start; rebase onto
        // this coordinator's clock at the moment the rpc went out.
        ev.start_us += calls[i].start_us;
        stats->shard_events.push_back(std::move(ev));
      } else if (server::ParseProfileMeta(fields, &profile)) {
        s.has_profile = true;
        s.profile.rows += profile.rows;
        s.profile.bytes += profile.bytes;
        s.profile.duration_us += profile.duration_us;
        s.profile.cpu_us += profile.cpu_us;
        s.profile.admission_wait_us += profile.admission_wait_us;
        s.profile.lock_wait_us += profile.lock_wait_us;
        s.profile.pool_queue_wait_us += profile.pool_queue_wait_us;
        s.profile.mem_peak_bytes =
            std::max(s.profile.mem_peak_bytes, profile.mem_peak_bytes);
        s.profile.spill_bytes += profile.spill_bytes;
        s.profile.spill_partitions += profile.spill_partitions;
        s.profile.neural_calls += profile.neural_calls;
      }
    }
  }
  return out;
}

Result<db::Table> Coordinator::ResponseToTable(
    const server::WireResponse& response, const db::TableSchema& schema,
    const std::string& shard_label) const {
  if (!response.error.ok()) return response.error.WithContext(shard_label);
  if (schema.num_fields() == 0) return RowCountResult(response.rows);
  if (static_cast<int>(response.columns.size()) != schema.num_fields()) {
    return Status::InternalError(
        shard_label, " returned ", response.columns.size(),
        " columns where the distributed plan expected ", schema.num_fields());
  }
  db::Table out{schema};
  std::vector<db::Value> row;
  for (const auto& cells : response.cells) {
    row.clear();
    row.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      auto value = DecodeCell(cells[c], schema.field(static_cast<int>(c)).type);
      if (!value.ok()) return value.status().WithContext(shard_label);
      row.push_back(std::move(*value));
    }
    DL2SQL_RETURN_NOT_OK(out.AppendRow(row));
  }
  return out;
}

Result<db::Table> Coordinator::ExecSelect(const db::SelectStmt& stmt) {
  DistributedPlanner planner(db_);
  DL2SQL_ASSIGN_OR_RETURN(DistributedQueryPlan plan,
                          planner.Plan(stmt, ShardedTables()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_strategy_ = plan.strategy;
    last_fallback_reason_ = plan.fallback_reason;
  }
  if (tls_stats_ != nullptr && tls_stats_->strategy == 0) {
    // Outermost SELECT wins; a nested fallback gather's inner scatters keep
    // the outer statement's classification.
    tls_stats_->strategy = StrategyCode(plan.strategy);
  }
  if (plan.strategy == DistStrategy::kFallback) {
    ClusterMetrics::Get().fallback->Increment();
    return GatherFallback(stmt, plan.fallback_reason);
  }

  std::vector<Result<server::WireResponse>> responses =
      Scatter(plan.shard_sql);
  // Everything after the scatter — typed decode plus concat/k-way
  // merge/partial-aggregate re-merge — is coordinator merge cost.
  struct MergeTimer {
    explicit MergeTimer(int64_t* out) : out_(out) {}
    ~MergeTimer() {
      if (out_ != nullptr) *out_ += watch_.ElapsedMicros();
    }
    Stopwatch watch_;
    int64_t* out_;
  } merge_timer(tls_stats_ != nullptr ? &tls_stats_->merge_us : nullptr);
  std::vector<db::Table> parts;
  parts.reserve(responses.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    if (!responses[i].ok()) return responses[i].status();
    DL2SQL_ASSIGN_OR_RETURN(
        db::Table part, ResponseToTable(*responses[i], plan.shard_schema,
                                        shards_[i]->label()));
    parts.push_back(std::move(part));
  }

  if (plan.strategy == DistStrategy::kPushdown) {
    ClusterMetrics::Get().pushdown->Increment();
    if (plan.merge_keys.empty()) {
      return ConcatTables(plan.output_schema, parts, plan.limit);
    }
    return MergeSortedTables(plan.output_schema, parts, plan.merge_keys,
                             plan.limit);
  }

  ClusterMetrics::Get().merge_agg->Increment();
  DL2SQL_ASSIGN_OR_RETURN(
      db::Table merged,
      MergeAggregatePartials(plan.output_schema, parts, plan.num_group_keys,
                             plan.outputs));
  return SortAndLimit(std::move(merged), plan.final_order, plan.limit);
}

Result<db::Table> Coordinator::GatherFallback(const db::SelectStmt& stmt,
                                              const std::string& reason) {
  (void)reason;  // recorded in last_fallback_reason_ for introspection
  std::set<std::string> visited, sharded_refs;
  CollectShardedNames(stmt, db_->catalog(), ShardedTables(), &visited,
                      &sharded_refs);

  // Pull every referenced sharded table whole, swap it in for the empty
  // stub, run locally, and restore the stubs — even on failure.
  std::vector<ShardedTableInfo> gathered;
  Status gather_status = Status::OK();
  for (const std::string& name : sharded_refs) {
    auto info = GetShardedTable(name);
    if (!info.ok()) {
      gather_status = info.status();
      break;
    }
    std::vector<Result<server::WireResponse>> responses =
        Scatter("SELECT * FROM " + info->display_name);
    std::vector<db::Table> parts;
    parts.reserve(responses.size());
    for (size_t i = 0; i < responses.size() && gather_status.ok(); ++i) {
      if (!responses[i].ok()) {
        gather_status = responses[i].status();
        break;
      }
      auto part =
          ResponseToTable(*responses[i], info->schema, shards_[i]->label());
      if (!part.ok()) {
        gather_status = part.status();
        break;
      }
      parts.push_back(std::move(*part));
    }
    if (!gather_status.ok()) break;
    auto whole = ConcatTables(info->schema, parts, -1);
    if (!whole.ok()) {
      gather_status = whole.status();
      break;
    }
    gather_status = db_->RegisterTable(info->display_name, std::move(*whole));
    if (!gather_status.ok()) break;
    gathered.push_back(std::move(*info));
  }

  Result<db::Table> result = gather_status.ok()
                                 ? db_->ExecuteSelect(stmt)
                                 : Result<db::Table>(gather_status);

  for (const ShardedTableInfo& info : gathered) {
    (void)db_->RegisterTable(info.display_name, db::Table{info.schema});
  }
  return result;
}

Result<db::Table> Coordinator::ExecCreate(const db::CreateTableStmt& stmt) {
  if (stmt.as_select != nullptr) {
    return Status::NotImplemented(
        "CREATE TABLE ... AS SELECT cannot be partitioned");
  }
  if (stmt.temporary) {
    return Status::NotImplemented("temporary tables cannot be partitioned");
  }
  db::TableSchema schema{stmt.columns};
  int partition_index = -1;
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (EqualsIgnoreCase(schema.field(i).name, stmt.partition_by)) {
      partition_index = i;
      break;
    }
  }
  if (partition_index < 0) {
    return Status::InvalidArgument("partition column '", stmt.partition_by,
                                   "' is not a column of '", stmt.name, "'");
  }

  const bool existed = db_->catalog().HasTable(stmt.name);
  // The local stub first: name conflicts surface here with single-node
  // wording, before any shard is touched.
  db::CreateTableStmt local = stmt;
  local.partition_by.clear();
  DL2SQL_ASSIGN_OR_RETURN(db::Table result,
                          db_->ExecuteStatement(db::Statement{local}));
  if (existed) {
    // IF NOT EXISTS no-op on an existing table: nothing changed, nothing to
    // broadcast, and the existing table keeps its current (possibly
    // unsharded) residency.
    return result;
  }

  // Broadcast DDL, partition clause stripped and IF NOT EXISTS forced so a
  // retry after a partial failure is idempotent on shards that succeeded.
  std::string ddl = "CREATE TABLE IF NOT EXISTS " + stmt.name + " (";
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) ddl += ", ";
    DL2SQL_ASSIGN_OR_RETURN(const char* type_name,
                            DdlTypeName(schema.field(i).type));
    ddl += schema.field(i).name + " " + type_name;
  }
  ddl += ")";
  std::vector<Result<server::WireResponse>> responses = Scatter(ddl);
  for (const auto& response : responses) {
    if (!response.ok()) {
      // Roll the stub back so the retried CREATE replays cleanly end to end.
      (void)db_->catalog().DropTable(stmt.name, /*if_exists=*/true);
      return response.status();
    }
  }

  ShardedTableInfo info;
  info.display_name = stmt.name;
  info.schema = std::move(schema);
  info.partition_column = stmt.partition_by;
  info.partition_index = partition_index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tables_[ToLower(stmt.name)] = std::move(info);
  }
  return result;
}

Result<db::Table> Coordinator::ExecInsert(const db::InsertStmt& stmt) {
  DL2SQL_ASSIGN_OR_RETURN(ShardedTableInfo info, GetShardedTable(stmt.table));

  // Position of the partition key in the inserted row layout. Absent from an
  // explicit column list means every row routes by NULL — deterministic, and
  // the shard-side INSERT still validates the row itself.
  int key_pos = info.partition_index;
  if (!stmt.columns.empty()) {
    key_pos = -1;
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      if (EqualsIgnoreCase(stmt.columns[i], info.partition_column)) {
        key_pos = static_cast<int>(i);
        break;
      }
    }
  }

  std::string column_list;
  if (!stmt.columns.empty()) {
    column_list = " (" + Join(stmt.columns, ", ") + ")";
  }

  std::vector<std::string> bodies(shards_.size());
  auto route_row = [&](const db::Value& key,
                       const std::string& rendered_row) {
    std::string& body = bodies[static_cast<size_t>(
        ShardIndexFor(key, num_shards()))];
    if (!body.empty()) body += ", ";
    body += rendered_row;
  };

  if (stmt.select == nullptr) {
    for (const auto& row : stmt.rows) {
      db::Value key = db::Value::Null();
      if (key_pos >= 0 && key_pos < static_cast<int>(row.size())) {
        DL2SQL_ASSIGN_OR_RETURN(key, LiteralPartitionKey(*row[key_pos]));
      }
      std::string rendered = "(";
      for (size_t j = 0; j < row.size(); ++j) {
        if (j > 0) rendered += ", ";
        rendered += db::sql::PrintExpr(*row[j]);
      }
      rendered += ")";
      route_row(key, rendered);
    }
  } else {
    // INSERT .. SELECT: materialize the source (itself distributed when it
    // touches sharded tables — Handles classified this statement as a write,
    // so the exclusive lock covers a nested fallback gather), then route the
    // result rows as literal VALUES.
    std::set<std::string> visited, sharded_refs;
    CollectShardedNames(*stmt.select, db_->catalog(), ShardedTables(),
                        &visited, &sharded_refs);
    db::Table source{db::TableSchema{}};
    if (!sharded_refs.empty()) {
      DL2SQL_ASSIGN_OR_RETURN(source, ExecSelect(*stmt.select));
    } else {
      DL2SQL_ASSIGN_OR_RETURN(source, db_->ExecuteSelect(*stmt.select));
    }
    for (int64_t r = 0; r < source.num_rows(); ++r) {
      const std::vector<db::Value> row = source.GetRow(r);
      db::Value key = db::Value::Null();
      if (key_pos >= 0 && key_pos < static_cast<int>(row.size())) {
        key = row[static_cast<size_t>(key_pos)];
      }
      std::string rendered = "(";
      for (size_t j = 0; j < row.size(); ++j) {
        if (j > 0) rendered += ", ";
        DL2SQL_ASSIGN_OR_RETURN(std::string lit, FormatSqlLiteral(row[j]));
        rendered += lit;
      }
      rendered += ")";
      route_row(key, rendered);
    }
  }

  std::vector<std::string> sqls(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (bodies[s].empty()) continue;
    sqls[s] = "INSERT INTO " + info.display_name + column_list + " VALUES " +
              bodies[s];
  }
  std::vector<Result<server::WireResponse>> responses = ScatterEach(sqls);
  int64_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (sqls[s].empty()) continue;
    if (!responses[s].ok()) return responses[s].status();
    total += responses[s]->rows;
  }
  ClusterMetrics::Get().routed_rows->Increment(total);
  return RowCountResult(total);
}

Result<db::Table> Coordinator::ExecBroadcastWrite(const std::string& sql,
                                                  const db::Statement& stmt) {
  // Shard-local predicate evaluation only: a subquery would see the shard's
  // slice, not the table, and silently write the wrong rows.
  bool has_subquery = false;
  if (const auto* update = std::get_if<db::UpdateStmt>(&stmt)) {
    for (const auto& [column, expr] : update->assignments) {
      if (expr != nullptr && StatementHasSubquery(*expr)) has_subquery = true;
    }
    if (update->where != nullptr && StatementHasSubquery(*update->where)) {
      has_subquery = true;
    }
  } else if (const auto* del = std::get_if<db::DeleteStmt>(&stmt)) {
    if (del->where != nullptr && StatementHasSubquery(*del->where)) {
      has_subquery = true;
    }
  }
  if (has_subquery) {
    return Status::NotImplemented(
        "UPDATE/DELETE on a sharded table cannot use subqueries (they would "
        "evaluate against one shard's slice)");
  }
  ClusterMetrics::Get().broadcast_writes->Increment();
  DL2SQL_ASSIGN_OR_RETURN(int64_t total, BroadcastWrite(sql));
  return RowCountResult(total);
}

Result<int64_t> Coordinator::BroadcastWrite(const std::string& sql) {
  std::vector<Result<server::WireResponse>> responses = Scatter(sql);
  int64_t total = 0;
  for (const auto& response : responses) {
    // All-must-ack: the first failure wins, named by the shard label baked
    // into the status. Shards that already applied the write stay applied —
    // there is no distributed rollback (see DESIGN.md's failure matrix).
    if (!response.ok()) return response.status();
    total += response->rows;
  }
  return total;
}

Result<db::Table> Coordinator::ExecDrop(const db::DropStmt& stmt) {
  // Broadcast first with IF EXISTS forced (idempotent retries), local drop
  // and registry erase only once every shard has acknowledged.
  std::vector<Result<server::WireResponse>> responses =
      Scatter("DROP TABLE IF EXISTS " + stmt.name);
  for (const auto& response : responses) {
    if (!response.ok()) return response.status();
  }
  DL2SQL_ASSIGN_OR_RETURN(db::Table result,
                          db_->ExecuteStatement(db::Statement{stmt}));
  {
    std::lock_guard<std::mutex> lock(mu_);
    tables_.erase(ToLower(stmt.name));
  }
  return result;
}

std::string Coordinator::FederatedMetricsText() {
  std::string out;
  for (const auto& shard : shards_) {
    const std::string label =
        "{shard=\"" + std::to_string(shard->shard_index()) + "\"} ";
    const struct {
      const char* name;
      int64_t value;
    } client_series[] = {
        {"cluster_shard_client_statements", shard->requests()},
        {"cluster_shard_client_failures", shard->failures()},
        {"cluster_shard_client_bytes_sent", shard->bytes_sent()},
        {"cluster_shard_client_bytes_received", shard->bytes_received()},
        {"cluster_shard_client_rows_shipped", shard->rows_shipped()},
        {"cluster_shard_client_p95_latency_us", shard->p95_latency_us()},
    };
    for (const auto& series : client_series) {
      out += series.name + label + std::to_string(series.value) + "\n";
    }
    // The shard's own registry, scraped over the existing statement protocol
    // (system.metrics flattens histograms into .count/.sum_us/.pXX_us rows).
    // Untyped exposition lines are valid Prometheus; TYPE comments can't be
    // emitted per-label-set anyway.
    auto response =
        shard->Execute("SELECT name, kind, value FROM system.metrics");
    if (!response.ok()) continue;
    for (const auto& cells : response->cells) {
      if (cells.size() != 3) continue;
      out += MetricsRegistry::SanitizeName(cells[0]) + label + cells[2] + "\n";
    }
  }
  return out;
}

Status Coordinator::WriteClusterTrace(const std::string& path) {
  uint64_t trace_id = 0;
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    trace_id = last_trace_id_;
    events = last_shard_events_;
  }
  if (trace_id == 0) {
    // Nothing distributed was traced yet; the local trace is still useful.
    return TraceCollector::Global().WriteChromeTrace(path);
  }
  std::vector<TraceEvent> local =
      TraceCollector::Global().SnapshotTrace(trace_id);
  events.insert(events.end(), std::make_move_iterator(local.begin()),
                std::make_move_iterator(local.end()));
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  const std::string json = TraceCollector::ChromeTraceJson(events);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output file ", path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to trace output file ", path);
  }
  return Status::OK();
}

Result<std::string> Coordinator::ExplainAnalyze(const db::Statement& stmt,
                                                const std::string& sql) {
  if (!std::holds_alternative<std::shared_ptr<db::SelectStmt>>(stmt)) {
    return Status::InvalidArgument(
        "distributed EXPLAIN ANALYZE supports only SELECT statements");
  }
  DistQueryStats stats;
  Stopwatch watch;
  DL2SQL_ASSIGN_OR_RETURN(db::Table result, ExecuteTraced(stmt, sql, &stats));
  const int64_t total_us = watch.ElapsedMicros();

  int64_t shards_used = 0;
  int64_t slowest_shard = -1;
  int64_t slowest_us = 0;
  for (size_t i = 0; i < stats.shards.size(); ++i) {
    if (!stats.shards[i].used) continue;
    ++shards_used;
    if (stats.shards[i].latency_us > slowest_us) {
      slowest_us = stats.shards[i].latency_us;
      slowest_shard = static_cast<int64_t>(i);
    }
  }

  const char* strategy = db::DistStrategyLabel(stats.strategy);
  std::string out = "Distributed SELECT  strategy=";
  out += *strategy != '\0' ? strategy : "none";
  out += "  shards=" + std::to_string(shards_used) + "/" +
         std::to_string(shards_.size()) + "\n";
  if (stats.strategy == 3) {
    const std::string reason = last_fallback_reason();
    if (!reason.empty()) out += "fallback reason: " + reason + "\n";
  }
  out += "rows=" + std::to_string(result.num_rows()) + "  total=" +
         FormatMs(total_us) + " ms  merge=" + FormatMs(stats.merge_us) +
         " ms\n";
  for (size_t i = 0; i < stats.shards.size(); ++i) {
    const ShardCallStats& s = stats.shards[i];
    if (!s.used) continue;
    out += "  " + shards_[i]->label() + ": " + std::to_string(s.statements) +
           " stmt, " + FormatMs(s.latency_us) + " ms, " +
           std::to_string(s.rows) + " rows, " + std::to_string(s.bytes) +
           " bytes";
    if (s.has_profile) {
      out += " (shard-side: " + FormatMs(s.profile.duration_us) + " ms, cpu " +
             FormatMs(s.profile.cpu_us) + " ms, " +
             std::to_string(s.profile.neural_calls) + " neural calls)";
    }
    out += "\n";
  }
  if (slowest_shard >= 0 && total_us > 0) {
    const int share = static_cast<int>(100.0 * static_cast<double>(slowest_us) /
                                       static_cast<double>(total_us));
    out += "slowest: " + shards_[static_cast<size_t>(slowest_shard)]->label() +
           " - " + std::to_string(share) + "% of wall time\n";
  }
  return out;
}

void Coordinator::RegisterClusterSystemTables() {
  db::Catalog& catalog = db_->catalog();

  db::TableSchema shards_schema({{"shard", db::DataType::kInt64},
                                 {"host", db::DataType::kString},
                                 {"port", db::DataType::kInt64},
                                 {"healthy", db::DataType::kBool},
                                 {"ping_ms", db::DataType::kFloat64},
                                 {"requests", db::DataType::kInt64},
                                 {"failures", db::DataType::kInt64},
                                 {"last_error", db::DataType::kString},
                                 {"bytes_sent", db::DataType::kInt64},
                                 {"bytes_received", db::DataType::kInt64},
                                 {"rows_shipped", db::DataType::kInt64},
                                 {"p95_latency_ms", db::DataType::kFloat64}});
  shards_table_registered_ =
      catalog
          .RegisterVirtualTable(std::make_shared<db::CallbackVirtualTable>(
              "system.shards", std::move(shards_schema),
              [this](const db::TableSchema& s) -> Result<db::TablePtr> {
                auto t = std::make_shared<db::Table>(db::Table{s});
                for (const auto& shard : shards_) {
                  Stopwatch watch;
                  const Status ping = shard->Ping();
                  const double ping_ms =
                      static_cast<double>(watch.ElapsedMicros()) / 1000.0;
                  DL2SQL_RETURN_NOT_OK(t->AppendRow(
                      {db::Value::Int(shard->shard_index()),
                       db::Value::String(shard->endpoint().host),
                       db::Value::Int(shard->endpoint().port),
                       db::Value::Bool(ping.ok()),
                       db::Value::Float(ping_ms),
                       db::Value::Int(shard->requests()),
                       db::Value::Int(shard->failures()),
                       db::Value::String(shard->last_error()),
                       db::Value::Int(shard->bytes_sent()),
                       db::Value::Int(shard->bytes_received()),
                       db::Value::Int(shard->rows_shipped()),
                       db::Value::Float(
                           static_cast<double>(shard->p95_latency_us()) /
                           1000.0)}));
                }
                return t;
              }))
          .ok();

  // Federate system.queries, system.sessions, system.spans, and
  // system.query_profiles: the local provider's rows
  // tagged shard = -1, then each shard's rows tagged with its index. Shard
  // fetch failures skip that shard (federation is best-effort observability;
  // system.shards reports the health).
  auto federate = [this, &catalog](const std::string& name) {
    std::shared_ptr<db::VirtualTableProvider> inner =
        catalog.GetVirtualTable(name);
    if (inner == nullptr) return inner;
    std::vector<db::Field> fields;
    for (int i = 0; i < inner->schema().num_fields(); ++i) {
      fields.push_back(inner->schema().field(i));
    }
    fields.push_back({"shard", db::DataType::kInt64});
    const Status registered = catalog.RegisterVirtualTable(
        std::make_shared<db::CallbackVirtualTable>(
            name, db::TableSchema{fields},
            [this, inner, name](const db::TableSchema& s)
                -> Result<db::TablePtr> {
              auto t = std::make_shared<db::Table>(db::Table{s});
              auto local = inner->Materialize();
              if (local.ok()) {
                for (int64_t r = 0; r < (*local)->num_rows(); ++r) {
                  std::vector<db::Value> row = (*local)->GetRow(r);
                  row.push_back(db::Value::Int(-1));
                  DL2SQL_RETURN_NOT_OK(t->AppendRow(row));
                }
              }
              for (const auto& shard : shards_) {
                auto response = shard->Execute("SELECT * FROM " + name);
                if (!response.ok()) continue;
                auto part = ResponseToTable(*response, inner->schema(),
                                            shard->label());
                if (!part.ok()) continue;
                for (int64_t r = 0; r < part->num_rows(); ++r) {
                  std::vector<db::Value> row = part->GetRow(r);
                  row.push_back(db::Value::Int(shard->shard_index()));
                  DL2SQL_RETURN_NOT_OK(t->AppendRow(row));
                }
              }
              return t;
            }));
    return registered.ok() ? inner
                           : std::shared_ptr<db::VirtualTableProvider>();
  };
  saved_queries_ = federate("system.queries");
  saved_sessions_ = federate("system.sessions");
  saved_spans_ = federate("system.spans");
  saved_profiles_ = federate("system.query_profiles");
}

}  // namespace dl2sql::cluster
