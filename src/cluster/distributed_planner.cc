#include "cluster/distributed_planner.h"

#include <map>
#include <memory>
#include <utility>

#include "common/string_util.h"
#include "db/sql/printer.h"

namespace dl2sql::cluster {

namespace {

bool ContainsSubquery(const db::Expr& e) {
  if (e.kind == db::ExprKind::kScalarSubquery) return true;
  for (const auto& child : e.children) {
    if (child != nullptr && ContainsSubquery(*child)) return true;
  }
  return false;
}

bool AnyExprContainsSubquery(const db::SelectStmt& stmt) {
  for (const auto& item : stmt.items) {
    if (item.expr != nullptr && ContainsSubquery(*item.expr)) return true;
  }
  if (stmt.where != nullptr && ContainsSubquery(*stmt.where)) return true;
  for (const auto& g : stmt.group_by) {
    if (g != nullptr && ContainsSubquery(*g)) return true;
  }
  if (stmt.having != nullptr && ContainsSubquery(*stmt.having)) return true;
  for (const auto& o : stmt.order_by) {
    if (o.expr != nullptr && ContainsSubquery(*o.expr)) return true;
  }
  return false;
}

bool HasStarItem(const db::SelectStmt& stmt) {
  for (const auto& item : stmt.items) {
    if (item.expr != nullptr && item.expr->kind == db::ExprKind::kStar) {
      return true;
    }
  }
  return false;
}

bool HasAggregation(const db::SelectStmt& stmt) {
  if (!stmt.group_by.empty() || stmt.having != nullptr) return true;
  for (const auto& item : stmt.items) {
    if (item.expr != nullptr && item.expr->HasAggregate()) return true;
  }
  return false;
}

/// Maps one ORDER BY expression onto an output column index: by select-item
/// alias, by printed-expression equality with a select item, or (covering
/// SELECT *) by column name in the planned output schema. -1 = unmappable.
int ResolveOrderKey(const db::Expr& order_expr, const db::SelectStmt& stmt,
                    const db::TableSchema& output_schema) {
  const std::string printed = db::sql::PrintExpr(order_expr);
  const bool star = HasStarItem(stmt);
  if (!star) {
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const auto& item = stmt.items[i];
      if (!item.alias.empty() &&
          order_expr.kind == db::ExprKind::kColumnRef &&
          EqualsIgnoreCase(item.alias, order_expr.column_name)) {
        return static_cast<int>(i);
      }
      if (item.expr != nullptr &&
          db::sql::PrintExpr(*item.expr) == printed) {
        return static_cast<int>(i);
      }
    }
  }
  if (order_expr.kind == db::ExprKind::kColumnRef) {
    auto idx = output_schema.Find(order_expr.column_name);
    if (idx.ok()) return *idx;
  }
  return -1;
}

}  // namespace

const char* DistStrategyName(DistStrategy s) {
  switch (s) {
    case DistStrategy::kPushdown:
      return "pushdown";
    case DistStrategy::kMergeAggregate:
      return "merge-aggregate";
    case DistStrategy::kFallback:
      return "fallback";
  }
  return "unknown";
}

Result<DistributedQueryPlan> DistributedPlanner::Plan(
    const db::SelectStmt& stmt, const std::set<std::string>& sharded_tables) {
  DistributedQueryPlan plan;

  // Planning the original statement locally (against the empty stubs) gives
  // the byte-exact single-node output schema and the referenced relations.
  // Statement errors surface here, identical to what one node would say.
  std::vector<std::string> referenced;
  DL2SQL_ASSIGN_OR_RETURN(db::PlanPtr local_plan,
                          db_->PlanQuery(stmt, &referenced));
  plan.output_schema = local_plan->output_schema;
  plan.limit = stmt.limit;

  auto fallback = [&](std::string reason) {
    plan.strategy = DistStrategy::kFallback;
    plan.fallback_reason = std::move(reason);
    return plan;
  };

  if (!stmt.from || stmt.from->IsDerived() || !stmt.joins.empty()) {
    return fallback("FROM is not a single base table");
  }
  const std::string from_table = ToLower(stmt.from->table_name);
  if (sharded_tables.count(from_table) == 0) {
    return fallback("a non-FROM relation is sharded");
  }
  for (const std::string& name : referenced) {
    if (ToLower(name) != from_table) {
      return fallback("references a second relation (" + name + ")");
    }
  }
  if (AnyExprContainsSubquery(stmt)) {
    return fallback("contains a scalar subquery");
  }

  if (!HasAggregation(stmt)) {
    // ---- kPushdown: ship the statement verbatim; merge or concatenate.
    for (const auto& o : stmt.order_by) {
      const int idx = ResolveOrderKey(*o.expr, stmt, plan.output_schema);
      if (idx < 0) {
        return fallback("ORDER BY key " + db::sql::PrintExpr(*o.expr) +
                        " is not an output column");
      }
      plan.merge_keys.push_back({idx, o.ascending});
    }
    plan.strategy = DistStrategy::kPushdown;
    plan.shard_sql = db::sql::PrintSelect(stmt);
    plan.shard_schema = plan.output_schema;
    return plan;
  }

  // ---- kMergeAggregate eligibility.
  if (stmt.having != nullptr) return fallback("HAVING");

  // Shard partial statement: all group keys first (projected or not — the
  // merge groups on the full GROUP BY tuple), then deduplicated partials.
  db::SelectStmt shard;
  shard.from = stmt.from;
  if (stmt.where != nullptr) shard.where = stmt.where->Clone();
  for (size_t k = 0; k < stmt.group_by.size(); ++k) {
    shard.group_by.push_back(stmt.group_by[k]->Clone());
    shard.items.push_back(
        {stmt.group_by[k]->Clone(), "g" + std::to_string(k)});
  }
  plan.num_group_keys = static_cast<int>(stmt.group_by.size());

  std::map<std::string, int> partial_index;  // printed partial -> column
  std::vector<db::ExprPtr> avg_args;         // probed for boolean arguments
  auto add_partial = [&](db::ExprPtr partial) {
    const std::string printed = db::sql::PrintExpr(*partial);
    auto [it, fresh] = partial_index.try_emplace(
        printed,
        plan.num_group_keys + static_cast<int>(partial_index.size()));
    if (fresh) {
      shard.items.push_back(
          {std::move(partial),
           "p" + std::to_string(it->second - plan.num_group_keys)});
    }
    return it->second;
  };

  for (const auto& item : stmt.items) {
    const db::Expr& e = *item.expr;
    if (e.kind == db::ExprKind::kAggCall) {
      MergeOutputSpec spec;
      switch (e.agg_func) {
        case db::AggFunc::kCount:
        case db::AggFunc::kCountStar:
          spec.kind = MergeOutputSpec::Kind::kCount;
          spec.partial_index = add_partial(e.Clone());
          break;
        case db::AggFunc::kSum:
          spec.kind = MergeOutputSpec::Kind::kSum;
          spec.partial_index = add_partial(e.Clone());
          break;
        case db::AggFunc::kAvg:
          // AVG = SUM + COUNT rewrite. COUNT(arg) counts TRUE rows for
          // boolean arguments (the engine's countIf shorthand), which is
          // not AVG's non-NULL denominator — those fall back below.
          spec.kind = MergeOutputSpec::Kind::kAvg;
          spec.partial_index = add_partial(
              db::Expr::Agg(db::AggFunc::kSum, e.children[0]->Clone()));
          spec.count_index = add_partial(
              db::Expr::Agg(db::AggFunc::kCount, e.children[0]->Clone()));
          avg_args.push_back(e.children[0]->Clone());
          break;
        case db::AggFunc::kMin:
          spec.kind = MergeOutputSpec::Kind::kMin;
          spec.partial_index = add_partial(e.Clone());
          break;
        case db::AggFunc::kMax:
          spec.kind = MergeOutputSpec::Kind::kMax;
          spec.partial_index = add_partial(e.Clone());
          break;
        default:
          return fallback(std::string(db::AggFuncToString(e.agg_func)) +
                          " has no partial-merge rewrite");
      }
      plan.outputs.push_back(spec);
      continue;
    }
    // Non-aggregate item: must be one of the group keys.
    const std::string printed = db::sql::PrintExpr(e);
    int key_index = -1;
    for (size_t k = 0; k < stmt.group_by.size(); ++k) {
      if (db::sql::PrintExpr(*stmt.group_by[k]) == printed) {
        key_index = static_cast<int>(k);
        break;
      }
    }
    if (key_index < 0) {
      return fallback("select item " + printed +
                      " is neither a bare aggregate nor a group key");
    }
    plan.outputs.push_back(
        {MergeOutputSpec::Kind::kGroupKey, key_index, -1});
  }

  for (const auto& o : stmt.order_by) {
    const int idx = ResolveOrderKey(*o.expr, stmt, plan.output_schema);
    if (idx < 0) {
      return fallback("ORDER BY key " + db::sql::PrintExpr(*o.expr) +
                      " is not an output column");
    }
    plan.final_order.push_back({idx, o.ascending});
  }

  if (!avg_args.empty()) {
    // Probe the argument types: plan SELECT <args> FROM <table>.
    db::SelectStmt probe;
    probe.from = stmt.from;
    for (auto& arg : avg_args) probe.items.push_back({std::move(arg), ""});
    DL2SQL_ASSIGN_OR_RETURN(db::PlanPtr probe_plan, db_->PlanQuery(probe));
    for (int i = 0; i < probe_plan->output_schema.num_fields(); ++i) {
      if (probe_plan->output_schema.field(i).type == db::DataType::kBool) {
        return fallback("AVG over a boolean argument");
      }
    }
  }

  plan.strategy = DistStrategy::kMergeAggregate;
  plan.shard_sql = db::sql::PrintSelect(shard);
  DL2SQL_ASSIGN_OR_RETURN(db::PlanPtr shard_plan, db_->PlanQuery(shard));
  plan.shard_schema = shard_plan->output_schema;
  return plan;
}

}  // namespace dl2sql::cluster
