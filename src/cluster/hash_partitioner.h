/// \file hash_partitioner.h
/// \brief Deterministic hash partitioning of rows across cluster shards.
///
/// The coordinator routes INSERTs (and tests route seed data) by
/// `ShardIndexFor(partition key value, num_shards)`. The hash must be stable
/// across processes, builds, and platforms — a re-started coordinator has to
/// agree with the shard layout written by its predecessor — so it is defined
/// here from first principles: a canonical byte encoding of the key value
/// (the same type-byte layout as db/exec/row_key.h, with explicitly
/// little-endian integer serialization) fed through 64-bit FNV-1a.
#pragma once

#include <cstdint>
#include <string>

#include "db/value.h"

namespace dl2sql::cluster {

/// Appends the canonical encoding of `v` to `out`: one type byte, then a
/// fixed- or length-prefixed payload. Integral-valued floats encode as ints,
/// mirroring row_key.h, so a key of 3 and 3.0 land on the same shard.
void AppendCanonicalKey(const db::Value& v, std::string* out);

/// 64-bit FNV-1a over the canonical encoding of `v`.
uint64_t PartitionHash(const db::Value& v);

/// Shard owning partition-key value `v`: PartitionHash(v) % num_shards.
/// `num_shards` must be >= 1.
int ShardIndexFor(const db::Value& v, int num_shards);

}  // namespace dl2sql::cluster
