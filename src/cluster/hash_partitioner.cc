#include "cluster/hash_partitioner.h"

#include <cstring>

namespace dl2sql::cluster {

namespace {

/// Little-endian by construction (byte shifts, not memcpy), so the encoding
/// — and therefore the shard layout — is identical on any platform.
void AppendU64Le(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU32Le(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

void AppendCanonicalKey(const db::Value& v, std::string* out) {
  switch (v.type()) {
    case db::DataType::kNull:
      out->push_back('\x00');
      return;
    case db::DataType::kBool:
      out->push_back('\x01');
      out->push_back(v.bool_value() ? '\x01' : '\x00');
      return;
    case db::DataType::kInt64:
      out->push_back('\x02');
      AppendU64Le(static_cast<uint64_t>(v.int_value()), out);
      return;
    case db::DataType::kFloat64: {
      const double d = v.float_value();
      const int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        out->push_back('\x02');
        AppendU64Le(static_cast<uint64_t>(as_int), out);
        return;
      }
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      out->push_back('\x03');
      AppendU64Le(bits, out);
      return;
    }
    case db::DataType::kString:
    case db::DataType::kBlob: {
      const std::string& s = v.string_value();
      out->push_back('\x04');
      AppendU32Le(static_cast<uint32_t>(s.size()), out);
      out->append(s);
      return;
    }
  }
}

uint64_t PartitionHash(const db::Value& v) {
  std::string key;
  AppendCanonicalKey(v, &key);
  uint64_t h = 14695981039346656037ull;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

int ShardIndexFor(const db::Value& v, int num_shards) {
  return static_cast<int>(PartitionHash(v) % static_cast<uint64_t>(num_shards));
}

}  // namespace dl2sql::cluster
