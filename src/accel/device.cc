#include "accel/device.h"

#include <thread>

namespace dl2sql {

namespace {
int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 4 : static_cast<int>(n);
}
}  // namespace

Device::Device(DeviceProfile profile)
    : profile_(std::move(profile)),
      pool_(std::make_unique<ThreadPool>(profile_.num_threads)) {}

DeviceProfile Device::EdgeCpuProfile() {
  DeviceProfile p;
  p.name = "edge-arm-cpu";
  p.kind = DeviceKind::kEdgeCpu;
  p.num_threads = 1;
  p.compute_scale = 1.0;
  return p;
}

DeviceProfile Device::ServerCpuProfile() {
  DeviceProfile p;
  p.name = "server-xeon-cpu";
  p.kind = DeviceKind::kServerCpu;
  p.num_threads = HardwareThreads();
  // A Xeon server runs both tensor kernels and SQL several times faster than
  // the ARM edge board the measurements are calibrated on.
  p.compute_scale = 0.35;
  p.relational_scale = 0.35;
  return p;
}

DeviceProfile Device::ServerGpuProfile() {
  DeviceProfile p;
  p.name = "server-quadro-gpu";
  p.kind = DeviceKind::kServerGpu;
  p.num_threads = HardwareThreads();
  // Dense conv/matmul kernels see roughly an order-of-magnitude SIMT speedup
  // over the multicore CPU on a P6000-class card; SQL still runs on the
  // host Xeon.
  p.compute_scale = 0.05;
  p.relational_scale = 0.35;
  // PCIe 3.0 x16 effective bandwidth with a conservative per-copy latency;
  // this is the term that makes GPU loading cost dominate in Fig. 8.
  p.transfer_bandwidth_bytes_per_s = 12.0e9;
  p.transfer_latency_s = 50e-6;
  return p;
}

std::shared_ptr<Device> Device::Create(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kEdgeCpu:
      return std::make_shared<Device>(EdgeCpuProfile());
    case DeviceKind::kServerCpu:
      return std::make_shared<Device>(ServerCpuProfile());
    case DeviceKind::kServerGpu:
      return std::make_shared<Device>(ServerGpuProfile());
  }
  return nullptr;
}

double Device::TransferSeconds(uint64_t bytes) const {
  if (!profile_.NeedsTransfer()) return 0.0;
  return profile_.transfer_latency_s +
         static_cast<double>(bytes) / profile_.transfer_bandwidth_bytes_per_s;
}

double Device::ChargeTransfer(uint64_t bytes, CostAccumulator* acc,
                              const std::string& bucket) const {
  const double s = TransferSeconds(bytes);
  if (acc != nullptr && s > 0) acc->Add(bucket, s);
  return s;
}

}  // namespace dl2sql
