/// \file device.h
/// \brief Simulated hardware profiles for the paper's two testbeds.
///
/// The paper evaluates on (1) an ARM-v8 edge device without GPU and (2) an
/// Alibaba Cloud server with a Xeon CPU and a Quadro P6000 GPU. We do not have
/// that hardware, so a Device models the properties that drive the paper's
/// qualitative results:
///   - parallel compute width (edge: 1 thread; server: all cores),
///   - a compute-throughput scale factor (GPU SIMT speedup on dense kernels),
///   - an explicit host<->device transfer-cost model (bytes / bandwidth +
///     fixed per-transfer latency), which is what makes GPU *loading* cost
///     grow in Fig. 8 while GPU *inference* cost shrinks.
///
/// Compute time is measured (wall clock of the real kernels, run with the
/// device's thread count) and then multiplied by `compute_scale`; transfer
/// time is purely modeled. Both are charged to CostAccumulator buckets so
/// benchmarks can report the same breakdown as the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "accel/thread_pool.h"
#include "common/timer.h"

namespace dl2sql {

/// Which testbed a Device simulates.
enum class DeviceKind {
  kEdgeCpu,    ///< ARM v8 edge device: single-threaded, no accelerator.
  kServerCpu,  ///< Xeon server CPU: all cores, no accelerator.
  kServerGpu,  ///< Quadro P6000: wide compute + PCIe transfer costs.
};

/// Static description of a simulated device.
struct DeviceProfile {
  std::string name;
  DeviceKind kind = DeviceKind::kEdgeCpu;
  int num_threads = 1;
  /// Multiplier applied to measured tensor-compute wall time (<1 = faster
  /// device than the edge baseline).
  double compute_scale = 1.0;
  /// Multiplier applied to measured relational/database wall time (the Xeon
  /// server runs ClickHouse-style SQL faster than the ARM edge CPU; the GPU
  /// does not change SQL speed relative to its host CPU).
  double relational_scale = 1.0;
  /// Host<->device copy model; zero bandwidth means "no transfer needed".
  double transfer_bandwidth_bytes_per_s = 0.0;
  double transfer_latency_s = 0.0;

  bool NeedsTransfer() const { return transfer_bandwidth_bytes_per_s > 0.0; }
};

/// \brief A compute device: thread pool + cost model.
class Device {
 public:
  explicit Device(DeviceProfile profile);

  /// Built-in profiles matching the paper's three hardware configurations.
  static DeviceProfile EdgeCpuProfile();
  static DeviceProfile ServerCpuProfile();
  static DeviceProfile ServerGpuProfile();
  static std::shared_ptr<Device> Create(DeviceKind kind);

  const DeviceProfile& profile() const { return profile_; }
  ThreadPool* pool() { return pool_.get(); }

  /// Modeled seconds to copy `bytes` between host and device memory; zero for
  /// CPU devices.
  double TransferSeconds(uint64_t bytes) const;

  /// Charges a modeled transfer to `acc` under `bucket` and returns the cost.
  double ChargeTransfer(uint64_t bytes, CostAccumulator* acc,
                        const std::string& bucket) const;

  /// Scales a measured compute duration by the device's throughput factor.
  double ScaleCompute(double measured_seconds) const {
    return measured_seconds * profile_.compute_scale;
  }

 private:
  DeviceProfile profile_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dl2sql
