#include "accel/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/mem_tracker.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace dl2sql {

namespace {

/// True on threads currently executing a pool task. A nested parallel loop
/// issued from such a thread must run inline: blocking a worker on work that
/// needs workers can starve the pool into deadlock once every worker waits.
thread_local bool tls_in_pool_worker = false;

/// Monotone per-thread totals of pool work done on this thread's behalf
/// (resource accounting; see credited_cpu_ns() in the header).
thread_local int64_t tls_credited_cpu_ns = 0;
thread_local int64_t tls_credited_queue_wait_us = 0;

}  // namespace

int64_t ThreadPool::credited_cpu_ns() { return tls_credited_cpu_ns; }

int64_t ThreadPool::credited_queue_wait_us() {
  return tls_credited_queue_wait_us;
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  worker_busy_us_ = std::make_unique<std::atomic<int64_t>[]>(
      static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) worker_busy_us_[static_cast<size_t>(i)] = 0;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

Status ThreadPool::RunMorsel(const MorselFn& fn, int64_t begin, int64_t end,
                             int worker, std::atomic<int64_t>* cpu_ns_out) {
  const int64_t t0 = TraceCollector::NowMicros();
  const int64_t cpu0 = cpu_ns_out != nullptr ? ThreadCpuNanos() : 0;
  Status s;
#if !defined(DL2SQL_TRACING_DISABLED)
  if (TraceCollector::Global().enabled()) {
    DL2SQL_TRACE_SPAN("pool", "morsel",
                      "\"worker\":" + std::to_string(worker) +
                          ",\"begin\":" + std::to_string(begin) +
                          ",\"end\":" + std::to_string(end));
    s = fn(begin, end, worker);
  } else {
    s = fn(begin, end, worker);
  }
#else
  s = fn(begin, end, worker);
#endif
  const int64_t us = TraceCollector::NowMicros() - t0;
  if (cpu_ns_out != nullptr) {
    cpu_ns_out->fetch_add(ThreadCpuNanos() - cpu0, std::memory_order_relaxed);
  }
  worker_busy_us_[static_cast<size_t>(worker)].fetch_add(
      us, std::memory_order_relaxed);
  // Static handles: one registry lookup for the process lifetime.
  static Counter* const morsels =
      MetricsRegistry::Global().counter("pool.morsels");
  static Histogram* const morsel_us =
      MetricsRegistry::Global().histogram("pool.morsel_us");
  morsels->Increment();
  morsel_us->Record(us);
  return s;
}

Status ThreadPool::ParallelForMorsel(int64_t n, int64_t morsel_size,
                                     const MorselFn& fn) {
  if (n <= 0) return Status::OK();
  morsel_size = std::max<int64_t>(1, morsel_size);

  // Inline path: single-threaded pool, a single morsel's worth of rows, or a
  // nested call from a pool worker. Still iterates morsel-at-a-time so
  // per-morsel output buffers see identical boundaries in every mode.
  if (num_threads() == 1 || n <= morsel_size || tls_in_pool_worker) {
    for (int64_t b = 0; b < n; b += morsel_size) {
      DL2SQL_RETURN_NOT_OK(
          RunMorsel(fn, b, std::min(n, b + morsel_size), 0, nullptr));
    }
    return Status::OK();
  }

  const int64_t num_morsels = (n + morsel_size - 1) / morsel_size;
  const int workers =
      static_cast<int>(std::min<int64_t>(num_threads(), num_morsels));

  // Attribution accumulators for this call; credited to the calling thread's
  // monotone counters after the barrier so a query thread can diff them.
  const bool attribute = MemTracker::Enabled();
  std::atomic<int64_t> call_cpu_ns{0};
  std::atomic<int64_t> call_queue_wait_us{0};
  std::atomic<int64_t>* cpu_out = attribute ? &call_cpu_ns : nullptr;

  std::atomic<int64_t> cursor{0};
  std::atomic<bool> failed{false};
  std::atomic<int> remaining{workers};
  Status first_error;
  std::mutex done_mu;
  std::condition_variable done_cv;

  for (int w = 0; w < workers; ++w) {
    const int64_t submitted_us = attribute ? TraceCollector::NowMicros() : 0;
    Submit([&, w, submitted_us] {
      if (attribute) {
        call_queue_wait_us.fetch_add(
            TraceCollector::NowMicros() - submitted_us,
            std::memory_order_relaxed);
      }
      while (!failed.load(std::memory_order_relaxed)) {
        const int64_t begin = cursor.fetch_add(morsel_size);
        if (begin >= n) break;
        Status s =
            RunMorsel(fn, begin, std::min(n, begin + morsel_size), w, cpu_out);
        if (!s.ok()) {
          std::lock_guard<std::mutex> lock(done_mu);
          if (first_error.ok()) first_error = std::move(s);
          failed.store(true, std::memory_order_relaxed);
        }
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (attribute) {
    tls_credited_cpu_ns += call_cpu_ns.load(std::memory_order_relaxed);
    tls_credited_queue_wait_us +=
        call_queue_wait_us.load(std::memory_order_relaxed);
  }
  return first_error;
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  // Chunking below ~1k iterations per worker costs more in wakeups than it
  // buys in parallelism for our kernels.
  if (num_threads() == 1 || n < 1024 || tls_in_pool_worker) {
    fn(0, n);
    return;
  }
  // Dynamic morsels sized for ~4 morsels per worker so a slow chunk (NUMA
  // page faults, skewed rows) no longer pins the whole loop's tail latency to
  // one worker, while staying coarse enough to keep cursor traffic trivial.
  const int64_t morsel =
      std::max<int64_t>(512, n / (static_cast<int64_t>(num_threads()) * 4));
  (void)ParallelForMorsel(n, morsel, [&fn](int64_t b, int64_t e, int) {
    fn(b, e);
    return Status::OK();
  });
}

}  // namespace dl2sql
