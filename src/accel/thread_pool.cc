#include "accel/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace dl2sql {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int64_t threads = num_threads();
  // Chunking below ~1k iterations per worker costs more in wakeups than it
  // buys in parallelism for our kernels.
  if (threads == 1 || n < 1024) {
    fn(0, n);
    return;
  }
  const int64_t chunks = std::min<int64_t>(threads, n);
  const int64_t per = (n + chunks - 1) / chunks;

  std::atomic<int64_t> remaining{chunks};
  std::mutex done_mu;
  std::condition_variable done_cv;

  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t begin = c * per;
    const int64_t end = std::min(n, begin + per);
    Submit([&, begin, end] {
      fn(begin, end);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

}  // namespace dl2sql
