/// \file thread_pool.h
/// \brief Fixed-size worker pool with ParallelFor / ParallelForMorsel
/// primitives; the compute substrate for the simulated server backends and
/// the morsel-driven relational executor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/status.h"

namespace dl2sql {

/// \brief A minimal work-stealing-free thread pool.
///
/// Two parallel-loop primitives are offered:
///  - ParallelFor: fire-and-wait over [0, n) with dynamic morsel scheduling,
///    for infallible kernels (dense tensor math).
///  - ParallelForMorsel: the relational variant. Workers pull fixed-size
///    morsels off an atomic cursor (Leis et al.'s morsel-driven model), the
///    body returns a Status, and the first failure cancels the remaining
///    morsels and is propagated to the caller.
///
/// Both are nested-call safe: a call issued from inside a pool worker (e.g. a
/// parallel nUDF morsel whose body reaches a parallel matmul) degrades to an
/// inline serial loop instead of deadlocking the pool on itself.
class ThreadPool {
 public:
  /// Default rows per morsel; small enough for load balance, large enough to
  /// amortize the cursor fetch (one atomic op per ~4k rows).
  static constexpr int64_t kDefaultMorselSize = 4096;

  /// Spawns `num_threads` workers (>=1 enforced).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Morsel body: processes rows [begin, end). `worker` identifies the
  /// executing worker in [0, num_threads()) so callers can keep per-worker
  /// accumulators; the inline/serial fallback always reports worker 0.
  using MorselFn = std::function<Status(int64_t begin, int64_t end, int worker)>;

  /// Runs fn over [0, n) in morsels of `morsel_size` rows pulled dynamically
  /// by the workers; blocks until all morsels finish or one fails. Morsel
  /// boundaries are identical regardless of thread count (morsel i covers
  /// [i*morsel_size, min(n, (i+1)*morsel_size))), so per-morsel output
  /// buffers concatenated in morsel order reproduce serial results exactly.
  /// The first non-OK Status cancels undispatched morsels and is returned.
  /// Runs inline (serially, still morsel-at-a-time) when the pool has one
  /// thread, n fits a single morsel, or the caller is itself a pool worker.
  Status ParallelForMorsel(int64_t n, int64_t morsel_size, const MorselFn& fn);

  /// Infallible convenience wrapper: runs fn(begin, end) over [0, n) with
  /// dynamic morsel scheduling. Runs inline when the pool has one thread or
  /// n is small.
  void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn);

  /// Cumulative seconds worker `w` spent inside morsel bodies since
  /// construction (inline/serial fallbacks charge worker 0). ExplainAnalyze
  /// diffs these around a plan node to render the per-worker parallelism
  /// breakdown.
  double worker_busy_seconds(int w) const {
    return static_cast<double>(
               worker_busy_us_[static_cast<size_t>(w)].load(
                   std::memory_order_relaxed)) /
           1e6;
  }

  /// \name Per-query attribution of pool work (resource accounting)
  ///
  /// When MemTracker::Enabled(), every ParallelForMorsel call that actually
  /// dispatched to workers samples, per morsel, the worker's thread CPU
  /// (CLOCK_THREAD_CPUTIME_ID) and, per worker task, the submit-to-start
  /// queue delay; after the call returns, both are credited to monotone
  /// thread-local counters of the *calling* thread. A query thread diffs
  /// these around statement execution to attribute pool CPU and queue wait
  /// to itself. The inline fallback credits nothing: the caller's own thread
  /// CPU delta already covers inline morsels, and there is no queue.
  /// @{
  static int64_t credited_cpu_ns();
  static int64_t credited_queue_wait_us();
  /// @}

 private:
  void WorkerLoop();
  void Submit(std::function<void()> task);

  /// Runs one morsel: traces it (when tracing is enabled), charges its wall
  /// time to the worker's busy tally and the pool metrics, and adds its
  /// thread-CPU delta to `cpu_ns_out` when non-null.
  Status RunMorsel(const MorselFn& fn, int64_t begin, int64_t end, int worker,
                   std::atomic<int64_t>* cpu_ns_out);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  /// Per-worker busy micros (atomic: readers may poll while workers run).
  std::unique_ptr<std::atomic<int64_t>[]> worker_busy_us_;
};

}  // namespace dl2sql
