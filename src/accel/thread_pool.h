/// \file thread_pool.h
/// \brief Fixed-size worker pool with a ParallelFor primitive; the compute
/// substrate for the simulated server-CPU and server-GPU backends.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dl2sql {

/// \brief A minimal work-stealing-free thread pool.
///
/// Tasks are std::function<void()>; ParallelFor partitions an index range into
/// contiguous chunks, one per worker, and blocks until all complete.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>=1 enforced).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(begin, end) over [0, n) split into one chunk per worker; blocks
  /// until every chunk finishes. Runs inline when the pool has one thread or
  /// n is small.
  void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn);

 private:
  void WorkerLoop();
  void Submit(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace dl2sql
