/// \file admission.h
/// \brief Admission control for the serving layer: bounded FIFO queue with a
/// concurrency cap and queue timeout. Overload answers with a status —
/// rejected, never hung.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/result.h"
#include "common/status.h"

namespace dl2sql::server {

struct AdmissionOptions {
  /// Queries executing at once. Intra-query morsels and inter-query
  /// parallelism share one thread pool, so this caps how many queries carve
  /// it up concurrently.
  int max_concurrent = 4;
  /// Waiters allowed behind the running queries; the next arrival is
  /// rejected with ResourceExhausted (backpressure, not buffering).
  int max_queue_depth = 64;
  /// How long a waiter may queue before being rejected with
  /// ResourceExhausted. <= 0 means reject immediately when saturated.
  double queue_timeout_ms = 5000.0;
};

/// \brief FIFO admission: Admit() blocks until a slot frees (in arrival
/// order), the queue overflows, or the timeout passes. Pair every successful
/// Admit() with Release(), or hold a Ticket.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// OK = admitted (caller owns a slot); ResourceExhausted = rejected.
  Status Admit();
  void Release();

  /// Queries currently holding a slot (the coalescer's inflight hint).
  int running() const;
  const AdmissionOptions& options() const { return options_; }

  /// \brief RAII slot: releases on destruction if admitted.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    ~Ticket() { reset(); }
    Ticket(Ticket&& o) noexcept : controller_(o.controller_) {
      o.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& o) noexcept {
      if (this != &o) {
        reset();
        controller_ = o.controller_;
        o.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    void reset() {
      if (controller_ != nullptr) controller_->Release();
      controller_ = nullptr;
    }

   private:
    AdmissionController* controller_ = nullptr;
  };

  /// Admit() returning a Ticket on success.
  Result<Ticket> AdmitTicket();

 private:
  const AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Tickets of waiters in arrival order; the front waiter is admitted next.
  std::deque<uint64_t> waiting_;
  uint64_t next_ticket_ = 0;
  int running_ = 0;
};

}  // namespace dl2sql::server
