#include "server/coalescer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"

namespace dl2sql::server {

namespace {

struct CoalescerMetrics {
  Counter* submissions;
  Counter* coalesced_rows;
  Counter* flush_cap;
  Counter* flush_window;
  Counter* merged_batches;
  Counter* bypass;
  Counter* batches;
  Histogram* batch_us;
  Histogram* wait_us;

  static const CoalescerMetrics& Get() {
    static const CoalescerMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      CoalescerMetrics out;
      out.submissions = r.counter("server.coalesce.submissions");
      out.coalesced_rows = r.counter("server.coalesce.rows");
      out.flush_cap = r.counter("server.coalesce.flush_cap");
      out.flush_window = r.counter("server.coalesce.flush_window");
      out.merged_batches = r.counter("server.coalesce.merged_batches");
      out.bypass = r.counter("server.coalesce.bypass");
      out.batches = r.counter("nudf.batches");
      out.batch_us = r.histogram("nudf.batch_us");
      out.wait_us = r.histogram("server.coalesce.wait_us");
      return out;
    }();
    return m;
  }
};

}  // namespace

CoalescerOptions CoalescerOptionsFromEnv() {
  CoalescerOptions opts;
  const char* env = std::getenv("DL2SQL_SERVER_COALESCE");
  if (env != nullptr &&
      (std::strcmp(env, "OFF") == 0 || std::strcmp(env, "off") == 0 ||
       std::strcmp(env, "0") == 0)) {
    opts.enabled = false;
  }
  return opts;
}

BatchCoalescer::BatchCoalescer(CoalescerOptions options)
    : options_(options) {}

BatchCoalescer::~BatchCoalescer() = default;

Result<std::vector<db::Value>> BatchCoalescer::InvokeChunked(
    const db::BatchFn& fn, std::vector<std::vector<db::Value>>&& rows,
    double* fn_seconds_out) {
  const CoalescerMetrics& m = CoalescerMetrics::Get();
  const size_t cap = options_.max_batch_rows > 0
                         ? static_cast<size_t>(options_.max_batch_rows)
                         : rows.size();
  std::vector<db::Value> out;
  out.reserve(rows.size());
  for (size_t begin = 0; begin < rows.size(); begin += cap) {
    const size_t end = std::min(rows.size(), begin + cap);
    std::vector<std::vector<db::Value>> chunk;
    chunk.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) chunk.push_back(std::move(rows[i]));
    Stopwatch watch;
    Result<std::vector<db::Value>> call = fn(chunk);
    const double secs = watch.ElapsedSeconds();
    if (fn_seconds_out != nullptr) *fn_seconds_out += secs;
    DL2SQL_ASSIGN_OR_RETURN(std::vector<db::Value> vals, std::move(call));
    m.batches->Increment();
    m.batch_us->Record(static_cast<int64_t>(secs * 1e6));
    if (vals.size() != chunk.size()) {
      return Status::InternalError("coalesced batch body returned ",
                                   vals.size(), " values for ", chunk.size(),
                                   " rows");
    }
    for (auto& v : vals) out.push_back(std::move(v));
  }
  return out;
}

Result<std::vector<db::Value>> BatchCoalescer::RunBatch(
    uint64_t fingerprint, const db::BatchFn& fn,
    std::vector<std::vector<db::Value>>&& rows, NudfBatchStats* stats) {
  if (rows.empty()) return std::vector<db::Value>{};
  const CoalescerMetrics& m = CoalescerMetrics::Get();
  m.submissions->Increment();

  if (!options_.enabled) {
    // Disabled mode matches the evaluator's direct path exactly: one body
    // call for the whole submission, no chunking — the comparison baseline.
    Stopwatch watch;
    DL2SQL_ASSIGN_OR_RETURN(std::vector<db::Value> vals, fn(rows));
    const double secs = watch.ElapsedSeconds();
    if (stats != nullptr) stats->billed_seconds += secs;
    m.batches->Increment();
    m.batch_us->Record(static_cast<int64_t>(secs * 1e6));
    if (vals.size() != rows.size()) {
      return Status::InternalError("batch body returned ", vals.size(),
                                   " values for ", rows.size(), " rows");
    }
    return vals;
  }
  if (inflight_ && inflight_() <= 1) {
    m.bypass->Increment();
    // Unshared batch: the submitter is billed for all of its fn time.
    double fn_seconds = 0.0;
    auto result = InvokeChunked(fn, std::move(rows), &fn_seconds);
    if (stats != nullptr) stats->billed_seconds += fn_seconds;
    return result;
  }

  DL2SQL_TRACE_SPAN("server", "coalesce");
  Stopwatch wait_watch;
  const size_t my_count = rows.size();
  size_t my_offset = 0;
  bool leader = false;
  std::shared_ptr<Group> group;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = forming_.find(fingerprint);
    if (it == forming_.end()) {
      group = std::make_shared<Group>();
      group->deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                options_.wait_window_ms));
      forming_[fingerprint] = group;
      leader = true;
    } else {
      group = it->second;
    }
    my_offset = group->rows.size();
    for (auto& r : rows) group->rows.push_back(std::move(r));
    m.coalesced_rows->Increment(static_cast<int64_t>(my_count));

    const size_t cap = static_cast<size_t>(
        std::max<int64_t>(1, options_.max_batch_rows));
    if (!leader) {
      if (group->rows.size() >= cap) group->cv.notify_all();
      group->cv.wait(lock, [&] { return group->done; });
    } else {
      // Wait for company until the cap is reached or the window closes; the
      // deadline guarantees this thread — and therefore every participant
      // waiting on `done` — is never blocked indefinitely.
      group->cv.wait_until(lock, group->deadline, [&] {
        return group->rows.size() >= cap;
      });
      forming_.erase(fingerprint);
      group->closed = true;
      if (group->rows.size() >= cap) {
        m.flush_cap->Increment();
      } else {
        m.flush_window->Increment();
      }
      if (group->rows.size() > my_count) m.merged_batches->Increment();

      std::vector<std::vector<db::Value>> batch = std::move(group->rows);
      group->rows.clear();
      lock.unlock();
      double fn_seconds = 0.0;
      auto result = InvokeChunked(fn, std::move(batch), &fn_seconds);
      lock.lock();
      group->fn_seconds = fn_seconds;
      if (result.ok()) {
        group->results = std::move(result).ValueOrDie();
      } else {
        group->status = result.status();
      }
      group->done = true;
      group->cv.notify_all();
    }
  }

  const double elapsed_seconds = wait_watch.ElapsedSeconds();
  m.wait_us->Record(static_cast<int64_t>(elapsed_seconds * 1e6));
  if (stats != nullptr) {
    // Proportional billing: this submission pays for its row share of the
    // group's total fn time; the remainder of its blocked time was waiting
    // (for the window to close, or for other queries' rows to be computed).
    double billed = 0.0;
    if (group->status.ok() && !group->results.empty()) {
      billed = group->fn_seconds * static_cast<double>(my_count) /
               static_cast<double>(group->results.size());
    }
    stats->billed_seconds += billed;
    stats->wait_seconds += std::max(0.0, elapsed_seconds - billed);
  }
  DL2SQL_RETURN_NOT_OK(group->status);
  if (group->results.size() < my_offset + my_count) {
    return Status::InternalError("coalesced batch produced ",
                                 group->results.size(), " results, expected >= ",
                                 my_offset + my_count);
  }
  // Copy (not move) the slice out: other participants share the vector.
  std::vector<db::Value> out(group->results.begin() +
                                 static_cast<int64_t>(my_offset),
                             group->results.begin() +
                                 static_cast<int64_t>(my_offset + my_count));
  return out;
}

}  // namespace dl2sql::server
