/// \file coalescer.h
/// \brief Cross-query nUDF batch coalescing (see DESIGN.md, "Serving").
///
/// N concurrent fig8-style queries each produce small cache-miss batches for
/// the same deployed model. Invoked independently, those cost N model calls;
/// coalesced, rows from different queries against the same model fingerprint
/// share batches, so concurrency *reduces* per-query inference cost — the
/// co-optimization across queries that arXiv:2310.04696 / CACTUSDB identify
/// as the main lever for in-RDBMS serving under load.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "db/eval.h"

namespace dl2sql::server {

struct CoalescerOptions {
  /// Master switch; the environment variable DL2SQL_SERVER_COALESCE=OFF (or
  /// "off"/"0") forces false at construction. When off, RunBatch degenerates
  /// to exactly one UDF-body call per submission — the evaluator's direct
  /// path — which is what the bit-identity tests compare against.
  bool enabled = true;
  /// Hard cap on rows per model invocation. Oversized submissions (a morsel's
  /// whole miss set) are chunked, so no call ever exceeds the cap.
  int64_t max_batch_rows = 256;
  /// How long the first submitter of a batch waits for other queries' rows
  /// before flushing a partial batch. Bounded: a batch is always flushed by
  /// its own leader at the deadline, so no submission can hang on a quiet
  /// server.
  double wait_window_ms = 2.0;
};

/// \brief Gathers cache-miss nUDF rows from concurrent queries into shared
/// batches, keyed by model fingerprint.
///
/// Leader-flush protocol: the first thread to submit rows for a fingerprint
/// opens a batch group and becomes its leader; later submitters append rows
/// and wait. The leader flushes — in chunks of at most max_batch_rows — when
/// the group reaches the cap or its wait window expires, then hands every
/// participant its slice of the results. Because only parallel-safe neural
/// UDFs with a model fingerprint are routed here (pure per-row functions),
/// regrouping rows across queries cannot change any per-row result.
///
/// The wait window is skipped when the inflight provider reports at most one
/// running query: with nobody to share with, waiting only adds latency.
class BatchCoalescer : public db::NudfBatchSink {
 public:
  explicit BatchCoalescer(CoalescerOptions options);
  ~BatchCoalescer() override;

  bool enabled() const { return options_.enabled; }
  const CoalescerOptions& options() const { return options_; }

  /// Wires the admission controller's running-query count in as a hint; may
  /// be null (always coalesce). Called once before serving starts.
  void set_inflight_provider(std::function<int()> provider) {
    inflight_ = std::move(provider);
  }

  /// db::NudfBatchSink: called from query threads (and pool workers running
  /// nUDF morsels). Blocks at most the wait window plus the model call.
  ///
  /// When `stats` is non-null it receives this submission's attribution:
  /// billed_seconds = the group's total batch_fn time × (this submission's
  /// rows / the group's rows) — proportional billing, so summing over every
  /// participant recovers 100% of the fn time — and wait_seconds = time
  /// blocked here beyond that share.
  Result<std::vector<db::Value>> RunBatch(
      uint64_t fingerprint, const db::BatchFn& fn,
      std::vector<std::vector<db::Value>>&& rows,
      NudfBatchStats* stats = nullptr) override;

 private:
  /// One forming batch: rows from >=1 submissions against one fingerprint.
  struct Group {
    std::vector<std::vector<db::Value>> rows;
    std::chrono::steady_clock::time_point deadline;
    /// Leader took the group out of forming_ and is invoking the model.
    bool closed = false;
    bool done = false;
    Status status;
    std::vector<db::Value> results;
    /// Total batch_fn seconds the leader spent flushing this group; billed
    /// back to participants proportional to their contributed row counts.
    double fn_seconds = 0.0;
    std::condition_variable cv;
  };

  /// Invokes `fn` over `rows` in chunks of at most max_batch_rows, counting
  /// one nudf.batches per call. Adds the summed fn wall time to
  /// `fn_seconds_out` when non-null (also on error, for partial chunks).
  Result<std::vector<db::Value>> InvokeChunked(
      const db::BatchFn& fn, std::vector<std::vector<db::Value>>&& rows,
      double* fn_seconds_out);

  const CoalescerOptions options_;
  std::function<int()> inflight_;
  std::mutex mu_;
  /// Groups currently accepting rows, by fingerprint. A group being flushed
  /// has already been removed, so late submitters open a fresh one.
  std::unordered_map<uint64_t, std::shared_ptr<Group>> forming_;
};

/// Reads CoalescerOptions defaults with the DL2SQL_SERVER_COALESCE
/// environment override applied.
CoalescerOptions CoalescerOptionsFromEnv();

}  // namespace dl2sql::server
