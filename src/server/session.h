/// \file session.h
/// \brief QueryService + Session: the thread-safe concurrent entry path into
/// an embedded Database (see DESIGN.md, "Serving").
///
/// The Database itself stays an embedded engine; QueryService layers the
/// serving concerns on top: admission control, a statement-level
/// reader/writer lock (concurrent SELECTs, exclusive DML/DDL), per-query
/// budgets, and the cross-query nUDF batch coalescer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/trace.h"
#include "db/database.h"
#include "server/admission.h"
#include "server/coalescer.h"
#include "server/wire.h"

namespace dl2sql::server {

/// Per-client knobs, adjustable per session (the wire protocol's
/// .format/.maxrows commands).
struct SessionSettings {
  OutputFormat format = OutputFormat::kTsv;
  /// Rows rendered per result; <0 = all (the result itself is never
  /// truncated — this caps the rendering only).
  int64_t render_max_rows = -1;
};

struct ServiceOptions {
  AdmissionOptions admission;
  CoalescerOptions coalescer = CoalescerOptionsFromEnv();
  /// Reject (ResourceExhausted) any statement whose result exceeds this many
  /// rows; 0 = unlimited. A safety valve against accidental cross joins
  /// flooding client connections.
  int64_t max_result_rows = 0;
  /// Statement deadline, best effort: execution is not interrupted
  /// mid-operator, but a statement that finishes past its deadline is
  /// reported (and counted) as ResourceExhausted instead of returning rows.
  /// 0 = no deadline. The hard never-hang guarantees live in admission
  /// (bounded queue + queue timeout) and the coalescer (leader flush).
  double statement_timeout_ms = 0.0;
};

class Session;

/// \brief Hook the cluster coordinator implements to intercept statements
/// that touch sharded tables (src/cluster/coordinator.h). The service asks
/// Handles() after parsing; handled statements run through Execute() under
/// the same statement-level RW lock as local ones (shared when IsReadOnly),
/// so local and distributed execution still serialize correctly against each
/// other. Implementations must never hang: every shard failure or timeout is
/// a returned status.
class DistributedExecutor {
 public:
  virtual ~DistributedExecutor() = default;

  /// True if `stmt` references distributed state and must be routed.
  virtual bool Handles(const db::Statement& stmt) = 0;

  /// True when the distributed execution of `stmt` only reads (SELECT
  /// scatter-gather); false forces the exclusive lock (DDL/DML fan-out, and
  /// fallback gathers that materialize shard tables locally).
  virtual bool IsReadOnly(const db::Statement& stmt) = 0;

  /// Executes one handled statement end to end (scatter, gather, merge).
  virtual Result<db::Table> Execute(const db::Statement& stmt,
                                    const std::string& sql,
                                    const db::QueryRecordHints& hints) = 0;

  /// \name Distributed observability hooks (defaults keep single-node
  /// servers working unchanged).
  /// @{

  /// Extra Prometheus exposition lines appended to the local /metrics body:
  /// shard-labeled series scraped from each shard's MetricsRegistry plus the
  /// coordinator's per-shard client counters. Best effort — unreachable
  /// shards are skipped. Empty for non-cluster executors.
  virtual std::string FederatedMetricsText() { return std::string(); }

  /// Writes one Chrome-trace file for the last traced distributed query,
  /// one lane (pid) per shard. Default: the local collector's trace.
  virtual Status WriteClusterTrace(const std::string& path) {
    return TraceCollector::Global().WriteChromeTrace(path);
  }

  /// EXPLAIN ANALYZE for a handled statement: runs it and renders the
  /// distributed plan with a per-shard footer (strategy, per-shard
  /// latency/rows/bytes, merge cost, slowest shard).
  virtual Result<std::string> ExplainAnalyze(const db::Statement& stmt,
                                             const std::string& sql) {
    (void)stmt;
    (void)sql;
    return Status::InvalidArgument(
        "distributed EXPLAIN ANALYZE is not supported by this executor");
  }

  /// @}
};

/// \brief Owns the serving state for one Database. Create one QueryService,
/// then one Session per client connection; Session::Execute is safe from any
/// thread.
class QueryService {
 public:
  /// Wires the coalescer into `db` (set_nudf_batch_sink) and, when the
  /// database has introspection enabled, registers the system.sessions
  /// virtual table (live per-session statement counters). `db` must outlive
  /// the service; no other caller may mutate the database while serving.
  QueryService(db::Database* db, ServiceOptions options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  std::shared_ptr<Session> CreateSession();

  db::Database* database() { return db_; }
  const ServiceOptions& options() const { return options_; }
  AdmissionController& admission() { return admission_; }
  BatchCoalescer& coalescer() { return coalescer_; }

  /// Routes statements the executor claims through it instead of the local
  /// database. Set once after construction, before serving begins (the
  /// pointer is read unsynchronized on the statement path); nullptr restores
  /// local-only execution. Not owned; must be cleared before destruction.
  void set_distributed_executor(DistributedExecutor* executor) {
    distributed_ = executor;
  }
  DistributedExecutor* distributed_executor() const { return distributed_; }

 private:
  friend class Session;

  /// The concurrent entry path: admission -> parse -> classify -> RW lock ->
  /// execute -> budget checks. Every failure is a status, never a hang.
  /// The session's id, memory tracker, and the measured admission / RW-lock
  /// waits flow into the query log (system.queries, system.query_profiles)
  /// as QueryRecordHints.
  Result<db::Table> Execute(const std::string& sql, Session* session);

  /// Same path with a propagated distributed trace context (installed as the
  /// thread's scoped context so spans and the query-log record carry the
  /// coordinator's ids) and an optional query-log record copy-out for the
  /// wire trailer.
  Result<db::Table> Execute(const std::string& sql, Session* session,
                            const TraceContext& trace,
                            db::QueryLogRecord* record_out);

  /// Whole scripts take the exclusive lock once (DDL/DML heavy by nature).
  Status ExecuteScript(const std::string& script);

  db::Database* const db_;
  const ServiceOptions options_;
  AdmissionController admission_;
  BatchCoalescer coalescer_;
  DistributedExecutor* distributed_ = nullptr;
  /// Statement-level RW lock: SELECTs share, everything else is exclusive.
  /// Held once per top-level statement — scalar subqueries re-enter
  /// Database::ExecuteSelect below this layer, so the lock must not be
  /// re-acquired recursively.
  std::shared_mutex exec_mu_;
  std::atomic<uint64_t> next_session_id_{1};
  /// Live sessions behind system.sessions. Weak: a session's lifetime stays
  /// owned by its connection; dead entries are pruned on CreateSession and
  /// at scan time. Only populated when the provider is registered.
  std::mutex sessions_mu_;
  std::vector<std::weak_ptr<Session>> sessions_;
  bool sessions_table_registered_ = false;
};

/// \brief One client's handle onto the service: settings + statistics.
/// A session itself is used by a single connection thread; different
/// sessions execute concurrently.
class Session {
 public:
  Session(QueryService* service, uint64_t id)
      : service_(service), id_(id),
        mem_("session-" + std::to_string(id), MemTracker::Process()) {}

  uint64_t id() const { return id_; }
  SessionSettings& settings() { return settings_; }
  const SessionSettings& settings() const { return settings_; }

  /// Executes one SQL statement through the service.
  Result<db::Table> Execute(const std::string& sql);

  /// Executes one statement under a propagated trace context (".trace" wire
  /// header); `record_out` (optional) receives the statement's query-log
  /// record for the response trailer.
  Result<db::Table> ExecuteTraced(const std::string& sql,
                                  const TraceContext& trace,
                                  db::QueryLogRecord* record_out);

  /// Executes a ';'-separated script under one exclusive lock.
  Status ExecuteScript(const std::string& script);

  /// Statements successfully executed / failed on this session.
  int64_t statements_ok() const {
    return ok_.load(std::memory_order_relaxed);
  }
  int64_t statements_failed() const {
    return failed_.load(std::memory_order_relaxed);
  }

  /// Per-session memory tracker ("session-<id>" under the process root);
  /// each statement's query tracker is parented here, so consumption() is
  /// the session's live tracked bytes and peak() its high-water mark.
  /// Surfaced as the tracked_bytes / tracked_peak_bytes columns of
  /// system.sessions (zeros with DL2SQL_MEM_TRACKER=OFF).
  MemTracker* mem_tracker() { return &mem_; }
  const MemTracker& mem_tracker() const { return mem_; }

 private:
  QueryService* const service_;
  const uint64_t id_;
  MemTracker mem_;
  SessionSettings settings_;
  std::atomic<int64_t> ok_{0};
  std::atomic<int64_t> failed_{0};
};

}  // namespace dl2sql::server
