#include "server/session.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <utility>
#include <variant>

#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "db/virtual_table.h"

namespace dl2sql::server {

namespace {

struct ServiceMetrics {
  Counter* requests;
  Counter* errors;
  Counter* budget_rows;
  Counter* budget_deadline;
  Counter* sessions;
  Histogram* exec_us;
  Histogram* total_us;

  static const ServiceMetrics& Get() {
    static const ServiceMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      ServiceMetrics out;
      out.requests = r.counter("server.requests");
      out.errors = r.counter("server.errors");
      out.budget_rows = r.counter("server.budget_rows_exceeded");
      out.budget_deadline = r.counter("server.budget_deadline_exceeded");
      out.sessions = r.counter("server.sessions");
      out.exec_us = r.histogram("server.exec_us");
      out.total_us = r.histogram("server.total_us");
      return out;
    }();
    return m;
  }
};

bool IsSelect(const db::Statement& stmt) {
  return std::holds_alternative<std::shared_ptr<db::SelectStmt>>(stmt);
}

}  // namespace

QueryService::QueryService(db::Database* db, ServiceOptions options)
    : db_(db), options_(options), admission_(options.admission),
      coalescer_(options.coalescer) {
  coalescer_.set_inflight_provider([this] { return admission_.running(); });
  db_->set_nudf_batch_sink(&coalescer_);
  if (db_->introspection_options().enabled) {
    db::TableSchema schema({{"id", db::DataType::kInt64},
                            {"statements_ok", db::DataType::kInt64},
                            {"statements_failed", db::DataType::kInt64},
                            {"tracked_bytes", db::DataType::kInt64},
                            {"tracked_peak_bytes", db::DataType::kInt64}});
    sessions_table_registered_ =
        db_->catalog()
            .RegisterVirtualTable(std::make_shared<db::CallbackVirtualTable>(
                "system.sessions", std::move(schema),
                [this](const db::TableSchema& s) -> Result<db::TablePtr> {
                  auto t = std::make_shared<db::Table>(db::Table{s});
                  std::lock_guard<std::mutex> lock(sessions_mu_);
                  for (const auto& weak : sessions_) {
                    auto session = weak.lock();
                    if (session == nullptr) continue;
                    const MemTracker& mem = *session->mem_tracker();
                    DL2SQL_RETURN_NOT_OK(t->AppendRow(
                        {db::Value::Int(static_cast<int64_t>(session->id())),
                         db::Value::Int(session->statements_ok()),
                         db::Value::Int(session->statements_failed()),
                         db::Value::Int(mem.consumption()),
                         db::Value::Int(mem.peak())}));
                  }
                  return t;
                }))
            .ok();
  }
}

QueryService::~QueryService() {
  if (sessions_table_registered_) {
    db_->catalog().UnregisterVirtualTable("system.sessions");
  }
  db_->set_nudf_batch_sink(nullptr);
}

std::shared_ptr<Session> QueryService::CreateSession() {
  ServiceMetrics::Get().sessions->Increment();
  auto session = std::make_shared<Session>(
      this, next_session_id_.fetch_add(1, std::memory_order_relaxed));
  if (sessions_table_registered_) {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                   [](const std::weak_ptr<Session>& w) {
                                     return w.expired();
                                   }),
                    sessions_.end());
    sessions_.push_back(session);
  }
  return session;
}

Result<db::Table> QueryService::Execute(const std::string& sql,
                                        Session* session) {
  return Execute(sql, session, TraceContext{}, nullptr);
}

Result<db::Table> QueryService::Execute(const std::string& sql,
                                        Session* session,
                                        const TraceContext& trace,
                                        db::QueryLogRecord* record_out) {
  // Installed before the first span so every span this statement records
  // (server + engine) is stamped with the propagated trace id.
  std::optional<ScopedTraceContext> scoped;
  if (trace.active()) scoped.emplace(trace);
  DL2SQL_TRACE_SPAN("server", "request");
  const ServiceMetrics& m = ServiceMetrics::Get();
  m.requests->Increment();
  Stopwatch total_watch;

  // Parse before admission: syntax errors should not consume a slot.
  DL2SQL_ASSIGN_OR_RETURN(db::Statement stmt, db::sql::ParseStatement(sql));

  Stopwatch wait_watch;
  DL2SQL_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_.AdmitTicket());
  db::QueryRecordHints hints;
  hints.session_id = static_cast<int64_t>(session->id());
  hints.session_mem = session->mem_tracker();
  hints.admission_wait_us = wait_watch.ElapsedMicros();
  hints.trace_id = trace.trace_id;
  hints.parent_span_id = trace.parent_span_id;
  hints.record_out = record_out;

  Stopwatch exec_watch;
  DistributedExecutor* const dist =
      distributed_ != nullptr && distributed_->Handles(stmt) ? distributed_
                                                             : nullptr;
  Result<db::Table> result = [&]() -> Result<db::Table> {
    const bool shared = dist != nullptr ? dist->IsReadOnly(stmt)
                                        : IsSelect(stmt);
    if (shared) {
      Stopwatch lock_watch;
      std::shared_lock<std::shared_mutex> lock(exec_mu_);
      hints.lock_wait_us = lock_watch.ElapsedMicros();
      DL2SQL_TRACE_SPAN("server", "exec_select");
      if (dist != nullptr) return dist->Execute(stmt, sql, hints);
      return db_->ExecuteStatementRecorded(stmt, sql, hints);
    }
    Stopwatch lock_watch;
    std::unique_lock<std::shared_mutex> lock(exec_mu_);
    hints.lock_wait_us = lock_watch.ElapsedMicros();
    DL2SQL_TRACE_SPAN("server", "exec_write");
    if (dist != nullptr) return dist->Execute(stmt, sql, hints);
    return db_->ExecuteStatementRecorded(stmt, sql, hints);
  }();
  const double exec_seconds = exec_watch.ElapsedSeconds();
  ticket.reset();

  m.exec_us->Record(static_cast<int64_t>(exec_seconds * 1e6));
  m.total_us->Record(total_watch.ElapsedMicros());
  if (!result.ok()) {
    m.errors->Increment();
    return result;
  }
  if (options_.max_result_rows > 0 &&
      result->num_rows() > options_.max_result_rows) {
    m.budget_rows->Increment();
    m.errors->Increment();
    return Status::ResourceExhausted(
        "result has ", result->num_rows(), " rows, over the per-query cap of ",
        options_.max_result_rows);
  }
  if (options_.statement_timeout_ms > 0 &&
      exec_seconds * 1e3 > options_.statement_timeout_ms) {
    m.budget_deadline->Increment();
    m.errors->Increment();
    return Status::ResourceExhausted(
        "statement ran ", exec_seconds * 1e3, " ms, over the deadline of ",
        options_.statement_timeout_ms, " ms");
  }
  return result;
}

Status QueryService::ExecuteScript(const std::string& script) {
  DL2SQL_TRACE_SPAN("server", "script");
  DL2SQL_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_.AdmitTicket());
  std::unique_lock<std::shared_mutex> lock(exec_mu_);
  return db_->ExecuteScript(script);
}

Result<db::Table> Session::Execute(const std::string& sql) {
  auto result = service_->Execute(sql, this);
  (result.ok() ? ok_ : failed_).fetch_add(1, std::memory_order_relaxed);
  return result;
}

Result<db::Table> Session::ExecuteTraced(const std::string& sql,
                                         const TraceContext& trace,
                                         db::QueryLogRecord* record_out) {
  auto result = service_->Execute(sql, this, trace, record_out);
  (result.ok() ? ok_ : failed_).fetch_add(1, std::memory_order_relaxed);
  return result;
}

Status Session::ExecuteScript(const std::string& script) {
  Status st = service_->ExecuteScript(script);
  (st.ok() ? ok_ : failed_).fetch_add(1, std::memory_order_relaxed);
  return st;
}

}  // namespace dl2sql::server
