#include "server/wire.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "db/value.h"

namespace dl2sql::server {

namespace {

/// TSV cells share lines with the framing, so the three separators are
/// backslash-escaped. Everything else passes through verbatim (blob bytes
/// included; the protocol is not binary-clean but the workload's blobs are).
std::string EscapeTsv(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// %.17g round-trips doubles exactly, so TSV/JSON output is as bit-faithful
/// as Value::ToString-based comparisons need.
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string CellTsv(const db::Value& v) {
  switch (v.type()) {
    case db::DataType::kNull:
      return "NULL";
    case db::DataType::kBool:
      return v.bool_value() ? "true" : "false";
    case db::DataType::kInt64:
      return std::to_string(v.int_value());
    case db::DataType::kFloat64:
      return FormatDouble(v.float_value());
    default:
      return EscapeTsv(v.string_value());
  }
}

std::string CellJson(const db::Value& v) {
  switch (v.type()) {
    case db::DataType::kNull:
      return "null";
    case db::DataType::kBool:
      return v.bool_value() ? "true" : "false";
    case db::DataType::kInt64:
      return std::to_string(v.int_value());
    case db::DataType::kFloat64:
      return FormatDouble(v.float_value());
    default:
      return "\"" + EscapeJson(v.string_value()) + "\"";
  }
}

}  // namespace

Result<OutputFormat> ParseOutputFormat(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "tsv") return OutputFormat::kTsv;
  if (lower == "json") return OutputFormat::kJson;
  return Status::InvalidArgument("unknown output format '", name,
                                 "' (expected tsv or json)");
}

std::string RenderTable(const db::Table& table, OutputFormat format,
                        int64_t max_rows) {
  const int64_t rows = max_rows >= 0
                           ? std::min<int64_t>(max_rows, table.num_rows())
                           : table.num_rows();
  const int cols = table.num_columns();
  std::string out;
  if (format == OutputFormat::kTsv) {
    // DDL/DML results are zero-column row counts; the count lives in the OK
    // frame line, so the body is empty rather than a stack of blank lines.
    if (cols == 0) return out;
    for (int c = 0; c < cols; ++c) {
      if (c > 0) out += '\t';
      out += EscapeTsv(table.schema().field(c).name);
    }
    out += '\n';
    for (int64_t r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (c > 0) out += '\t';
        out += CellTsv(table.column(c).GetValue(r));
      }
      out += '\n';
    }
    return out;
  }
  out += "{\"columns\":[";
  for (int c = 0; c < cols; ++c) {
    if (c > 0) out += ',';
    out += "\"" + EscapeJson(table.schema().field(c).name) + "\"";
  }
  out += "],\"rows\":[";
  for (int64_t r = 0; r < rows; ++r) {
    if (r > 0) out += ',';
    out += '[';
    for (int c = 0; c < cols; ++c) {
      if (c > 0) out += ',';
      out += CellJson(table.column(c).GetValue(r));
    }
    out += ']';
  }
  out += "]}\n";
  return out;
}

std::string FormatOkResponse(const db::Table& table, OutputFormat format,
                             int64_t max_rows) {
  return FormatOkResponseWithTrailer(table, format, max_rows, {});
}

std::string FormatOkResponseWithTrailer(
    const db::Table& table, OutputFormat format, int64_t max_rows,
    const std::vector<std::vector<std::string>>& meta) {
  return FrameOkBodyWithTrailer(table.num_rows(), table.num_columns(),
                                RenderTable(table, format, max_rows), meta);
}

std::string FrameOkBodyWithTrailer(
    int64_t rows, int64_t cols, const std::string& body,
    const std::vector<std::vector<std::string>>& meta) {
  std::string out =
      "OK " + std::to_string(rows) + " " + std::to_string(cols) + "\n";
  out += body;
  for (const std::vector<std::string>& fields : meta) {
    out += "META";
    for (const std::string& f : fields) {
      out += '\t';
      out += EscapeTsv(f);
    }
    out += '\n';
  }
  out += "END\n";
  return out;
}

std::string FormatErrorResponse(const Status& status) {
  std::string msg = status.ToString();
  for (char& c : msg) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR " + msg + "\nEND\n";
}

std::string FormatTraceStatement(uint64_t trace_id, uint64_t parent_span_id,
                                 const std::string& sql) {
  char head[48];
  std::snprintf(head, sizeof(head), ".trace %016llx %016llx ",
                static_cast<unsigned long long>(trace_id),
                static_cast<unsigned long long>(parent_span_id));
  return head + sql;
}

bool ParseTraceStatement(const std::string& line, uint64_t* trace_id,
                         uint64_t* parent_span_id, std::string* sql) {
  constexpr const char kPrefix[] = ".trace ";
  if (line.rfind(kPrefix, 0) != 0) return false;
  const char* p = line.c_str() + sizeof(kPrefix) - 1;
  char* end = nullptr;
  const unsigned long long tid = std::strtoull(p, &end, 16);
  if (end == p || *end != ' ') return false;
  p = end + 1;
  const unsigned long long span = std::strtoull(p, &end, 16);
  if (end == p || *end != ' ') return false;
  *trace_id = tid;
  *parent_span_id = span;
  *sql = std::string(end + 1);
  return !sql->empty() && tid != 0;
}

std::vector<std::string> SpanMetaFields(const TraceEvent& event) {
  return {"span",
          event.name,
          event.category,
          std::to_string(event.start_us),
          std::to_string(event.duration_us),
          std::to_string(event.tid),
          std::to_string(event.depth),
          event.args};
}

bool ParseSpanMeta(const std::vector<std::string>& fields, TraceEvent* out) {
  if (fields.size() != 8 || fields[0] != "span") return false;
  out->name = fields[1];
  // `category` is a stable C string in local spans; shipped spans always
  // render as remote work on the coordinator's timeline.
  out->category = "shard";
  if (!fields[2].empty()) {
    out->args = "\"shard_cat\":\"" + fields[2] + "\"";
  }
  char* end = nullptr;
  out->start_us = std::strtoll(fields[3].c_str(), &end, 10);
  out->duration_us = std::strtoll(fields[4].c_str(), &end, 10);
  out->tid = static_cast<int32_t>(std::strtol(fields[5].c_str(), &end, 10));
  out->depth = static_cast<int32_t>(std::strtol(fields[6].c_str(), &end, 10));
  if (!fields[7].empty()) {
    if (!out->args.empty()) out->args += ",";
    out->args += fields[7];
  }
  return true;
}

std::vector<std::string> ProfileMetaFields(const WireProfile& profile) {
  return {"profile",
          std::to_string(profile.rows),
          std::to_string(profile.bytes),
          std::to_string(profile.duration_us),
          std::to_string(profile.cpu_us),
          std::to_string(profile.admission_wait_us),
          std::to_string(profile.lock_wait_us),
          std::to_string(profile.pool_queue_wait_us),
          std::to_string(profile.mem_peak_bytes),
          std::to_string(profile.spill_bytes),
          std::to_string(profile.spill_partitions),
          std::to_string(profile.neural_calls)};
}

bool ParseProfileMeta(const std::vector<std::string>& fields,
                      WireProfile* out) {
  if (fields.size() != 12 || fields[0] != "profile") return false;
  int64_t* slots[] = {&out->rows,
                      &out->bytes,
                      &out->duration_us,
                      &out->cpu_us,
                      &out->admission_wait_us,
                      &out->lock_wait_us,
                      &out->pool_queue_wait_us,
                      &out->mem_peak_bytes,
                      &out->spill_bytes,
                      &out->spill_partitions,
                      &out->neural_calls};
  for (size_t i = 0; i < 11; ++i) {
    *slots[i] = std::strtoll(fields[i + 1].c_str(), nullptr, 10);
  }
  return true;
}

std::string UnescapeTsv(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case '\\':
        out += '\\';
        break;
      default:
        out += '\\';
        out += s[i];
    }
  }
  return out;
}

size_t CompleteFrameLength(const std::string& buffer) {
  // The first line is OK/ERR, never END, so the terminator always follows a
  // newline.
  const size_t pos = buffer.find("\nEND\n");
  if (pos == std::string::npos) return 0;
  return pos + 5;
}

namespace {

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(UnescapeTsv(line.substr(start)));
      return out;
    }
    out.push_back(UnescapeTsv(line.substr(start, tab - start)));
    start = tab + 1;
  }
}

}  // namespace

Result<WireResponse> ParseWireResponse(const std::string& framed) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < framed.size()) {
    size_t nl = framed.find('\n', start);
    if (nl == std::string::npos) nl = framed.size();
    lines.push_back(framed.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.empty() || lines.back() != "END") {
    return Status::ParseError("wire frame is not END-terminated");
  }
  lines.pop_back();
  if (lines.empty()) return Status::ParseError("wire frame has no status line");

  const std::string& head = lines.front();
  if (head.rfind("ERR ", 0) == 0) {
    const std::string payload = head.substr(4);
    const size_t colon = payload.find(": ");
    WireResponse out;
    out.wire_bytes = static_cast<int64_t>(framed.size());
    if (colon == std::string::npos) {
      out.error = Status(StatusCode::kInternalError, payload);
    } else {
      out.error = Status(StatusCodeFromString(payload.substr(0, colon)),
                         payload.substr(colon + 2));
    }
    return out;
  }
  if (head.rfind("OK ", 0) != 0) {
    return Status::ParseError("wire frame starts with '", head,
                              "', expected OK or ERR");
  }
  int64_t rows = 0;
  int64_t cols = 0;
  if (std::sscanf(head.c_str(), "OK %lld %lld", (long long*)&rows,
                  (long long*)&cols) != 2 ||
      rows < 0 || cols < 0) {
    return Status::ParseError("malformed OK line '", head, "'");
  }
  WireResponse out;
  out.rows = rows;
  out.wire_bytes = static_cast<int64_t>(framed.size());
  // Trailer lines follow the body and are recognized positionally (only
  // after the OK line's `rows` body rows), so a data row whose first cell
  // happens to be "META" still parses as a row.
  const auto parse_meta_tail = [&](size_t first) -> Status {
    for (size_t i = first; i < lines.size(); ++i) {
      if (lines[i].rfind("META\t", 0) != 0) {
        return Status::ParseError("unexpected frame line after body: '",
                                  lines[i], "'");
      }
      out.meta.push_back(SplitTabs(lines[i].substr(5)));
    }
    return Status::OK();
  };
  if (cols == 0) {
    const Status meta_status = parse_meta_tail(1);
    if (!meta_status.ok()) return meta_status;
    return out;
  }
  if (lines.size() < 2) {
    return Status::ParseError("frame is missing its header line");
  }
  out.columns = SplitTabs(lines[1]);
  if (static_cast<int64_t>(out.columns.size()) != cols) {
    return Status::ParseError("frame header has ", out.columns.size(),
                              " columns, OK line says ", cols);
  }
  const size_t body_end =
      std::min(lines.size(), 2 + static_cast<size_t>(rows));
  out.cells.reserve(body_end - 2);
  for (size_t i = 2; i < body_end; ++i) {
    std::vector<std::string> row = SplitTabs(lines[i]);
    if (static_cast<int64_t>(row.size()) != cols) {
      return Status::ParseError("frame row ", i - 2, " has ", row.size(),
                                " cells, expected ", cols);
    }
    out.cells.push_back(std::move(row));
  }
  const Status meta_status = parse_meta_tail(body_end);
  if (!meta_status.ok()) return meta_status;
  // Row counts can disagree only when the sender truncated rendering
  // (.maxrows); shard traffic never does, so treat it as malformed.
  if (static_cast<int64_t>(out.cells.size()) != rows) {
    return Status::ParseError("frame body has ", out.cells.size(),
                              " rows, OK line says ", rows);
  }
  return out;
}

}  // namespace dl2sql::server
