#include "server/wire.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "db/value.h"

namespace dl2sql::server {

namespace {

/// TSV cells share lines with the framing, so the three separators are
/// backslash-escaped. Everything else passes through verbatim (blob bytes
/// included; the protocol is not binary-clean but the workload's blobs are).
std::string EscapeTsv(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// %.17g round-trips doubles exactly, so TSV/JSON output is as bit-faithful
/// as Value::ToString-based comparisons need.
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string CellTsv(const db::Value& v) {
  switch (v.type()) {
    case db::DataType::kNull:
      return "NULL";
    case db::DataType::kBool:
      return v.bool_value() ? "true" : "false";
    case db::DataType::kInt64:
      return std::to_string(v.int_value());
    case db::DataType::kFloat64:
      return FormatDouble(v.float_value());
    default:
      return EscapeTsv(v.string_value());
  }
}

std::string CellJson(const db::Value& v) {
  switch (v.type()) {
    case db::DataType::kNull:
      return "null";
    case db::DataType::kBool:
      return v.bool_value() ? "true" : "false";
    case db::DataType::kInt64:
      return std::to_string(v.int_value());
    case db::DataType::kFloat64:
      return FormatDouble(v.float_value());
    default:
      return "\"" + EscapeJson(v.string_value()) + "\"";
  }
}

}  // namespace

Result<OutputFormat> ParseOutputFormat(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "tsv") return OutputFormat::kTsv;
  if (lower == "json") return OutputFormat::kJson;
  return Status::InvalidArgument("unknown output format '", name,
                                 "' (expected tsv or json)");
}

std::string RenderTable(const db::Table& table, OutputFormat format,
                        int64_t max_rows) {
  const int64_t rows = max_rows >= 0
                           ? std::min<int64_t>(max_rows, table.num_rows())
                           : table.num_rows();
  const int cols = table.num_columns();
  std::string out;
  if (format == OutputFormat::kTsv) {
    // DDL/DML results are zero-column row counts; the count lives in the OK
    // frame line, so the body is empty rather than a stack of blank lines.
    if (cols == 0) return out;
    for (int c = 0; c < cols; ++c) {
      if (c > 0) out += '\t';
      out += EscapeTsv(table.schema().field(c).name);
    }
    out += '\n';
    for (int64_t r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (c > 0) out += '\t';
        out += CellTsv(table.column(c).GetValue(r));
      }
      out += '\n';
    }
    return out;
  }
  out += "{\"columns\":[";
  for (int c = 0; c < cols; ++c) {
    if (c > 0) out += ',';
    out += "\"" + EscapeJson(table.schema().field(c).name) + "\"";
  }
  out += "],\"rows\":[";
  for (int64_t r = 0; r < rows; ++r) {
    if (r > 0) out += ',';
    out += '[';
    for (int c = 0; c < cols; ++c) {
      if (c > 0) out += ',';
      out += CellJson(table.column(c).GetValue(r));
    }
    out += ']';
  }
  out += "]}\n";
  return out;
}

std::string FormatOkResponse(const db::Table& table, OutputFormat format,
                             int64_t max_rows) {
  std::string out = "OK " + std::to_string(table.num_rows()) + " " +
                    std::to_string(table.num_columns()) + "\n";
  out += RenderTable(table, format, max_rows);
  out += "END\n";
  return out;
}

std::string FormatErrorResponse(const Status& status) {
  std::string msg = status.ToString();
  for (char& c : msg) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR " + msg + "\nEND\n";
}

}  // namespace dl2sql::server
