#include "server/wire.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "db/value.h"

namespace dl2sql::server {

namespace {

/// TSV cells share lines with the framing, so the three separators are
/// backslash-escaped. Everything else passes through verbatim (blob bytes
/// included; the protocol is not binary-clean but the workload's blobs are).
std::string EscapeTsv(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// %.17g round-trips doubles exactly, so TSV/JSON output is as bit-faithful
/// as Value::ToString-based comparisons need.
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string CellTsv(const db::Value& v) {
  switch (v.type()) {
    case db::DataType::kNull:
      return "NULL";
    case db::DataType::kBool:
      return v.bool_value() ? "true" : "false";
    case db::DataType::kInt64:
      return std::to_string(v.int_value());
    case db::DataType::kFloat64:
      return FormatDouble(v.float_value());
    default:
      return EscapeTsv(v.string_value());
  }
}

std::string CellJson(const db::Value& v) {
  switch (v.type()) {
    case db::DataType::kNull:
      return "null";
    case db::DataType::kBool:
      return v.bool_value() ? "true" : "false";
    case db::DataType::kInt64:
      return std::to_string(v.int_value());
    case db::DataType::kFloat64:
      return FormatDouble(v.float_value());
    default:
      return "\"" + EscapeJson(v.string_value()) + "\"";
  }
}

}  // namespace

Result<OutputFormat> ParseOutputFormat(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "tsv") return OutputFormat::kTsv;
  if (lower == "json") return OutputFormat::kJson;
  return Status::InvalidArgument("unknown output format '", name,
                                 "' (expected tsv or json)");
}

std::string RenderTable(const db::Table& table, OutputFormat format,
                        int64_t max_rows) {
  const int64_t rows = max_rows >= 0
                           ? std::min<int64_t>(max_rows, table.num_rows())
                           : table.num_rows();
  const int cols = table.num_columns();
  std::string out;
  if (format == OutputFormat::kTsv) {
    // DDL/DML results are zero-column row counts; the count lives in the OK
    // frame line, so the body is empty rather than a stack of blank lines.
    if (cols == 0) return out;
    for (int c = 0; c < cols; ++c) {
      if (c > 0) out += '\t';
      out += EscapeTsv(table.schema().field(c).name);
    }
    out += '\n';
    for (int64_t r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (c > 0) out += '\t';
        out += CellTsv(table.column(c).GetValue(r));
      }
      out += '\n';
    }
    return out;
  }
  out += "{\"columns\":[";
  for (int c = 0; c < cols; ++c) {
    if (c > 0) out += ',';
    out += "\"" + EscapeJson(table.schema().field(c).name) + "\"";
  }
  out += "],\"rows\":[";
  for (int64_t r = 0; r < rows; ++r) {
    if (r > 0) out += ',';
    out += '[';
    for (int c = 0; c < cols; ++c) {
      if (c > 0) out += ',';
      out += CellJson(table.column(c).GetValue(r));
    }
    out += ']';
  }
  out += "]}\n";
  return out;
}

std::string FormatOkResponse(const db::Table& table, OutputFormat format,
                             int64_t max_rows) {
  std::string out = "OK " + std::to_string(table.num_rows()) + " " +
                    std::to_string(table.num_columns()) + "\n";
  out += RenderTable(table, format, max_rows);
  out += "END\n";
  return out;
}

std::string FormatErrorResponse(const Status& status) {
  std::string msg = status.ToString();
  for (char& c : msg) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR " + msg + "\nEND\n";
}

std::string UnescapeTsv(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case '\\':
        out += '\\';
        break;
      default:
        out += '\\';
        out += s[i];
    }
  }
  return out;
}

size_t CompleteFrameLength(const std::string& buffer) {
  // The first line is OK/ERR, never END, so the terminator always follows a
  // newline.
  const size_t pos = buffer.find("\nEND\n");
  if (pos == std::string::npos) return 0;
  return pos + 5;
}

namespace {

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(UnescapeTsv(line.substr(start)));
      return out;
    }
    out.push_back(UnescapeTsv(line.substr(start, tab - start)));
    start = tab + 1;
  }
}

}  // namespace

Result<WireResponse> ParseWireResponse(const std::string& framed) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < framed.size()) {
    size_t nl = framed.find('\n', start);
    if (nl == std::string::npos) nl = framed.size();
    lines.push_back(framed.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.empty() || lines.back() != "END") {
    return Status::ParseError("wire frame is not END-terminated");
  }
  lines.pop_back();
  if (lines.empty()) return Status::ParseError("wire frame has no status line");

  const std::string& head = lines.front();
  if (head.rfind("ERR ", 0) == 0) {
    const std::string payload = head.substr(4);
    const size_t colon = payload.find(": ");
    WireResponse out;
    if (colon == std::string::npos) {
      out.error = Status(StatusCode::kInternalError, payload);
    } else {
      out.error = Status(StatusCodeFromString(payload.substr(0, colon)),
                         payload.substr(colon + 2));
    }
    return out;
  }
  if (head.rfind("OK ", 0) != 0) {
    return Status::ParseError("wire frame starts with '", head,
                              "', expected OK or ERR");
  }
  int64_t rows = 0;
  int64_t cols = 0;
  if (std::sscanf(head.c_str(), "OK %lld %lld", (long long*)&rows,
                  (long long*)&cols) != 2 ||
      rows < 0 || cols < 0) {
    return Status::ParseError("malformed OK line '", head, "'");
  }
  WireResponse out;
  out.rows = rows;
  if (cols == 0) {
    if (lines.size() != 1) {
      return Status::ParseError("zero-column frame has a body");
    }
    return out;
  }
  if (lines.size() < 2) {
    return Status::ParseError("frame is missing its header line");
  }
  out.columns = SplitTabs(lines[1]);
  if (static_cast<int64_t>(out.columns.size()) != cols) {
    return Status::ParseError("frame header has ", out.columns.size(),
                              " columns, OK line says ", cols);
  }
  out.cells.reserve(lines.size() - 2);
  for (size_t i = 2; i < lines.size(); ++i) {
    std::vector<std::string> row = SplitTabs(lines[i]);
    if (static_cast<int64_t>(row.size()) != cols) {
      return Status::ParseError("frame row ", i - 2, " has ", row.size(),
                                " cells, expected ", cols);
    }
    out.cells.push_back(std::move(row));
  }
  // Row counts can disagree only when the sender truncated rendering
  // (.maxrows); shard traffic never does, so treat it as malformed.
  if (static_cast<int64_t>(out.cells.size()) != rows) {
    return Status::ParseError("frame body has ", out.cells.size(),
                              " rows, OK line says ", rows);
  }
  return out;
}

}  // namespace dl2sql::server
