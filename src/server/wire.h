/// \file wire.h
/// \brief The lindb line protocol: newline-delimited SQL in, framed TSV/JSON
/// rows or an error status out. Shared by lindb_server and lindb_client.
///
/// Response framing (one response per statement):
///   OK <nrows> <ncols>\n
///   <body: header + rows (tsv) or one JSON object line (json)>
///   END\n
/// or
///   ERR <code-name>: <message, newlines collapsed>\n
///   END\n
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "db/table.h"

namespace dl2sql::server {

enum class OutputFormat { kTsv, kJson };

/// "tsv"/"json" (case-insensitive) -> format; anything else fails.
Result<OutputFormat> ParseOutputFormat(const std::string& name);

/// Renders the result body (no framing). TSV: a header line of column names
/// then one line per row, cells escaped (\t, \n, \\). JSON: a single line
/// {"columns":[...],"rows":[[...],...]}. `max_rows` < 0 means all rows.
std::string RenderTable(const db::Table& table, OutputFormat format,
                        int64_t max_rows = -1);

/// Full framed success response for a result table.
std::string FormatOkResponse(const db::Table& table, OutputFormat format,
                             int64_t max_rows = -1);

/// Like FormatOkResponse, with trailer lines ("META\t<field>...") between the
/// body and END. Emitted only for trace-headed statements, so plain clients
/// never see trailers; field values are TSV-escaped, so a trailer line can
/// never contain the "\nEND\n" terminator.
std::string FormatOkResponseWithTrailer(
    const db::Table& table, OutputFormat format, int64_t max_rows,
    const std::vector<std::vector<std::string>>& meta);

/// Frames an already-rendered body (RenderTable output) with trailer lines —
/// lets the server measure the shipped body bytes without rendering twice.
std::string FrameOkBodyWithTrailer(
    int64_t rows, int64_t cols, const std::string& body,
    const std::vector<std::vector<std::string>>& meta);

/// Full framed error response. Must be called with a non-OK status.
std::string FormatErrorResponse(const Status& status);

/// \name Distributed trace propagation (coordinator -> shard)
/// @{

/// A shard statement line carrying the coordinator's trace context:
/// ".trace <trace_id hex> <parent_span_id hex> <sql>". One line, one round
/// trip; shards without the extension reject it as an unknown dot-command.
std::string FormatTraceStatement(uint64_t trace_id, uint64_t parent_span_id,
                                 const std::string& sql);

/// Parses a ".trace"-headed statement line. Returns false when `line` does
/// not start with ".trace " or the header is malformed.
bool ParseTraceStatement(const std::string& line, uint64_t* trace_id,
                         uint64_t* parent_span_id, std::string* sql);

/// Trailer line kinds shipped by a traced shard statement. A span meta line
/// carries one TraceEvent with `start_us` rebased to the statement start (the
/// coordinator re-rebases onto its own clock); a profile meta line carries
/// the statement's query-profile slot.
std::vector<std::string> SpanMetaFields(const TraceEvent& event);
bool ParseSpanMeta(const std::vector<std::string>& fields, TraceEvent* out);

/// Shard-side per-statement profile (the query-log record counters that
/// matter for cross-node cost attribution), shipped in the trailer.
struct WireProfile {
  int64_t rows = 0;            ///< result rows produced by the shard
  int64_t bytes = 0;           ///< response body bytes shipped back
  int64_t duration_us = 0;
  int64_t cpu_us = 0;
  int64_t admission_wait_us = 0;
  int64_t lock_wait_us = 0;
  int64_t pool_queue_wait_us = 0;
  int64_t mem_peak_bytes = 0;
  int64_t spill_bytes = 0;
  int64_t spill_partitions = 0;
  int64_t neural_calls = 0;
};
std::vector<std::string> ProfileMetaFields(const WireProfile& profile);
bool ParseProfileMeta(const std::vector<std::string>& fields,
                      WireProfile* out);

/// @}

/// \name Client-side frame parsing (ShardClient, tooling)
/// @{

/// Inverse of the TSV cell escaping applied by RenderTable (\t, \n, \r, \\).
std::string UnescapeTsv(const std::string& s);

/// One parsed frame. For "ERR" frames `error` carries the typed Status the
/// peer reported (so a shard's "Parse error" stays a parse error, distinct
/// from this side failing to parse the frame itself); for "OK" frames it is
/// OK and `rows` holds the OK line's row count (the affected-row count for
/// zero-column DML results) with the unescaped TSV body below.
struct WireResponse {
  Status error;
  int64_t rows = 0;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> cells;
  /// Trailer lines (unescaped fields), present only on traced statements.
  std::vector<std::vector<std::string>> meta;
  /// Raw size of the parsed frame — the exact bytes this response cost on
  /// the wire (per-shard transfer accounting).
  int64_t wire_bytes = 0;
};

/// Bytes of the complete framed response at the start of `buffer` (through
/// its "END\n" line), or 0 while the frame is still partial. Escaped cells
/// never contain a literal newline, so the END terminator is unambiguous.
size_t CompleteFrameLength(const std::string& buffer);

/// Parses one complete TSV-format frame. "ERR <code-name>: <message>" frames
/// reconstruct the typed Status the peer reported (StatusCodeFromString).
Result<WireResponse> ParseWireResponse(const std::string& framed);

/// @}

}  // namespace dl2sql::server
