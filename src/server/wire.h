/// \file wire.h
/// \brief The lindb line protocol: newline-delimited SQL in, framed TSV/JSON
/// rows or an error status out. Shared by lindb_server and lindb_client.
///
/// Response framing (one response per statement):
///   OK <nrows> <ncols>\n
///   <body: header + rows (tsv) or one JSON object line (json)>
///   END\n
/// or
///   ERR <code-name>: <message, newlines collapsed>\n
///   END\n
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/table.h"

namespace dl2sql::server {

enum class OutputFormat { kTsv, kJson };

/// "tsv"/"json" (case-insensitive) -> format; anything else fails.
Result<OutputFormat> ParseOutputFormat(const std::string& name);

/// Renders the result body (no framing). TSV: a header line of column names
/// then one line per row, cells escaped (\t, \n, \\). JSON: a single line
/// {"columns":[...],"rows":[[...],...]}. `max_rows` < 0 means all rows.
std::string RenderTable(const db::Table& table, OutputFormat format,
                        int64_t max_rows = -1);

/// Full framed success response for a result table.
std::string FormatOkResponse(const db::Table& table, OutputFormat format,
                             int64_t max_rows = -1);

/// Full framed error response. Must be called with a non-OK status.
std::string FormatErrorResponse(const Status& status);

/// \name Client-side frame parsing (ShardClient, tooling)
/// @{

/// Inverse of the TSV cell escaping applied by RenderTable (\t, \n, \r, \\).
std::string UnescapeTsv(const std::string& s);

/// One parsed frame. For "ERR" frames `error` carries the typed Status the
/// peer reported (so a shard's "Parse error" stays a parse error, distinct
/// from this side failing to parse the frame itself); for "OK" frames it is
/// OK and `rows` holds the OK line's row count (the affected-row count for
/// zero-column DML results) with the unescaped TSV body below.
struct WireResponse {
  Status error;
  int64_t rows = 0;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> cells;
};

/// Bytes of the complete framed response at the start of `buffer` (through
/// its "END\n" line), or 0 while the frame is still partial. Escaped cells
/// never contain a literal newline, so the END terminator is unambiguous.
size_t CompleteFrameLength(const std::string& buffer);

/// Parses one complete TSV-format frame. "ERR <code-name>: <message>" frames
/// reconstruct the typed Status the peer reported (StatusCodeFromString).
Result<WireResponse> ParseWireResponse(const std::string& framed);

/// @}

}  // namespace dl2sql::server
