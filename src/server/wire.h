/// \file wire.h
/// \brief The lindb line protocol: newline-delimited SQL in, framed TSV/JSON
/// rows or an error status out. Shared by lindb_server and lindb_client.
///
/// Response framing (one response per statement):
///   OK <nrows> <ncols>\n
///   <body: header + rows (tsv) or one JSON object line (json)>
///   END\n
/// or
///   ERR <code-name>: <message, newlines collapsed>\n
///   END\n
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "db/table.h"

namespace dl2sql::server {

enum class OutputFormat { kTsv, kJson };

/// "tsv"/"json" (case-insensitive) -> format; anything else fails.
Result<OutputFormat> ParseOutputFormat(const std::string& name);

/// Renders the result body (no framing). TSV: a header line of column names
/// then one line per row, cells escaped (\t, \n, \\). JSON: a single line
/// {"columns":[...],"rows":[[...],...]}. `max_rows` < 0 means all rows.
std::string RenderTable(const db::Table& table, OutputFormat format,
                        int64_t max_rows = -1);

/// Full framed success response for a result table.
std::string FormatOkResponse(const db::Table& table, OutputFormat format,
                             int64_t max_rows = -1);

/// Full framed error response. Must be called with a non-OK status.
std::string FormatErrorResponse(const Status& status);

}  // namespace dl2sql::server
