#include "server/admission.h"

#include <algorithm>
#include <chrono>

#include "common/metrics.h"
#include "common/timer.h"

namespace dl2sql::server {

namespace {

struct AdmissionMetrics {
  Counter* admitted;
  Counter* rejected_queue_full;
  Counter* rejected_timeout;
  Gauge* queue_depth;
  Gauge* running;
  Histogram* queue_us;

  static const AdmissionMetrics& Get() {
    static const AdmissionMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      AdmissionMetrics out;
      out.admitted = r.counter("server.admitted");
      out.rejected_queue_full = r.counter("server.rejected_queue_full");
      out.rejected_timeout = r.counter("server.rejected_timeout");
      out.queue_depth = r.gauge("server.queue_depth");
      out.running = r.gauge("server.running");
      out.queue_us = r.histogram("server.queue_us");
      return out;
    }();
    return m;
  }
};

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

Status AdmissionController::Admit() {
  const AdmissionMetrics& m = AdmissionMetrics::Get();
  std::unique_lock<std::mutex> lock(mu_);
  // The queue bound applies only to callers that would actually wait: with
  // a free slot and nobody ahead, admission is immediate even at depth 0.
  const bool must_wait =
      !waiting_.empty() || running_ >= options_.max_concurrent;
  if (must_wait &&
      static_cast<int>(waiting_.size()) >= std::max(0, options_.max_queue_depth)) {
    m.rejected_queue_full->Increment();
    return Status::ResourceExhausted(
        "admission queue full (", waiting_.size(), " waiting, cap ",
        options_.max_queue_depth, "); retry later");
  }
  const uint64_t my = next_ticket_++;
  waiting_.push_back(my);
  m.queue_depth->Set(static_cast<double>(waiting_.size()));

  Stopwatch watch;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              std::max(0.0, options_.queue_timeout_ms)));
  const bool got = cv_.wait_until(lock, deadline, [&] {
    return waiting_.front() == my && running_ < options_.max_concurrent;
  });

  waiting_.erase(std::find(waiting_.begin(), waiting_.end(), my));
  m.queue_depth->Set(static_cast<double>(waiting_.size()));
  m.queue_us->Record(watch.ElapsedMicros());
  if (!got) {
    // Leaving the queue may unblock the waiter behind us.
    cv_.notify_all();
    m.rejected_timeout->Increment();
    return Status::ResourceExhausted("admission timed out after ",
                                     options_.queue_timeout_ms,
                                     " ms in queue; retry later");
  }
  ++running_;
  m.running->Set(static_cast<double>(running_));
  m.admitted->Increment();
  // The next waiter may also fit under the concurrency cap.
  cv_.notify_all();
  return Status::OK();
}

void AdmissionController::Release() {
  const AdmissionMetrics& m = AdmissionMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  --running_;
  m.running->Set(static_cast<double>(running_));
  cv_.notify_all();
}

int AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

Result<AdmissionController::Ticket> AdmissionController::AdmitTicket() {
  DL2SQL_RETURN_NOT_OK(Admit());
  return Ticket(this);
}

}  // namespace dl2sql::server
