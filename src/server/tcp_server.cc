#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace dl2sql::server {

namespace {

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// One-shot HTTP for plain "GET <path> HTTP/1.x" request lines on the SQL
/// port. /metrics answers with the Prometheus text exposition of the global
/// registry — on a coordinator the distributed executor appends shard-labeled
/// series federated from each shard (best effort). Everything else is a 404.
/// The response always closes the connection, so trailing request headers can
/// be ignored.
std::string HttpResponseFor(const std::string& request_line,
                            QueryService* service) {
  std::string path = Trim(request_line.substr(4));
  const size_t space = path.find(' ');
  if (space != std::string::npos) path = path.substr(0, space);

  std::string status;
  std::string content_type;
  std::string body;
  if (path == "/metrics") {
    status = "200 OK";
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = MetricsRegistry::ToPrometheusText(MetricsRegistry::Global().Snapshot());
    if (DistributedExecutor* dist = service->distributed_executor()) {
      body += dist->FederatedMetricsText();
    }
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found (try /metrics)\n";
  }
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 " + status + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

/// Executes a ".trace"-headed statement (coordinator traffic) and frames the
/// response with the profile/span trailer the coordinator folds into its
/// cross-node timeline. Span shipping needs the local collector enabled
/// (DL2SQL_TRACE=on); the profile line ships whenever introspection is on.
std::string ServeTracedStatement(Session* session, uint64_t trace_id,
                                 uint64_t parent_span_id,
                                 const std::string& sql) {
  const int64_t stmt_start_us = TraceCollector::NowMicros();
  db::QueryLogRecord rec;
  auto result = session->ExecuteTraced(
      sql, TraceContext{trace_id, parent_span_id}, &rec);
  if (!result.ok()) return FormatErrorResponse(result.status());

  const std::string body =
      RenderTable(*result, session->settings().format,
                  session->settings().render_max_rows);
  std::vector<std::vector<std::string>> meta;
  WireProfile prof;
  prof.rows = result->num_rows();
  prof.bytes = static_cast<int64_t>(body.size());
  prof.duration_us = rec.duration_us;
  prof.cpu_us = rec.cpu_us;
  prof.admission_wait_us = rec.admission_wait_us;
  prof.lock_wait_us = rec.lock_wait_us;
  prof.pool_queue_wait_us = rec.pool_queue_wait_us;
  prof.mem_peak_bytes = rec.mem_peak_bytes;
  prof.spill_bytes = rec.spill_bytes;
  prof.spill_partitions = rec.spill_partitions;
  prof.neural_calls = rec.neural_calls;
  meta.push_back(ProfileMetaFields(prof));

  TraceCollector& collector = TraceCollector::Global();
  if (collector.enabled()) {
    // Spans ship with start times relative to the statement start; the
    // coordinator rebases them onto its own clock (trace epochs are
    // per-process). Cap the trailer so a pathological span storm cannot
    // balloon the frame.
    constexpr size_t kMaxShippedSpans = 1024;
    std::vector<TraceEvent> spans =
        collector.SnapshotTrace(trace_id, stmt_start_us);
    if (spans.size() > kMaxShippedSpans) spans.resize(kMaxShippedSpans);
    for (TraceEvent& e : spans) {
      e.start_us -= stmt_start_us;
      meta.push_back(SpanMetaFields(e));
    }
  }
  return FrameOkBodyWithTrailer(result->num_rows(), result->num_columns(),
                                body, meta);
}

}  // namespace

TcpServer::TcpServer(QueryService* service, TcpServerOptions options)
    : service_(service), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket(): ", std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '", options_.host, "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError("bind(", options_.host, ":", options_.port,
                           "): ", std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IoError("listen(): ", std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  accept_thread_ = std::thread([this, fd = listen_fd_] { AcceptLoop(fd); });
  DL2SQL_LOG(Info) << "lindb server listening on " << options_.host << ":"
                   << port_;
  return Status::OK();
}

void TcpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    if (listen_fd_ >= 0) {
      // shutdown() wakes the blocked accept(); close() alone does not on all
      // platforms.
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::AcceptLoop(int listen_fd) {
  static Counter* const connections =
      MetricsRegistry::Global().counter("server.connections");
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // listen socket closed by Stop()
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      conn_fds_.insert(fd);
      conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
    }
    connections->Increment();
  }
}

void TcpServer::ServeConnection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::shared_ptr<Session> session = service_->CreateSession();

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t nl;
    while (open && (nl = buffer.find('\n')) != std::string::npos) {
      std::string line = Trim(buffer.substr(0, nl));
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      if (StartsWith(line, "GET ")) {
        // A curl/Prometheus scrape landed on the SQL port: answer the one
        // request over HTTP and close, ignoring the remaining headers.
        SendAll(fd, HttpResponseFor(line, service_));
        open = false;
        break;
      }
      if (line[0] == '.') {
        if (line == ".quit") {
          SendAll(fd, "OK 0 0\nEND\n");
          open = false;
          break;
        }
        if (line == ".ping") {
          open = SendAll(fd, "OK 0 0\nEND\n");
          continue;
        }
        if (line == ".sys" || StartsWith(line, ".sys ")) {
          const std::string arg =
              line.size() > 4 ? Trim(line.substr(5)) : std::string();
          if (arg.empty()) {
            // List the registered system tables without going through SQL.
            db::TableSchema schema({{"name", db::DataType::kString}});
            db::Table listing{schema};
            Status st = Status::OK();
            for (const std::string& name :
                 service_->database()->catalog().VirtualTableNames()) {
              st = listing.AppendRow({db::Value::String(name)});
              if (!st.ok()) break;
            }
            open = SendAll(
                fd, st.ok() ? FormatOkResponse(listing,
                                               session->settings().format,
                                               session->settings().render_max_rows)
                            : FormatErrorResponse(st));
            continue;
          }
          const std::string table =
              StartsWith(arg, "system.") ? arg : "system." + arg;
          auto result = session->Execute("SELECT * FROM " + table);
          open = SendAll(
              fd, result.ok()
                      ? FormatOkResponse(*result, session->settings().format,
                                         session->settings().render_max_rows)
                      : FormatErrorResponse(result.status()));
          continue;
        }
        {
          // ".trace <id> <parent> <sql>": a coordinator-propagated statement.
          uint64_t trace_id = 0;
          uint64_t parent_span_id = 0;
          std::string traced_sql;
          if (ParseTraceStatement(line, &trace_id, &parent_span_id,
                                  &traced_sql)) {
            open = SendAll(fd, ServeTracedStatement(session.get(), trace_id,
                                                    parent_span_id,
                                                    traced_sql));
            continue;
          }
        }
        if (StartsWith(line, ".analyze ")) {
          // EXPLAIN ANALYZE; statements on sharded tables route through the
          // distributed executor, which appends the per-shard footer.
          const std::string sql = Trim(line.substr(9));
          auto text = [&]() -> Result<std::string> {
            DL2SQL_ASSIGN_OR_RETURN(db::Statement stmt,
                                    db::sql::ParseStatement(sql));
            DistributedExecutor* const dist = service_->distributed_executor();
            if (dist != nullptr && dist->Handles(stmt)) {
              return dist->ExplainAnalyze(stmt, sql);
            }
            return service_->database()->ExplainAnalyze(sql);
          }();
          if (!text.ok()) {
            open = SendAll(fd, FormatErrorResponse(text.status()));
            continue;
          }
          db::TableSchema schema({{"plan", db::DataType::kString}});
          db::Table plan_table{schema};
          Status st = Status::OK();
          std::istringstream lines_in(*text);
          for (std::string plan_line; std::getline(lines_in, plan_line);) {
            st = plan_table.AppendRow({db::Value::String(plan_line)});
            if (!st.ok()) break;
          }
          open = SendAll(
              fd, st.ok() ? FormatOkResponse(plan_table,
                                             session->settings().format, -1)
                          : FormatErrorResponse(st));
          continue;
        }
        if (StartsWith(line, ".ctrace ")) {
          // Writes the (cluster-merged, on a coordinator) Chrome trace file.
          const std::string path = Trim(line.substr(8));
          DistributedExecutor* const dist = service_->distributed_executor();
          const Status st =
              dist != nullptr
                  ? dist->WriteClusterTrace(path)
                  : TraceCollector::Global().WriteChromeTrace(path);
          open = SendAll(fd, st.ok() ? "OK 0 0\nEND\n"
                                     : FormatErrorResponse(st));
          continue;
        }
        if (StartsWith(line, ".format ")) {
          auto format = ParseOutputFormat(Trim(line.substr(8)));
          if (format.ok()) {
            session->settings().format = *format;
            open = SendAll(fd, "OK 0 0\nEND\n");
          } else {
            open = SendAll(fd, FormatErrorResponse(format.status()));
          }
          continue;
        }
        open = SendAll(fd, FormatErrorResponse(Status::InvalidArgument(
                               "unknown command '", line, "'")));
        continue;
      }
      auto result = session->Execute(line);
      std::string response =
          result.ok()
              ? FormatOkResponse(*result, session->settings().format,
                                 session->settings().render_max_rows)
              : FormatErrorResponse(result.status());
      open = SendAll(fd, response);
    }
  }

  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  conn_fds_.erase(fd);
}

}  // namespace dl2sql::server
