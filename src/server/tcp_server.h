/// \file tcp_server.h
/// \brief Minimal TCP line-protocol front end for a QueryService.
///
/// One accept thread plus one thread per connection; each connection gets its
/// own Session. Requests are newline-delimited SQL statements (or meta
/// commands starting with '.'); responses use the framing in wire.h. A line
/// starting with "GET " instead gets a one-shot HTTP response — "GET
/// /metrics" serves the Prometheus text exposition of the global metrics
/// registry, so `curl http://host:port/metrics` works against the SQL port.
/// ".sys" lists the system.* tables; ".sys <name>" scans one. Stop() shuts
/// every socket down and joins all threads, so SIGTERM handling in
/// lindb_server is just "call Stop and return".
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/session.h"

namespace dl2sql::server {

struct TcpServerOptions {
  /// Loopback by default: this is a benchmark/example server, not a hardened
  /// network daemon.
  std::string host = "127.0.0.1";
  /// 0 = pick a free port (read it back with port()).
  int port = 0;
};

class TcpServer {
 public:
  TcpServer(QueryService* service, TcpServerOptions options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Idempotent: closes the listen socket, shuts down live connections, and
  /// joins every thread.
  void Stop();

  /// The bound port (valid after Start()).
  int port() const { return port_; }

 private:
  /// Runs on accept_thread_; takes the fd by value so Stop() can close and
  /// null the member without racing this thread's reads.
  void AcceptLoop(int listen_fd);
  void ServeConnection(int fd);

  QueryService* const service_;
  const TcpServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;
  bool stopping_ = false;
  std::set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace dl2sql::server
