#include "common/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace dl2sql {

void Histogram::Record(int64_t micros) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
  int bucket = 0;
  // Bucket i covers (2^(i-1), 2^i] micros; everything past the last bound
  // lands in the +inf bucket.
  int64_t bound = 1;
  while (bucket < kNumBuckets - 1 && micros > bound) {
    bound <<= 1;
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

int64_t Histogram::BucketBoundMicros(int i) {
  if (i >= kNumBuckets - 1) return -1;
  return int64_t{1} << i;
}

int64_t Histogram::ApproxQuantileMicros(double q) const {
  const int64_t total = count();
  if (total == 0) return 0;
  const int64_t target = static_cast<int64_t>(q * static_cast<double>(total));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += bucket_count(i);
    if (seen > target) return BucketBoundMicros(i);
  }
  return BucketBoundMicros(kNumBuckets - 1);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // std::map: stable addresses, deterministic JSON ordering.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + std::to_string(c->value());
  }
  out += "}, \"gauges\": {";
  first = true;
  char buf[48];
  for (const auto& [name, g] : impl_->gauges) {
    if (!first) out += ", ";
    first = false;
    std::snprintf(buf, sizeof(buf), "%.6g", g->value());
    out += "\"" + name + "\": " + buf;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": {\"count\": " + std::to_string(h->count()) +
           ", \"sum_us\": " + std::to_string(h->sum_micros()) +
           ", \"p50_us\": " + std::to_string(h->ApproxQuantileMicros(0.5)) +
           ", \"p99_us\": " + std::to_string(h->ApproxQuantileMicros(0.99)) +
           "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [_, c] : impl_->counters) c->Reset();
  for (auto& [_, g] : impl_->gauges) g->Reset();
  for (auto& [_, h] : impl_->histograms) h->Reset();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> names;
  names.reserve(impl_->counters.size());
  for (const auto& [name, _] : impl_->counters) names.push_back(name);
  return names;
}

}  // namespace dl2sql
