#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace dl2sql {

void Histogram::Record(int64_t micros) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
  int bucket = 0;
  // Bucket i covers (2^(i-1), 2^i] micros; everything past the last bound
  // lands in the +inf bucket.
  int64_t bound = 1;
  while (bucket < kNumBuckets - 1 && micros > bound) {
    bound <<= 1;
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

int64_t Histogram::BucketBoundMicros(int i) {
  if (i >= kNumBuckets - 1) return -1;
  return int64_t{1} << i;
}

int64_t Histogram::ApproxQuantileMicros(double q) const {
  int64_t snapshot[kNumBuckets];
  for (int i = 0; i < kNumBuckets; ++i) snapshot[i] = bucket_count(i);
  return QuantileFromBuckets(snapshot, q);
}

int64_t Histogram::QuantileFromBuckets(const int64_t (&buckets)[kNumBuckets],
                                       double q) {
  int64_t total = 0;
  for (int64_t b : buckets) total += b;
  if (total == 0) return 0;
  const int64_t target = static_cast<int64_t>(q * static_cast<double>(total));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen > target) return BucketBoundMicros(i);
  }
  return BucketBoundMicros(kNumBuckets - 1);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // std::map: stable addresses, deterministic JSON ordering.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  MetricsSnapshot snap;
  for (const auto& [name, c] : impl_->counters) snap.counters[name] = c->value();
  for (const auto& [name, g] : impl_->gauges) snap.gauges[name] = g->value();
  for (const auto& [name, h] : impl_->histograms) {
    auto& data = snap.histograms[name];
    data.count = h->count();
    data.sum_micros = h->sum_micros();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      data.buckets[i] = h->bucket_count(i);
    }
  }
  return snap;
}

MetricsSnapshot MetricsRegistry::SnapshotDelta(const MetricsSnapshot& before,
                                               const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, v] : after.counters) {
    auto it = before.counters.find(name);
    delta.counters[name] = v - (it == before.counters.end() ? 0 : it->second);
  }
  delta.gauges = after.gauges;
  for (const auto& [name, h] : after.histograms) {
    auto& d = delta.histograms[name];
    auto it = before.histograms.find(name);
    if (it == before.histograms.end()) {
      d = h;
      continue;
    }
    d.count = h.count - it->second.count;
    d.sum_micros = h.sum_micros - it->second.sum_micros;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      d.buckets[i] = h.buckets[i] - it->second.buckets[i];
    }
  }
  return delta;
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted names
// ("nudf.cache.hits") map onto underscores.
std::string SanitizePrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = (c >= '0' && c <= '9');
    if (alpha || c == '_' || (digit && i > 0)) {
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "_";
  return out;
}

}  // namespace

std::string MetricsRegistry::SanitizeName(const std::string& name) {
  return SanitizePrometheusName(name);
}

std::string MetricsRegistry::ToPrometheusText(const MetricsSnapshot& snap) {
  std::string out;
  char buf[64];
  for (const auto& [name, v] : snap.counters) {
    const std::string pname = SanitizePrometheusName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string pname = SanitizePrometheusName(name);
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + buf + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string pname = SanitizePrometheusName(name);
    out += "# TYPE " + pname + " histogram\n";
    int64_t cumulative = 0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      cumulative += h.buckets[i];
      const int64_t bound = Histogram::BucketBoundMicros(i);
      if (bound < 0) break;  // +inf bucket rendered below from the count
      out += pname + "_bucket{le=\"" + std::to_string(bound) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += pname + "_sum " + std::to_string(h.sum_micros) + "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + std::to_string(c->value());
  }
  out += "}, \"gauges\": {";
  first = true;
  char buf[48];
  for (const auto& [name, g] : impl_->gauges) {
    if (!first) out += ", ";
    first = false;
    std::snprintf(buf, sizeof(buf), "%.6g", g->value());
    out += "\"" + name + "\": " + buf;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": {\"count\": " + std::to_string(h->count()) +
           ", \"sum_us\": " + std::to_string(h->sum_micros()) +
           ", \"p50_us\": " + std::to_string(h->ApproxQuantileMicros(0.5)) +
           ", \"p99_us\": " + std::to_string(h->ApproxQuantileMicros(0.99)) +
           "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [_, c] : impl_->counters) c->Reset();
  for (auto& [_, g] : impl_->gauges) g->Reset();
  for (auto& [_, h] : impl_->histograms) h->Reset();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> names;
  names.reserve(impl_->counters.size());
  for (const auto& [name, _] : impl_->counters) names.push_back(name);
  return names;
}

}  // namespace dl2sql
