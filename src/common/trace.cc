#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

namespace dl2sql {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Process-wide trace epoch: first touch of the collector.
SteadyClock::time_point TraceEpoch() {
  static const SteadyClock::time_point epoch = SteadyClock::now();
  return epoch;
}

std::atomic<int32_t> g_next_thread_id{0};

/// Escapes a string for embedding inside a JSON string literal.
void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

/// A thread's event buffer. The owning thread appends under `mu`; since only
/// snapshot/clear ever contend, the lock is uncontended on the hot path.
struct ThreadTraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

struct TraceCollector::Impl {
  std::atomic<bool> enabled{false};
  std::mutex registry_mu;
  /// Owned forever (threads may outlive interest in their buffers; a few KB
  /// per thread is cheaper than lifetime bookkeeping).
  std::vector<ThreadTraceBuffer*> buffers;

  ThreadTraceBuffer* BufferForThisThread() {
    thread_local ThreadTraceBuffer* tls_buffer = nullptr;
    if (tls_buffer == nullptr) {
      tls_buffer = new ThreadTraceBuffer();
      std::lock_guard<std::mutex> lock(registry_mu);
      buffers.push_back(tls_buffer);
    }
    return tls_buffer;
  }
};

TraceCollector::TraceCollector() : impl_(new Impl()) { (void)TraceEpoch(); }

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();  // leaked singleton
  return *collector;
}

void TraceCollector::SetEnabled(bool enabled) {
  impl_->enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceCollector::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(impl_->registry_mu);
  for (ThreadTraceBuffer* b : impl_->buffers) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->events.clear();
  }
}

void TraceCollector::Record(TraceEvent event) {
  ThreadTraceBuffer* b = impl_->BufferForThisThread();
  std::lock_guard<std::mutex> lock(b->mu);
  b->events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceCollector::SnapshotTrace(
    uint64_t trace_id, int64_t min_start_us) const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(impl_->registry_mu);
    for (ThreadTraceBuffer* b : impl_->buffers) {
      std::lock_guard<std::mutex> bl(b->mu);
      for (const TraceEvent& e : b->events) {
        if (e.trace_id == trace_id && e.start_us >= min_start_us) {
          out.push_back(e);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(impl_->registry_mu);
    for (ThreadTraceBuffer* b : impl_->buffers) {
      std::lock_guard<std::mutex> bl(b->mu);
      out.insert(out.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

int64_t TraceCollector::EventCount() const {
  int64_t n = 0;
  std::lock_guard<std::mutex> lock(impl_->registry_mu);
  for (ThreadTraceBuffer* b : impl_->buffers) {
    std::lock_guard<std::mutex> bl(b->mu);
    n += static_cast<int64_t>(b->events.size());
  }
  return n;
}

std::string TraceCollector::ChromeTraceJson(
    const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[192];
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    AppendJsonEscaped(e.name, &out);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(e.category, &out);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%lld,\"dur\":%lld,\"pid\":%d,"
                  "\"tid\":%d",
                  static_cast<long long>(e.start_us),
                  static_cast<long long>(e.duration_us), e.pid, e.tid);
    out += buf;
    out += ",\"args\":{\"depth\":" + std::to_string(e.depth);
    if (e.trace_id != 0) {
      std::snprintf(buf, sizeof(buf), ",\"trace_id\":\"%016llx\"",
                    static_cast<unsigned long long>(e.trace_id));
      out += buf;
    }
    if (!e.args.empty()) {
      out += ",";
      out += e.args;
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string TraceCollector::ToChromeTraceJson() const {
  return ChromeTraceJson(Snapshot());
}

Status TraceCollector::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output file ", path);
  }
  const std::string json = ToChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to trace output file ", path);
  }
  return Status::OK();
}

std::string TraceCollector::SummaryJson() const {
  struct Agg {
    int64_t count = 0;
    int64_t total_us = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : Snapshot()) {
    Agg& a = by_name[e.name];
    ++a.count;
    a.total_us += e.duration_us;
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [name, agg] : by_name) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    AppendJsonEscaped(name, &out);
    out += "\": {\"count\": " + std::to_string(agg.count) +
           ", \"total_us\": " + std::to_string(agg.total_us) + "}";
  }
  out += "}";
  return out;
}

std::vector<TraceCollector::SpanSummary> TraceCollector::Summary() const {
  std::map<std::string, SpanSummary> by_name;
  for (const TraceEvent& e : Snapshot()) {
    SpanSummary& s = by_name[e.name];
    s.name = e.name;
    ++s.count;
    s.total_us += e.duration_us;
    s.max_us = std::max(s.max_us, e.duration_us);
  }
  std::vector<SpanSummary> out;
  out.reserve(by_name.size());
  for (auto& [_, s] : by_name) out.push_back(std::move(s));
  return out;
}

int64_t TraceCollector::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             SteadyClock::now() - TraceEpoch())
      .count();
}

int32_t TraceCollector::CurrentThreadId() {
  thread_local int32_t tls_tid = g_next_thread_id.fetch_add(1);
  return tls_tid;
}

namespace internal {

namespace {
thread_local int32_t tls_trace_depth = 0;
}  // namespace

int32_t TraceDepth() { return tls_trace_depth; }

}  // namespace internal

namespace {
thread_local TraceContext tls_trace_context;
}  // namespace

TraceContext CurrentTraceContext() { return tls_trace_context; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : prev_(tls_trace_context) {
  tls_trace_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { tls_trace_context = prev_; }

TraceSpan::TraceSpan(const char* category, std::string name, std::string args)
    : active_(TraceCollector::Global().enabled()) {
  if (!active_) return;
  category_ = category;
  name_ = std::move(name);
  args_ = std::move(args);
  depth_ = internal::tls_trace_depth++;
  start_us_ = TraceCollector::NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  --internal::tls_trace_depth;
  TraceEvent e;
  e.name = std::move(name_);
  e.category = category_;
  e.args = std::move(args_);
  e.start_us = start_us_;
  e.duration_us = TraceCollector::NowMicros() - start_us_;
  e.tid = TraceCollector::CurrentThreadId();
  e.depth = depth_;
  e.trace_id = tls_trace_context.trace_id;
  TraceCollector::Global().Record(e);
}

}  // namespace dl2sql
