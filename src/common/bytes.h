/// \file bytes.h
/// \brief Little-endian binary buffer writer/reader used by the model
/// serializer (loose-integration "compiled blob") and the storage codecs.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"

namespace dl2sql {

/// \brief Appends POD values and length-prefixed strings to a byte string.
class BufferWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

  /// u32 length prefix + bytes.
  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteRaw(s.data(), s.size());
  }

  void WriteFloats(const float* data, size_t n) {
    WriteU64(n);
    WriteRaw(data, n * sizeof(float));
  }

  void WriteRaw(const void* data, size_t n) {
    const char* p = static_cast<const char*>(data);
    buf_.append(p, n);
  }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// \brief Sequential reader over a byte string with bounds checking.
class BufferReader {
 public:
  explicit BufferReader(const std::string& data) : data_(data) {}

  Result<uint8_t> ReadU8() {
    DL2SQL_RETURN_NOT_OK(Check(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> ReadU32() { return ReadPod<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadPod<uint64_t>(); }
  Result<int64_t> ReadI64() { return ReadPod<int64_t>(); }
  Result<float> ReadF32() { return ReadPod<float>(); }
  Result<double> ReadF64() { return ReadPod<double>(); }

  Result<std::string> ReadString() {
    DL2SQL_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    DL2SQL_RETURN_NOT_OK(Check(n));
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  Result<std::vector<float>> ReadFloats() {
    DL2SQL_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
    DL2SQL_RETURN_NOT_OK(Check(n * sizeof(float)));
    std::vector<float> out(n);
    std::memcpy(out.data(), data_.data() + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return out;
  }

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }

 private:
  template <typename T>
  Result<T> ReadPod() {
    DL2SQL_RETURN_NOT_OK(Check(sizeof(T)));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  Status Check(size_t n) const {
    if (pos_ + n > data_.size()) {
      return Status::OutOfRange("buffer underflow: need ", n, " bytes at ", pos_,
                                ", have ", data_.size());
    }
    return Status::OK();
  }

  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace dl2sql
