#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <sstream>

namespace dl2sql {

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string piece;
  std::istringstream iss(s);
  while (std::getline(iss, piece, delim)) out.push_back(piece);
  if (!s.empty() && s.back() == delim) out.push_back("");
  return out;
}

std::string Join(const std::vector<std::string>& pieces, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string FormatDouble(double v, int digits) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(digits);
  oss << v;
  return oss.str();
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(unit == 0 ? 0 : 1);
  oss << v << " " << kUnits[unit];
  return oss.str();
}

}  // namespace dl2sql
