/// \file random.h
/// \brief Deterministic PRNG utilities; every stochastic component in the repo
/// takes an explicit seed so experiments are reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace dl2sql {

/// \brief Thin wrapper around a 64-bit Mersenne Twister with convenience
/// distributions used by the workload generator and weight initializers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
  }

  float UniformFloat(float lo, float hi) {
    std::uniform_real_distribution<float> d(lo, hi);
    return d(gen_);
  }

  /// Standard normal scaled by `stddev`.
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(gen_);
  }

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(gen_);
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t Categorical(const std::vector<double>& weights) {
    std::discrete_distribution<size_t> d(weights.begin(), weights.end());
    return d(gen_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace dl2sql
