/// \file mem_tracker.h
/// \brief Hierarchical per-query memory accounting.
///
/// The paper's comparison hinges on *where* each in-database inference
/// approach spends its resources (relation materialization size, UDF
/// invocation cost, batch amortization). A MemTracker tree attributes every
/// large allocation to the query/operator that made it:
///
///   process                      (root, MemTracker::Process())
///   ├── session-<id>             (owned by server::Session)
///   │   └── query-<seq>          (per ExecuteStatementRecorded call)
///   │       ├── op.join          (per-PlanKind operator trackers)
///   │       └── op.aggregate
///   ├── cache.<name>             (ShardedLruCache entry charges)
///   ├── catalog                  (Table/Column storage)
///   └── exec.arena               (pooled VectorBatch buffers)
///
/// Consume/Release walk the parent chain with relaxed atomics (a handful of
/// fetch_adds per charge); peak is maintained with a CAS-max. TryConsume
/// additionally checks each ancestor's optional hard limit and returns
/// ResourceExhausted naming the offending tracker — it never aborts, so a
/// budget overrun is an ordinary query error (the ROADMAP's out-of-core item
/// turns exactly this failure into a spill).
///
/// Gate semantics mirror the trace/vector switches: `DL2SQL_MEM_TRACKER=OFF`
/// in the environment (or `-DDL2SQL_MEM_TRACKER=OFF` at configure time, which
/// defines DL2SQL_MEM_TRACKER_DISABLED) turns the whole resource-accounting
/// layer — memory charges AND the CPU/wait-state sampling that keys off
/// MemTracker::Enabled() — into a single relaxed atomic load per call site.
/// Accounting must never change query results; the bit-identity test pins
/// that, and bench/profile_overhead.cc pins the <5% overhead budget.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace dl2sql {

/// CPU nanoseconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID);
/// 0 where the clock is unavailable. Deltas of this around an execution region
/// are the "cpu" half of the per-query cpu-vs-wait attribution.
int64_t ThreadCpuNanos();

/// \brief One node in the memory-accounting tree. Thread-safe.
///
/// A tracker's `consumption` includes everything charged to it and to its
/// descendants (charges propagate up at Consume time, so reading any node is
/// one relaxed load). The destructor releases outstanding consumption from
/// every ancestor, so a leaked charge is bounded by its tracker's lifetime.
class MemTracker {
 public:
  /// `limit_bytes` <= 0 means unlimited. `parent` must outlive this tracker.
  explicit MemTracker(std::string label, MemTracker* parent = nullptr,
                      int64_t limit_bytes = 0);
  ~MemTracker();

  MemTracker(const MemTracker&) = delete;
  MemTracker& operator=(const MemTracker&) = delete;

  /// Process-wide root tracker (leaked singleton, like TraceCollector).
  static MemTracker* Process();

  /// Runtime gate for the whole resource-accounting layer. Initialized once
  /// from the DL2SQL_MEM_TRACKER env var (OFF/off/0 disable); always false
  /// when compiled out. A disabled tracker still exists — charges are no-ops.
  static bool Enabled();

  /// Flips the runtime gate (tests and the overhead bench). No-op when the
  /// layer is compiled out with -DDL2SQL_MEM_TRACKER=OFF.
  static void SetEnabled(bool enabled);

  /// Charges `bytes` to this tracker and every ancestor, ignoring limits.
  /// Negative values release. No-op when the gate is off.
  void Consume(int64_t bytes);

  /// Releases `bytes` (asymmetric name for call-site readability).
  void Release(int64_t bytes) { Consume(-bytes); }

  /// Charges `bytes` if no ancestor's hard limit would be exceeded; on
  /// overrun, charges nothing and returns ResourceExhausted naming the
  /// limited tracker, its limit, and current consumption. OK when disabled.
  Status TryConsume(int64_t bytes);

  /// Bytes currently charged to this tracker (includes descendants).
  int64_t consumption() const {
    return consumption_.load(std::memory_order_relaxed);
  }

  /// High-water mark of consumption() over this tracker's lifetime.
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Total bytes ever charged (sum of positive charges; never decreases).
  int64_t cumulative() const {
    return cumulative_.load(std::memory_order_relaxed);
  }

  int64_t limit_bytes() const { return limit_bytes_; }
  const std::string& label() const { return label_; }
  MemTracker* parent() const { return parent_; }

 private:
  void ConsumeLocal(int64_t bytes);

  const std::string label_;
  MemTracker* const parent_;
  const int64_t limit_bytes_;
  std::atomic<int64_t> consumption_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> cumulative_{0};
};

/// \brief RAII charge against one tracker: releases whatever was charged on
/// destruction. For transient operator state (join build sides, aggregation
/// hash tables) whose lifetime is a lexical scope.
class ScopedMemCharge {
 public:
  explicit ScopedMemCharge(MemTracker* tracker) : tracker_(tracker) {}
  ~ScopedMemCharge() {
    if (tracker_ != nullptr && charged_ != 0) tracker_->Release(charged_);
  }

  ScopedMemCharge(const ScopedMemCharge&) = delete;
  ScopedMemCharge& operator=(const ScopedMemCharge&) = delete;

  /// Limit-checked charge; on ResourceExhausted nothing is charged.
  Status Charge(int64_t bytes) {
    if (tracker_ == nullptr || bytes == 0) return Status::OK();
    Status s = tracker_->TryConsume(bytes);
    if (s.ok()) charged_ += bytes;
    return s;
  }

  /// Unchecked charge (metrics-only call sites).
  void Add(int64_t bytes) {
    if (tracker_ == nullptr || bytes == 0) return;
    tracker_->Consume(bytes);
    charged_ += bytes;
  }

  int64_t charged() const { return charged_; }

 private:
  MemTracker* tracker_;
  int64_t charged_ = 0;
};

/// \brief Batches many small charges into few tracker updates.
///
/// Fine-grained allocators (BatchArena buffer growth) would otherwise pay a
/// parent-chain walk per vector resize; this accumulates locally and flushes
/// to the tracker only when the pending delta crosses `flush_bytes`. The
/// destructor flushes the remainder and releases everything charged.
class BatchedMemCharge {
 public:
  explicit BatchedMemCharge(MemTracker* tracker,
                            int64_t flush_bytes = 64 * 1024)
      : tracker_(tracker), flush_bytes_(flush_bytes) {}
  ~BatchedMemCharge() {
    if (tracker_ == nullptr) return;
    if (pending_ != 0) Flush();
    if (charged_ != 0) tracker_->Release(charged_);
  }

  BatchedMemCharge(const BatchedMemCharge&) = delete;
  BatchedMemCharge& operator=(const BatchedMemCharge&) = delete;

  void Add(int64_t bytes) {
    if (tracker_ == nullptr || bytes == 0) return;
    pending_ += bytes;
    if (pending_ >= flush_bytes_ || pending_ <= -flush_bytes_) Flush();
  }

  void Flush() {
    if (tracker_ == nullptr || pending_ == 0) return;
    tracker_->Consume(pending_);
    charged_ += pending_;
    pending_ = 0;
  }

 private:
  MemTracker* tracker_;
  const int64_t flush_bytes_;
  int64_t pending_ = 0;
  int64_t charged_ = 0;
};

}  // namespace dl2sql
