#include "common/mem_tracker.h"

#include <ctime>
#include <cstdlib>
#include <cstring>

namespace dl2sql {

int64_t ThreadCpuNanos() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
#else
  return 0;
#endif
}

namespace {

bool DefaultEnabled() {
#if defined(DL2SQL_MEM_TRACKER_DISABLED)
  return false;
#else
  const char* env = std::getenv("DL2SQL_MEM_TRACKER");
  if (env != nullptr && (std::strcmp(env, "OFF") == 0 ||
                         std::strcmp(env, "off") == 0 ||
                         std::strcmp(env, "0") == 0)) {
    return false;
  }
  return true;
#endif
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{DefaultEnabled()};
  return enabled;
}

}  // namespace

MemTracker::MemTracker(std::string label, MemTracker* parent,
                       int64_t limit_bytes)
    : label_(std::move(label)), parent_(parent), limit_bytes_(limit_bytes) {}

MemTracker::~MemTracker() {
  // Release anything still charged from every ancestor so a tracker whose
  // owner forgot (or failed mid-query) cannot permanently inflate the root.
  const int64_t outstanding = consumption_.load(std::memory_order_relaxed);
  if (outstanding != 0) {
    for (MemTracker* t = parent_; t != nullptr; t = t->parent_) {
      t->ConsumeLocal(-outstanding);
    }
  }
}

MemTracker* MemTracker::Process() {
  // Leaked singleton, same pattern as TraceCollector: safe to charge against
  // during static destruction of other objects.
  static MemTracker* process = new MemTracker("process");
  return process;
}

bool MemTracker::Enabled() {
#if defined(DL2SQL_MEM_TRACKER_DISABLED)
  return false;
#else
  return EnabledFlag().load(std::memory_order_relaxed);
#endif
}

void MemTracker::SetEnabled(bool enabled) {
#if defined(DL2SQL_MEM_TRACKER_DISABLED)
  (void)enabled;
#else
  EnabledFlag().store(enabled, std::memory_order_relaxed);
#endif
}

void MemTracker::ConsumeLocal(int64_t bytes) {
  const int64_t now =
      consumption_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (bytes > 0) {
    cumulative_.fetch_add(bytes, std::memory_order_relaxed);
    int64_t prev_peak = peak_.load(std::memory_order_relaxed);
    while (now > prev_peak && !peak_.compare_exchange_weak(
                                  prev_peak, now, std::memory_order_relaxed)) {
    }
  }
}

void MemTracker::Consume(int64_t bytes) {
  if (bytes == 0 || !Enabled()) return;
  for (MemTracker* t = this; t != nullptr; t = t->parent_) {
    t->ConsumeLocal(bytes);
  }
}

Status MemTracker::TryConsume(int64_t bytes) {
  if (bytes <= 0 || !Enabled()) {
    Consume(bytes);
    return Status::OK();
  }
  // Check every limited ancestor first so a refusal charges nothing. The
  // check races with concurrent consumers (two queries can both pass and
  // overshoot by one charge); that is acceptable for a soft budget — the
  // alternative, a CAS loop per ancestor, would put contention on the hot
  // path for a guarantee nothing needs.
  for (MemTracker* t = this; t != nullptr; t = t->parent_) {
    if (t->limit_bytes_ > 0 &&
        t->consumption_.load(std::memory_order_relaxed) + bytes >
            t->limit_bytes_) {
      return Status::ResourceExhausted(
          "memory limit exceeded for ", t->label_, ": limit ",
          t->limit_bytes_, " bytes, in use ",
          t->consumption_.load(std::memory_order_relaxed), ", requested ",
          bytes, " (in ", label_, ")");
    }
  }
  for (MemTracker* t = this; t != nullptr; t = t->parent_) {
    t->ConsumeLocal(bytes);
  }
  return Status::OK();
}

}  // namespace dl2sql
