#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "common/trace.h"

namespace dl2sql {

namespace {

/// Initial level: DL2SQL_LOG_LEVEL env var (debug|info|warning|error, or a
/// numeric level); default kWarning so benchmarks stay quiet.
int InitialLogLevel() {
  const char* v = std::getenv("DL2SQL_LOG_LEVEL");
  if (v == nullptr || *v == '\0') return static_cast<int>(LogLevel::kWarning);
  if (std::strcmp(v, "debug") == 0 || std::strcmp(v, "DEBUG") == 0) return 0;
  if (std::strcmp(v, "info") == 0 || std::strcmp(v, "INFO") == 0) return 1;
  if (std::strcmp(v, "warning") == 0 || std::strcmp(v, "WARNING") == 0 ||
      std::strcmp(v, "warn") == 0 || std::strcmp(v, "WARN") == 0) {
    return 2;
  }
  if (std::strcmp(v, "error") == 0 || std::strcmp(v, "ERROR") == 0) return 3;
  if (v[0] >= '0' && v[0] <= '4' && v[1] == '\0') return v[0] - '0';
  return static_cast<int>(LogLevel::kWarning);
}

std::atomic<int> g_log_level{InitialLogLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >= g_log_level.load() ||
               level == LogLevel::kFatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    // Monotonic seconds since process start + compact thread id (shared with
    // the trace collector) make interleaved parallel-exec logs attributable.
    const int64_t us = TraceCollector::NowMicros();
    char stamp[48];
    std::snprintf(stamp, sizeof(stamp), "%lld.%06lld t%d",
                  static_cast<long long>(us / 1000000),
                  static_cast<long long>(us % 1000000),
                  TraceCollector::CurrentThreadId());
    stream_ << "[" << stamp << " " << LevelName(level) << " " << base << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace dl2sql
