/// \file logging.h
/// \brief Minimal leveled logger plus CHECK macros for invariant enforcement.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dl2sql {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are dropped. Default: kWarning so
/// benchmarks stay quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DL2SQL_LOG(level)                                                      \
  ::dl2sql::internal::LogMessage(::dl2sql::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts with a message if `cond` is false. Used for programmer invariants,
/// not for user-input validation (that returns Status).
#define DL2SQL_CHECK(cond)                                                    \
  if (!(cond))                                                                \
  ::dl2sql::internal::LogMessage(::dl2sql::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define DL2SQL_DCHECK(cond) DL2SQL_CHECK(cond)

}  // namespace dl2sql
