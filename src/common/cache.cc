#include "common/cache.h"

#include <algorithm>

#include "common/metrics.h"

namespace dl2sql {

ShardedLruCache::ShardedLruCache(std::string name, size_t capacity_bytes,
                                 int shard_bits)
    : name_(std::move(name)),
      capacity_bytes_(capacity_bytes),
      mem_("cache." + name_, MemTracker::Process()) {
  shard_bits = std::clamp(shard_bits, 0, 8);
  const size_t num_shards = size_t{1} << shard_bits;
  shard_mask_ = num_shards - 1;
  per_shard_capacity_ = std::max<size_t>(1, capacity_bytes_ / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  hits_total_ = reg.counter("cache.hits");
  misses_total_ = reg.counter("cache.misses");
  evictions_total_ = reg.counter("cache.evictions");
  hits_ = reg.counter("cache." + name_ + ".hits");
  misses_ = reg.counter("cache." + name_ + ".misses");
  insertions_ = reg.counter("cache." + name_ + ".insertions");
  evictions_ = reg.counter("cache." + name_ + ".evictions");
  bytes_gauge_ = reg.gauge("cache." + name_ + ".bytes");
}

ShardedLruCache::ValuePtr ShardedLruCache::Lookup(uint64_t key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_->Increment();
    misses_total_->Increment();
    return nullptr;
  }
  // Refresh recency: splice the entry to the front of the LRU list.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_->Increment();
  hits_total_->Increment();
  return it->second->value;
}

void ShardedLruCache::Insert(uint64_t key, ValuePtr value, size_t charge) {
  Shard& shard = ShardFor(key);
  int64_t evicted = 0;
  int64_t bytes_delta = 0;  // net change to charge/release from the tracker
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.bytes -= it->second->charge;
      bytes_delta -= static_cast<int64_t>(it->second->charge);
      it->second->value = std::move(value);
      it->second->charge = charge;
      shard.bytes += charge;
      bytes_delta += static_cast<int64_t>(charge);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(value), charge});
      shard.index[key] = shard.lru.begin();
      shard.bytes += charge;
      bytes_delta += static_cast<int64_t>(charge);
    }
    // Evict from the cold end until within budget, but never the entry just
    // touched (an oversized value may exceed the budget on its own).
    while (shard.bytes > per_shard_capacity_ && shard.lru.size() > 1) {
      Entry& victim = shard.lru.back();
      shard.bytes -= victim.charge;
      bytes_delta -= static_cast<int64_t>(victim.charge);
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++evicted;
    }
  }
  mem_.Consume(bytes_delta);
  insertions_->Increment();
  if (evicted > 0) {
    evictions_->Increment(evicted);
    evictions_total_->Increment(evicted);
  }
  UpdateBytesGauge();
}

bool ShardedLruCache::Erase(uint64_t key) {
  Shard& shard = ShardFor(key);
  bool erased = false;
  int64_t released = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      released = static_cast<int64_t>(it->second->charge);
      shard.bytes -= it->second->charge;
      shard.lru.erase(it->second);
      shard.index.erase(it);
      erased = true;
    }
  }
  if (erased) {
    mem_.Release(released);
    UpdateBytesGauge();
  }
  return erased;
}

void ShardedLruCache::Clear() {
  int64_t released = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    released += static_cast<int64_t>(shard->bytes);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
  mem_.Release(released);
  UpdateBytesGauge();
}

CacheStats ShardedLruCache::stats() const {
  CacheStats s;
  s.hits = hits_->value();
  s.misses = misses_->value();
  s.insertions = insertions_->value();
  s.evictions = evictions_->value();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.bytes += static_cast<int64_t>(shard->bytes);
    s.entries += static_cast<int64_t>(shard->lru.size());
  }
  return s;
}

size_t ShardedLruCache::bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->bytes;
  }
  return total;
}

int64_t ShardedLruCache::entries() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += static_cast<int64_t>(shard->lru.size());
  }
  return total;
}

void ShardedLruCache::UpdateBytesGauge() {
  bytes_gauge_->Set(static_cast<double>(bytes()));
}

}  // namespace dl2sql
