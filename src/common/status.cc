#include "common/status.h"

namespace dl2sql {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kInternalError:
      return "Internal error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

StatusCode StatusCodeFromString(const std::string& name) {
  static const StatusCode kCodes[] = {
      StatusCode::kInvalidArgument, StatusCode::kNotFound,
      StatusCode::kAlreadyExists,   StatusCode::kOutOfRange,
      StatusCode::kNotImplemented,  StatusCode::kIoError,
      StatusCode::kParseError,      StatusCode::kTypeError,
      StatusCode::kInternalError,   StatusCode::kResourceExhausted,
      StatusCode::kUnavailable,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeToString(code)) return code;
  }
  return StatusCode::kInternalError;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace dl2sql
