/// \file cache.h
/// \brief Sharded, thread-safe LRU cache keyed by 64-bit hashes.
///
/// One shared implementation backs every cross-query cache in the system
/// (the nUDF result cache and the prepared-plan cache). Keys are pre-hashed
/// uint64s; values are type-erased shared pointers with an explicit byte
/// charge, so one cache class serves heterogeneous payloads without template
/// bloat. Each shard has its own mutex + LRU list, which keeps concurrent
/// morsel workers from serializing on a single lock.
///
/// Observability: every cache feeds the global MetricsRegistry both in
/// aggregate (cache.hits / cache.misses / cache.evictions) and per cache
/// (cache.<name>.hits, cache.<name>.misses, cache.<name>.evictions, plus a
/// cache.<name>.bytes gauge), so ExplainAnalyze's counter footer shows
/// per-query hit/miss deltas with no extra wiring.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mem_tracker.h"

namespace dl2sql {

class Counter;
class Gauge;

/// 64-bit FNV-1a over a byte range. Deterministic across runs/platforms, good
/// avalanche for hash-table keys; not cryptographic.
inline uint64_t Hash64(const void* data, size_t len,
                       uint64_t seed = 0xcbf29ce484222325ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t Hash64(const std::string& s,
                       uint64_t seed = 0xcbf29ce484222325ull) {
  return Hash64(s.data(), s.size(), seed);
}

/// Order-dependent combination of two 64-bit hashes (boost-style mix).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2);
  return a;
}

/// Point-in-time counters of one cache (monotonic except bytes/entries).
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t bytes = 0;
  int64_t entries = 0;
};

/// \brief Thread-safe LRU cache with a byte budget, split into shards.
///
/// Lookup/Insert/Erase are safe from any thread. Values are immutable once
/// inserted (shared_ptr<const void>); a Lookup returns a reference that stays
/// valid even if the entry is evicted concurrently. Inserting an existing key
/// replaces the value and refreshes its LRU position. A single value larger
/// than a shard's budget is still admitted (it becomes the shard's only
/// entry) so pathological charges degrade to "cache of one" rather than
/// thrash.
class ShardedLruCache {
 public:
  using ValuePtr = std::shared_ptr<const void>;

  /// `name` keys the per-cache metrics (cache.<name>.*). `capacity_bytes` is
  /// the total budget across all 2^shard_bits shards.
  ShardedLruCache(std::string name, size_t capacity_bytes, int shard_bits = 4);

  /// Returns the cached value or nullptr; counts a hit or a miss.
  ValuePtr Lookup(uint64_t key);

  /// Inserts (or replaces) `key`, charging `charge` bytes against the shard
  /// budget and evicting LRU entries as needed.
  void Insert(uint64_t key, ValuePtr value, size_t charge);

  /// Removes `key` if present (not counted as an eviction).
  bool Erase(uint64_t key);

  /// Drops every entry (invalidation hook; not counted as evictions).
  void Clear();

  CacheStats stats() const;
  size_t bytes() const;
  int64_t entries() const;
  const std::string& name() const { return name_; }
  size_t capacity_bytes() const { return capacity_bytes_; }

  /// This cache's memory tracker ("cache.<name>", child of the process
  /// tracker): entry charges are consumed on insert and released on
  /// evict/erase/clear, so system-wide accounting sees cache residency.
  const MemTracker& mem_tracker() const { return mem_; }

  /// Convenience: lookup already cast to the payload type.
  template <typename T>
  std::shared_ptr<const T> LookupAs(uint64_t key) {
    return std::static_pointer_cast<const T>(Lookup(key));
  }

 private:
  struct Entry {
    uint64_t key;
    ValuePtr value;
    size_t charge;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    size_t bytes = 0;
  };

  Shard& ShardFor(uint64_t key) {
    // High bits pick the shard; low bits feed the per-shard hash map.
    return *shards_[(key >> 56) & shard_mask_];
  }
  void UpdateBytesGauge();

  const std::string name_;
  const size_t capacity_bytes_;
  MemTracker mem_;
  size_t shard_mask_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Registry handles resolved once at construction (lock-free afterwards).
  Counter* hits_total_;
  Counter* misses_total_;
  Counter* evictions_total_;
  Counter* hits_;
  Counter* misses_;
  Counter* insertions_;
  Counter* evictions_;
  Gauge* bytes_gauge_;
};

}  // namespace dl2sql
