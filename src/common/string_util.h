/// \file string_util.h
/// \brief Small string helpers shared by the SQL lexer, plan printers and the
/// benchmark report formatters.
#pragma once

#include <string>
#include <vector>

namespace dl2sql {

/// Lower-cases ASCII characters.
std::string ToLower(const std::string& s);

/// Upper-cases ASCII characters.
std::string ToUpper(const std::string& s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Splits on a delimiter character; empty pieces are kept.
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces, const std::string& sep);

/// Strips leading and trailing whitespace.
std::string Trim(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double v, int digits = 3);

/// Formats bytes as a human-readable quantity ("12.3 MB").
std::string FormatBytes(uint64_t bytes);

}  // namespace dl2sql
