/// \file metrics.h
/// \brief Process-wide metrics registry: counters, gauges, and fixed-bucket
/// latency histograms.
///
/// One system replaces the scattered ad-hoc counters (Database tallies,
/// QueryCost triples, NodeRunStats) as the home for cross-layer runtime
/// counters. Handles returned by the registry are stable for the process
/// lifetime, so hot paths look a metric up once and then update a plain
/// atomic — safe from any thread, including pool workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dl2sql {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written floating-point metric (e.g. pool size, cache residency).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket latency histogram (microseconds).
///
/// Buckets are powers of two from 1us up; the last bucket is +inf. Fixed
/// bounds keep Record() allocation-free and mergeable across threads.
class Histogram {
 public:
  static constexpr int kNumBuckets = 24;  ///< [1us, 2us, ..., ~8.4s, +inf)

  void Record(int64_t micros);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum_micros() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound (inclusive) of bucket `i` in micros; -1 for the +inf bucket.
  static int64_t BucketBoundMicros(int i);
  /// Approximate quantile (upper bucket bound of the q-th sample), q in [0,1].
  int64_t ApproxQuantileMicros(double q) const;
  /// Same estimate over a detached bucket array (a snapshot). Shared by the
  /// in-process histograms, system.metrics rows, and the Prometheus renderer
  /// so all three report identical quantiles.
  static int64_t QuantileFromBuckets(const int64_t (&buckets)[kNumBuckets],
                                     double q);
  void Reset();

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
};

/// \brief Point-in-time copy of every registered metric, taken under one
/// registry lock so the name sets are mutually consistent. Used for
/// per-query counter deltas (ExplainAnalyze), system.metrics scans, and the
/// Prometheus renderer.
struct MetricsSnapshot {
  struct HistogramData {
    int64_t count = 0;
    int64_t sum_micros = 0;
    int64_t buckets[Histogram::kNumBuckets] = {};
    int64_t Quantile(double q) const {
      return Histogram::QuantileFromBuckets(buckets, q);
    }
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
};

/// \brief Named registry of metrics. Lookup takes a lock; returned handles
/// are lock-free to update and remain valid for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Copies every registered metric under a single lock acquisition.
  MetricsSnapshot Snapshot() const;

  /// Per-metric difference `after - before`. Counters and histogram
  /// counts/sums/buckets subtract (names only in `before` are dropped, names
  /// only in `after` delta against zero); gauges are last-written values, so
  /// the delta keeps `after`'s reading as-is.
  static MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after);

  /// Structured snapshot of every registered metric:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///   {"count":..,"sum_us":..,"p50_us":..,"p99_us":..}}}
  std::string ToJson() const;

  /// Renders a snapshot in Prometheus text exposition format (version 0.0.4):
  /// counters as `counter`, gauges as `gauge`, histograms as cumulative
  /// `_bucket{le="..."}` series plus `_sum`/`_count`. Metric names are
  /// sanitized (dots and other invalid characters become underscores).
  static std::string ToPrometheusText(const MetricsSnapshot& snap);

  /// The name sanitizer ToPrometheusText applies (dots and other invalid
  /// characters become underscores). Exposed so the cluster coordinator can
  /// render shard-federated series under the same names, labeled by shard.
  static std::string SanitizeName(const std::string& name);

  /// Zeroes every registered metric (handles stay valid). Test/bench hook.
  void ResetAll();

  /// Sorted names of registered counters (introspection/tests).
  std::vector<std::string> CounterNames() const;

 private:
  MetricsRegistry();
  struct Impl;
  Impl* impl_;  // leaked singleton state
};

}  // namespace dl2sql
