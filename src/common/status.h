/// \file status.h
/// \brief Status: lightweight error propagation used across all dl2sql modules.
///
/// Following the Arrow/RocksDB idiom, fallible functions return Status (or
/// Result<T>, see result.h) instead of throwing exceptions across module
/// boundaries. A Status is cheap to copy in the OK case (single enum) and
/// carries a code plus a human-readable message otherwise.
#pragma once

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace dl2sql {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kNotImplemented = 5,
  kIoError = 6,
  kParseError = 7,
  kTypeError = 8,
  kInternalError = 9,
  kResourceExhausted = 10,
  /// A required remote peer (e.g. a cluster shard) is unreachable, timed out,
  /// or dropped the connection. Retryable by the caller; the message names
  /// the peer.
  kUnavailable = 11,
};

/// \brief Human-readable name for a StatusCode (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Inverse of StatusCodeToString, for reconstructing a typed Status
/// from a wire-format "ERR <code-name>: <message>" line. Unknown names map to
/// kInternalError (the frame is still an error either way).
StatusCode StatusCodeFromString(const std::string& name);

/// \brief Result of an operation that can fail.
///
/// Usage:
/// \code
///   Status DoThing() {
///     if (bad) return Status::InvalidArgument("bad thing: ", detail);
///     return Status::OK();
///   }
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// Returns a success status.
  static Status OK() { return Status(); }

  /// \name Factory helpers, one per code. Arguments are streamed together.
  /// @{
  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Make(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IoError(Args&&... args) {
    return Make(StatusCode::kIoError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ParseError(Args&&... args) {
    return Make(StatusCode::kParseError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status TypeError(Args&&... args) {
    return Make(StatusCode::kTypeError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status InternalError(Args&&... args) {
    return Make(StatusCode::kInternalError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ResourceExhausted(Args&&... args) {
    return Make(StatusCode::kResourceExhausted, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unavailable(Args&&... args) {
    return Make(StatusCode::kUnavailable, std::forward<Args>(args)...);
  }
  /// @}

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsInternalError() const { return code() == StatusCode::kInternalError; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Prepends context to the message, keeping the code. No-op on OK status.
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return Status(code, oss.str());
  }

  // Shared so copies are cheap; null means OK.
  std::shared_ptr<State> state_;
};

/// Propagates a non-OK status to the caller.
#define DL2SQL_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::dl2sql::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

#define DL2SQL_CONCAT_IMPL(a, b) a##b
#define DL2SQL_CONCAT(a, b) DL2SQL_CONCAT_IMPL(a, b)

}  // namespace dl2sql
