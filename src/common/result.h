/// \file result.h
/// \brief Result<T>: a value-or-Status return type (Arrow-style).
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace dl2sql {

/// \brief Holds either a successfully produced T or a failure Status.
///
/// Usage:
/// \code
///   Result<Table> Open(const std::string& name);
///   ...
///   DL2SQL_ASSIGN_OR_RETURN(Table t, Open("video"));
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : inner_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from non-OK status (failure). An OK status is a programming
  /// error and is converted to InternalError.
  Result(Status status) : inner_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(inner_).ok()) {
      inner_ = Status::InternalError("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(inner_); }

  /// Failure status; Status::OK() if this holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(inner_);
  }

  /// \pre ok()
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(inner_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(inner_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(inner_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, or returns the provided default on failure.
  T ValueOr(T default_value) && {
    if (ok()) return std::get<T>(std::move(inner_));
    return default_value;
  }

 private:
  std::variant<Status, T> inner_;
};

/// Evaluates `rexpr` (a Result<T>); on failure returns the status, on success
/// assigns the value to `lhs` (which may include a declaration).
#define DL2SQL_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  DL2SQL_ASSIGN_OR_RETURN_IMPL(DL2SQL_CONCAT(_result_, __LINE__), lhs, rexpr)

#define DL2SQL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie()

}  // namespace dl2sql
