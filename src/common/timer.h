/// \file timer.h
/// \brief Wall-clock timing helpers used by the benchmark harness and the
/// per-operator profilers (Figs. 9 & 10).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace dl2sql {

/// \brief Simple monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds since construction / last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates named timing buckets; the execution engine charges each
/// physical operator's runtime to a bucket so experiments can report
/// loading / inference / relational breakdowns and per-clause shares.
class CostAccumulator {
 public:
  void Add(const std::string& bucket, double seconds) {
    buckets_[bucket] += seconds;
  }

  double Get(const std::string& bucket) const {
    auto it = buckets_.find(bucket);
    return it == buckets_.end() ? 0.0 : it->second;
  }

  double Total() const {
    double t = 0;
    for (const auto& [_, v] : buckets_) t += v;
    return t;
  }

  void Clear() { buckets_.clear(); }

  const std::map<std::string, double>& buckets() const { return buckets_; }

  /// Merges another accumulator into this one.
  void Merge(const CostAccumulator& other) {
    for (const auto& [k, v] : other.buckets_) buckets_[k] += v;
  }

 private:
  std::map<std::string, double> buckets_;
};

/// \brief RAII helper charging a scope's wall time to an accumulator bucket.
class ScopedTimer {
 public:
  ScopedTimer(CostAccumulator* acc, std::string bucket)
      : acc_(acc), bucket_(std::move(bucket)) {}
  ~ScopedTimer() {
    if (acc_ != nullptr) acc_->Add(bucket_, watch_.ElapsedSeconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  CostAccumulator* acc_;
  std::string bucket_;
  Stopwatch watch_;
};

}  // namespace dl2sql
