/// \file trace.h
/// \brief Low-overhead hierarchical query tracing.
///
/// The paper's evidence is per-operator and per-clause cost breakdowns
/// (Figs. 9-13); with morsel-parallel execution those breakdowns need spans
/// that know which thread, which morsel, and which NN layer the time went to.
/// This layer provides:
///  - TraceSpan: RAII span recording [start, end) on the calling thread with
///    a nesting depth, collected into per-thread buffers (no shared state on
///    the hot path; one uncontended per-buffer lock per event).
///  - DL2SQL_TRACE_SPAN(category, name[, args]): the instrumentation macro.
///    Compiled out entirely under -DDL2SQL_TRACING=OFF; when compiled in but
///    runtime-disabled (the default) a span costs one relaxed atomic load.
///  - TraceCollector: process-wide sink. Snapshot(), Clear(),
///    WriteChromeTrace(path) (chrome://tracing / Perfetto "X" events) and
///    SummaryJson() (per-name aggregate, embedded in bench output).
///
/// Spans nest lexically per thread: engine phase -> plan node -> morsel / NN
/// layer. Cross-thread children (pool morsels under a main-thread operator)
/// appear on their worker's timeline row, which is exactly how Chrome's
/// viewer renders worker parallelism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dl2sql {

/// One finished span. `name`/`category` are stable C strings or small owned
/// strings; `args` is a preformatted JSON object body ("\"k\":1") or empty.
struct TraceEvent {
  std::string name;
  const char* category = "";
  std::string args;       ///< JSON object body without braces; may be empty
  int64_t start_us = 0;   ///< microseconds since trace epoch
  int64_t duration_us = 0;
  int32_t tid = 0;        ///< compact per-process thread id
  int32_t depth = 0;      ///< nesting depth on its thread at start
  int32_t pid = 1;        ///< Chrome-trace lane; coordinator maps shards here
  uint64_t trace_id = 0;  ///< distributed trace id; 0 = untraced local span
};

/// \brief Distributed trace context: the coordinator-assigned 64-bit trace id
/// plus the parent span id, propagated to shards via the wire protocol.
///
/// A thread-local "current" context is installed with ScopedTraceContext;
/// TraceSpan stamps it onto every event it records, so shard-side spans (and
/// query-log records) carry the coordinator's ids without any per-span plumbing.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;

  bool active() const { return trace_id != 0; }
};

/// The calling thread's current trace context ({0,0} when none installed).
TraceContext CurrentTraceContext();

/// RAII installer for the thread-local trace context; restores the previous
/// context on destruction so contexts nest (coordinator inside a traced
/// client statement keeps the outermost ids).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

/// \brief Process-wide trace sink.
///
/// Threads append finished spans to thread-local buffers registered here.
/// Reads (Snapshot/Write/Clear) briefly lock each buffer; appends lock only
/// the appending thread's own buffer, which is uncontended in steady state.
class TraceCollector {
 public:
  static TraceCollector& Global();

  /// Runtime switch; tracing starts disabled so instrumented code paths pay
  /// one relaxed atomic load until a tool opts in.
  void SetEnabled(bool enabled);
  bool enabled() const;

  /// Drops all recorded events (buffers stay registered).
  void Clear();

  /// Copies out every recorded event, ordered by start time.
  std::vector<TraceEvent> Snapshot() const;

  /// Events stamped with `trace_id` that started at or after `min_start_us`,
  /// ordered by start time. Shard servers use this to extract exactly the
  /// spans of one traced statement for the wire trailer.
  std::vector<TraceEvent> SnapshotTrace(uint64_t trace_id,
                                        int64_t min_start_us = 0) const;

  /// Total recorded events across all thread buffers.
  int64_t EventCount() const;

  /// Writes the Chrome trace-event JSON ("traceEvents" array of complete "X"
  /// events) loadable in about://tracing or ui.perfetto.dev.
  Status WriteChromeTrace(const std::string& path) const;

  /// Chrome trace-event JSON as a string (testing / embedding).
  std::string ToChromeTraceJson() const;

  /// Chrome trace-event JSON for an explicit event list. Honors each event's
  /// `pid`, so a coordinator can merge shard-shipped spans into one file with
  /// one lane per shard (see Coordinator::WriteClusterTrace).
  static std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

  /// Aggregated per-span-name {"count", "total_us"} JSON object, for
  /// embedding a compact trace summary into bench result files.
  std::string SummaryJson() const;

  /// Per-name aggregate over all recorded spans, sorted by name. Structured
  /// counterpart of SummaryJson(), used by the system.spans virtual table.
  struct SpanSummary {
    std::string name;
    int64_t count = 0;
    int64_t total_us = 0;
    int64_t max_us = 0;
  };
  std::vector<SpanSummary> Summary() const;

  /// Microseconds since the process trace epoch (steady clock).
  static int64_t NowMicros();

  /// Compact id of the calling thread (assigned on first use, starts at 0).
  static int32_t CurrentThreadId();

  // Internal: called by TraceSpan. Appends to the calling thread's buffer.
  void Record(TraceEvent event);

 private:
  TraceCollector();
  struct Impl;
  Impl* impl_;  // leaked singleton state: safe during static destruction
};

/// \brief RAII span: records one TraceEvent on destruction when tracing was
/// enabled at construction. Cheap no-op otherwise.
class TraceSpan {
 public:
  TraceSpan(const char* category, std::string name)
      : TraceSpan(category, std::move(name), std::string()) {}

  /// `args` is a JSON object body, e.g. "\"worker\":2,\"rows\":4096".
  TraceSpan(const char* category, std::string name, std::string args);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  const char* category_ = "";
  std::string name_;
  std::string args_;
  int64_t start_us_ = 0;
  int32_t depth_ = 0;
};

namespace internal {
/// Per-thread span nesting depth (managed by TraceSpan).
int32_t TraceDepth();
}  // namespace internal

}  // namespace dl2sql

// DL2SQL_TRACING is defined (by CMake) as 1 when tracing is compiled in.
// -DDL2SQL_TRACING=OFF at configure time compiles every span site out.
#if !defined(DL2SQL_TRACING_DISABLED)
#define DL2SQL_TRACE_CONCAT_(a, b) a##b
#define DL2SQL_TRACE_CONCAT(a, b) DL2SQL_TRACE_CONCAT_(a, b)
/// Opens a span covering the rest of the enclosing scope. Argument
/// expressions are evaluated even when tracing is runtime-disabled, so hot
/// sites should pass literals (SSO, no allocation) and guard dynamically
/// built args behind TraceCollector::Global().enabled().
#define DL2SQL_TRACE_SPAN(category, ...)                                   \
  ::dl2sql::TraceSpan DL2SQL_TRACE_CONCAT(dl2sql_trace_span_, __LINE__)(   \
      category, __VA_ARGS__)
#else
#define DL2SQL_TRACE_SPAN(category, ...) \
  do {                                   \
  } while (0)
#endif
