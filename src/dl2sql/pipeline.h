/// \file pipeline.h
/// \brief Runs a converted model's generated SQL inside the database and
/// profiles it (inference cost, loading cost, per-block and per-clause
/// breakdowns for Figs. 8-11).
#pragma once

#include "common/timer.h"
#include "dl2sql/converter.h"

namespace dl2sql::core {

/// Profiling output of one inference run.
struct PipelineRunStats {
  /// Seconds spent materializing the input tensor as the flat input table.
  double load_seconds = 0;
  /// Seconds spent executing the generated SQL statements.
  double infer_seconds = 0;
  /// Per-op wall seconds in execution order: (layer label, op kind, secs).
  struct OpTime {
    std::string label;
    nn::LayerKind kind;
    double seconds;
  };
  std::vector<OpTime> per_op;
  /// Per-SQL-clause cost buckets ("scan", "join", "groupby", ...) as charged
  /// by the database executor during this run (Fig. 10).
  CostAccumulator clause_costs;
};

/// \brief Executes a ConvertedModel's SQL pipeline.
class Dl2SqlRunner {
 public:
  Dl2SqlRunner(db::Database* db, ConvertedModel model)
      : db_(db), model_(std::move(model)) {}

  const ConvertedModel& model() const { return model_; }

  /// Runs the full pipeline on one input; returns the output activation
  /// (class probabilities for classifier models), ordered by TupleID.
  /// For a batch-converted model this delegates to InferBatch.
  Result<Tensor> Infer(const Tensor& input, PipelineRunStats* stats = nullptr);

  /// Runs a whole batch. For a batch-converted model (ConvertOptions::
  /// batched) the batch goes through ONE pipeline execution with per-image
  /// BatchIDs; otherwise it loops Infer. Returns one activation per input.
  Result<std::vector<Tensor>> InferBatch(const std::vector<Tensor>& inputs,
                                         PipelineRunStats* stats = nullptr);

  /// Argmax over Infer().
  Result<int64_t> Predict(const Tensor& input, PipelineRunStats* stats = nullptr);

  /// Argmax per batch element.
  Result<std::vector<int64_t>> PredictBatch(const std::vector<Tensor>& inputs,
                                            PipelineRunStats* stats = nullptr);

  /// Drops all runtime tables (called automatically at the end of Infer).
  Status Cleanup();

 private:
  Status LoadInput(const Tensor& input);
  Status LoadInputBatch(const std::vector<Tensor>& inputs);
  Status RunStatements(PipelineRunStats* stats);

  db::Database* db_;
  ConvertedModel model_;
};

}  // namespace dl2sql::core
