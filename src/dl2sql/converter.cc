#include "dl2sql/converter.h"

#include <cmath>

#include "db/codec.h"

#include "nn/blocks.h"
#include "nn/layers.h"

namespace dl2sql::core {

using db::Column;
using db::DataType;
using db::Field;
using db::Table;
using db::TableSchema;
using nn::Layer;
using nn::LayerKind;

namespace {

TableSchema FlatSchema() {
  return TableSchema({{"TupleID", DataType::kInt64},
                      {"Value", DataType::kFloat64}});
}

}  // namespace

db::Table GenerateMappingTable(const LayerGeometry& g) {
  std::vector<int64_t> matrix_ids, order_ids, tuple_ids;
  const int64_t k = g.kernel;
  int64_t matrix_id = 0;
  for (int64_t oy = 0; oy < g.out_h; ++oy) {
    for (int64_t ox = 0; ox < g.out_w; ++ox) {
      for (int64_t ic = 0; ic < g.in_c; ++ic) {
        for (int64_t i = 0; i < k; ++i) {
          const int64_t y = oy * g.stride + i - g.pad;
          if (y < 0 || y >= g.in_h) continue;
          for (int64_t j = 0; j < k; ++j) {
            const int64_t x = ox * g.stride + j - g.pad;
            if (x < 0 || x >= g.in_w) continue;
            matrix_ids.push_back(matrix_id);
            order_ids.push_back((ic * k + i) * k + j);
            tuple_ids.push_back((ic * g.in_h + y) * g.in_w + x);
          }
        }
      }
      ++matrix_id;
    }
  }
  TableSchema schema({{"MatrixID", DataType::kInt64},
                      {"OrderID", DataType::kInt64},
                      {"TupleID", DataType::kInt64}});
  auto t = Table::FromColumns(
      schema, {Column::Ints(std::move(matrix_ids)),
               Column::Ints(std::move(order_ids)),
               Column::Ints(std::move(tuple_ids))});
  return std::move(t).ValueOrDie();
}

db::Table GeneratePoolingMap(int64_t channels, int64_t in_h, int64_t in_w,
                             int64_t window, int64_t stride) {
  std::vector<int64_t> matrix_ids, tuple_ids;
  const int64_t out_h = (in_h - window) / stride + 1;
  const int64_t out_w = (in_w - window) / stride + 1;
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t oy = 0; oy < out_h; ++oy) {
      for (int64_t ox = 0; ox < out_w; ++ox) {
        const int64_t matrix_id = (c * out_h + oy) * out_w + ox;
        for (int64_t i = 0; i < window; ++i) {
          for (int64_t j = 0; j < window; ++j) {
            matrix_ids.push_back(matrix_id);
            tuple_ids.push_back(
                (c * in_h + oy * stride + i) * in_w + ox * stride + j);
          }
        }
      }
    }
  }
  TableSchema schema({{"MatrixID", DataType::kInt64},
                      {"TupleID", DataType::kInt64}});
  auto t = Table::FromColumns(schema, {Column::Ints(std::move(matrix_ids)),
                                       Column::Ints(std::move(tuple_ids))});
  return std::move(t).ValueOrDie();
}

db::Table GenerateKernelTable(const Tensor& weight) {
  const int64_t out_c = weight.shape()[0];
  const int64_t in_c = weight.shape()[1];
  const int64_t kh = weight.shape()[2];
  const int64_t kw = weight.shape()[3];
  std::vector<int64_t> kernel_ids, order_ids;
  std::vector<double> values;
  for (int64_t oc = 0; oc < out_c; ++oc) {
    for (int64_t ic = 0; ic < in_c; ++ic) {
      for (int64_t i = 0; i < kh; ++i) {
        for (int64_t j = 0; j < kw; ++j) {
          kernel_ids.push_back(oc);
          order_ids.push_back((ic * kh + i) * kw + j);
          values.push_back(
              static_cast<double>(weight.at((((oc * in_c) + ic) * kh + i) * kw + j)));
        }
      }
    }
  }
  TableSchema schema({{"KernelID", DataType::kInt64},
                      {"OrderID", DataType::kInt64},
                      {"Value", DataType::kFloat64}});
  auto t = Table::FromColumns(
      schema, {Column::Ints(std::move(kernel_ids)),
               Column::Ints(std::move(order_ids)), Column::Floats(std::move(values))});
  return std::move(t).ValueOrDie();
}

db::Table GeneratePreJoinedKernel(const LayerGeometry& g, const Tensor& weight) {
  const Table mapping = GenerateMappingTable(g);
  const int64_t out_c = weight.shape()[0];
  const int64_t in_c = weight.shape()[1];
  const int64_t k = weight.shape()[2];
  const int64_t out_plane = g.out_h * g.out_w;
  std::vector<int64_t> out_ids, tuple_ids;
  std::vector<double> weights;
  const auto& m_matrix = mapping.column(0).ints();
  const auto& m_order = mapping.column(1).ints();
  const auto& m_tuple = mapping.column(2).ints();
  for (size_t r = 0; r < m_matrix.size(); ++r) {
    const int64_t order = m_order[r];
    const int64_t ic = order / (k * k);
    const int64_t rem = order % (k * k);
    const int64_t i = rem / k;
    const int64_t j = rem % k;
    for (int64_t oc = 0; oc < out_c; ++oc) {
      // The flattened output position is precomputed offline so the runtime
      // conv groups by one integer column.
      out_ids.push_back(oc * out_plane + m_matrix[r]);
      tuple_ids.push_back(m_tuple[r]);
      weights.push_back(
          static_cast<double>(weight.at((((oc * in_c) + ic) * k + i) * k + j)));
    }
  }
  TableSchema schema({{"OutTupleID", DataType::kInt64},
                      {"TupleID", DataType::kInt64},
                      {"Weight", DataType::kFloat64}});
  auto t = Table::FromColumns(
      schema, {Column::Ints(std::move(out_ids)), Column::Ints(std::move(tuple_ids)),
               Column::Floats(std::move(weights))});
  return std::move(t).ValueOrDie();
}

namespace {

/// Builds (ChannelID, Scale, Shift) for inference-mode BN.
Table MakeBnTable(const nn::BatchNorm& bn) {
  const int64_t c = bn.gamma().NumElements();
  std::vector<int64_t> channels;
  std::vector<double> scales, shifts;
  for (int64_t i = 0; i < c; ++i) {
    const double scale = static_cast<double>(bn.gamma().at(i)) /
                         std::sqrt(static_cast<double>(bn.running_var().at(i)) +
                                   bn.eps());
    channels.push_back(i);
    scales.push_back(scale);
    shifts.push_back(static_cast<double>(bn.beta().at(i)) -
                     static_cast<double>(bn.running_mean().at(i)) * scale);
  }
  TableSchema schema({{"ChannelID", DataType::kInt64},
                      {"Scale", DataType::kFloat64},
                      {"Shift", DataType::kFloat64}});
  auto t = Table::FromColumns(schema, {Column::Ints(std::move(channels)),
                                       Column::Floats(std::move(scales)),
                                       Column::Floats(std::move(shifts))});
  return std::move(t).ValueOrDie();
}

Table MakeBiasTable(const Tensor& bias) {
  std::vector<int64_t> ids;
  std::vector<double> values;
  for (int64_t i = 0; i < bias.NumElements(); ++i) {
    ids.push_back(i);
    values.push_back(static_cast<double>(bias.at(i)));
  }
  TableSchema schema(
      {{"KernelID", DataType::kInt64}, {"Bias", DataType::kFloat64}});
  auto t = Table::FromColumns(
      schema, {Column::Ints(std::move(ids)), Column::Floats(std::move(values))});
  return std::move(t).ValueOrDie();
}

/// FC weights as (RowID, ColID, Value).
Table MakeFcWeightTable(const Tensor& weight) {
  const int64_t rows = weight.shape()[0];
  const int64_t cols = weight.shape()[1];
  std::vector<int64_t> row_ids, col_ids;
  std::vector<double> values;
  row_ids.reserve(static_cast<size_t>(rows * cols));
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      row_ids.push_back(r);
      col_ids.push_back(c);
      values.push_back(static_cast<double>(weight.at2(r, c)));
    }
  }
  TableSchema schema({{"RowID", DataType::kInt64},
                      {"ColID", DataType::kInt64},
                      {"Value", DataType::kFloat64}});
  auto t = Table::FromColumns(
      schema, {Column::Ints(std::move(row_ids)), Column::Ints(std::move(col_ids)),
               Column::Floats(std::move(values))});
  return std::move(t).ValueOrDie();
}

/// \brief Stateful model walker emitting static tables + runtime SQL.
class Converter {
 public:
  Converter(ConvertOptions options, db::Database* db)
      : options_(std::move(options)), db_(db) {}

  Result<ConvertedModel> Run(const nn::Model& model) {
    out_.prefix = options_.table_prefix;
    out_.model_name = model.name();
    out_.num_classes = model.num_classes();
    out_.input_shape = model.input_shape();
    out_.options = options_;
    out_.input_table = out_.prefix + "_input";

    std::string current = out_.input_table;
    Shape shape = model.input_shape();
    for (const auto& layer : model.layers()) {
      DL2SQL_ASSIGN_OR_RETURN(current, ConvertLayer(*layer, current, &shape));
    }
    out_.output_table = current;
    return std::move(out_);
  }

 private:
  ConvertOptions options_;
  db::Database* db_;
  ConvertedModel out_;
  int op_id_ = 0;

  std::string NewName(const std::string& stem) {
    return out_.prefix + "_" + stem + std::to_string(op_id_);
  }

  /// Registers a static parameter table, optionally building the hash index
  /// the paper prescribes for the join columns ("we build indices on columns
  /// MatrixID, OrderID, and KernelID").
  Status Deploy(const std::string& name, Table table,
                const std::string& index_column = "") {
    DL2SQL_RETURN_NOT_OK(db_->RegisterTable(name, std::move(table)));
    if (!index_column.empty() && options_.build_indexes) {
      DL2SQL_RETURN_NOT_OK(db_->catalog().CreateIndex(name, index_column));
    }
    out_.static_tables.push_back(name);
    return Status::OK();
  }

  /// Emits one runtime op.
  void Emit(const Layer& layer, std::vector<std::string> sql,
            std::string output_table, const LayerGeometry& geom) {
    ConvertedOp op;
    op.kind = layer.kind();
    op.layer_name = layer.name();
    op.runtime_sql = std::move(sql);
    op.output_table = std::move(output_table);
    op.geom = geom;
    out_.ops.push_back(std::move(op));
  }

  /// Converts a layer; returns the flat output table name and updates *shape.
  Result<std::string> ConvertLayer(const Layer& layer, const std::string& in,
                                   Shape* shape) {
    ++op_id_;
    DL2SQL_ASSIGN_OR_RETURN(Shape out_shape, layer.OutputShape(*shape));
    const Shape in_shape = *shape;
    *shape = out_shape;
    switch (layer.kind()) {
      case LayerKind::kConv2d:
        return ConvertConv(static_cast<const nn::Conv2d&>(layer), in, in_shape,
                           out_shape);
      case LayerKind::kBatchNorm:
        return ConvertBn(static_cast<const nn::BatchNorm&>(layer), in, in_shape);
      case LayerKind::kRelu:
        return ConvertRelu(layer, in);
      case LayerKind::kMaxPool:
      case LayerKind::kAvgPool:
        return ConvertPool(layer, in, in_shape, out_shape);
      case LayerKind::kGlobalAvgPool:
        return ConvertGlobalPool(layer, in, in_shape);
      case LayerKind::kFlatten: {
        // Flat layout is already 1-D channel-major; identity.
        Emit(layer, {}, in, {});
        return in;
      }
      case LayerKind::kLinear:
        return ConvertLinear(static_cast<const nn::Linear&>(layer), in);
      case LayerKind::kSoftmax:
        return ConvertSoftmax(layer, in);
      case LayerKind::kResidualBlock:
        return ConvertResidual(static_cast<const nn::ResidualBlock&>(layer), in,
                               in_shape);
      case LayerKind::kIdentityBlock:
        return ConvertIdentity(static_cast<const nn::IdentityBlock&>(layer), in,
                               in_shape);
      case LayerKind::kDenseBlock:
        return ConvertDense(static_cast<const nn::DenseBlock&>(layer), in,
                            in_shape);
      case LayerKind::kBasicAttention:
        return ConvertAttention(static_cast<const nn::BasicAttention&>(layer),
                                in);
      case LayerKind::kDeconv2d:
        return ConvertDeconv(static_cast<const nn::Deconv2d&>(layer), in,
                             in_shape, out_shape);
      case LayerKind::kInstanceNorm:
        return ConvertInstanceNorm(static_cast<const nn::InstanceNorm&>(layer),
                                   in, in_shape);
    }
    return Status::NotImplemented("DL2SQL translation for ",
                                  nn::LayerKindToString(layer.kind()));
  }

  /// Shared emission of a conv given its (optionally BN-folded) weights.
  Result<std::string> EmitConvSql(const Layer& layer, const std::string& in,
                                  const LayerGeometry& g, const Tensor& weight,
                                  const Tensor* bias) {
    const std::string tag = "conv" + std::to_string(op_id_);
    const std::string out_table = out_.prefix + "_" + tag + "_out";
    const int64_t out_plane = g.out_h * g.out_w;
    std::vector<std::string> sql;

    std::string bias_table;
    if (bias != nullptr) {
      bias_table = out_.prefix + "_" + tag + "_bias";
      DL2SQL_RETURN_NOT_OK(Deploy(bias_table, MakeBiasTable(*bias)));
    }

    // In batched mode every activation row carries a BatchID that is
    // projected through joins and added to every group key.
    const bool batched = options_.batched;
    const std::string b_sel = batched ? "A.BatchID AS BatchID, " : "";
    const std::string b_t_sel = batched ? "t.BatchID AS BatchID, " : "";
    const std::string b_group = batched ? "A.BatchID, " : "";

    if (options_.prejoin == PreJoinStrategy::kNone) {
      const std::string map_table = out_.prefix + "_" + tag + "_map";
      const std::string kernel_table = out_.prefix + "_" + tag + "_kernel";
      DL2SQL_RETURN_NOT_OK(Deploy(map_table, GenerateMappingTable(g), "TupleID"));
      DL2SQL_RETURN_NOT_OK(Deploy(kernel_table, GenerateKernelTable(weight), "OrderID"));
      const std::string fm_table = out_.prefix + "_" + tag + "_fm";
      // Q2: reshape the flat activation into conv windows.
      sql.push_back("CREATE TEMP TABLE " + fm_table + " AS SELECT " + b_sel +
                    "B.MatrixID AS MatrixID, B.OrderID AS OrderID, "
                    "A.Value AS Value FROM " +
                    in + " A, " + map_table + " B WHERE A.TupleID = B.TupleID");
      // Q1: inner join with the kernel table + group-by. The batched variant
      // groups on (BatchID, flattened output id) so the executor's two-int
      // group fast path applies; the single-image form keeps the paper's
      // (KernelID, MatrixID) keys verbatim.
      if (batched) {
        const std::string flat = "B.KernelID * " + std::to_string(out_plane) +
                                 " + A.MatrixID";
        std::string inner = "SELECT A.BatchID AS BatchID, " + flat +
                            " AS TupleID, sum(A.Value * B.Value) AS Value "
                            "FROM " +
                            fm_table + " A INNER JOIN " + kernel_table +
                            " B ON A.OrderID = B.OrderID GROUP BY A.BatchID, " +
                            flat;
        if (bias != nullptr) {
          sql.push_back("CREATE TEMP TABLE " + out_table +
                        " AS SELECT t.BatchID AS BatchID, t.TupleID AS "
                        "TupleID, t.Value + b.Bias AS Value FROM (" +
                        inner + ") t, " + bias_table +
                        " b WHERE intDiv(t.TupleID, " +
                        std::to_string(out_plane) + ") = b.KernelID");
        } else {
          sql.push_back("CREATE TEMP TABLE " + out_table + " AS " + inner);
        }
      } else {
        std::string inner =
            "SELECT B.KernelID AS KernelID, A.MatrixID AS MatrixID, "
            "sum(A.Value * B.Value) AS Value FROM " +
            fm_table + " A INNER JOIN " + kernel_table +
            " B ON A.OrderID = B.OrderID GROUP BY B.KernelID, A.MatrixID";
        if (bias != nullptr) {
          sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " +
                        "t.KernelID * " + std::to_string(out_plane) +
                        " + t.MatrixID AS TupleID, t.Value + b.Bias AS Value "
                        "FROM (" +
                        inner + ") t, " + bias_table +
                        " b WHERE t.KernelID = b.KernelID");
        } else {
          sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " +
                        "t.KernelID * " + std::to_string(out_plane) +
                        " + t.MatrixID AS TupleID, t.Value AS Value FROM (" +
                        inner + ") t");
        }
      }
    } else {
      // Pre-joined strategy: a single join against the fused mapping*kernel
      // table (flattened output ids precomputed offline); no reshape
      // statement and a single-integer group key (plus BatchID in batch
      // mode).
      const std::string pjk_table = out_.prefix + "_" + tag + "_pjk";
      DL2SQL_RETURN_NOT_OK(Deploy(pjk_table, GeneratePreJoinedKernel(g, weight), "TupleID"));
      std::string inner = "SELECT " + b_sel +
                          "B.OutTupleID AS TupleID, sum(A.Value * "
                          "B.Weight) AS Value FROM " +
                          in + " A INNER JOIN " + pjk_table +
                          " B ON A.TupleID = B.TupleID GROUP BY " + b_group +
                          "B.OutTupleID";
      if (bias != nullptr) {
        sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " +
                      b_t_sel +
                      "t.TupleID AS TupleID, t.Value + b.Bias AS "
                      "Value FROM (" +
                      inner + ") t, " + bias_table +
                      " b WHERE intDiv(t.TupleID, " +
                      std::to_string(out_plane) + ") = b.KernelID");
      } else {
        sql.push_back("CREATE TEMP TABLE " + out_table + " AS " + inner);
      }
    }
    Emit(layer, std::move(sql), out_table, g);
    return out_table;
  }

  Result<std::string> ConvertConv(const nn::Conv2d& conv, const std::string& in,
                                  const Shape& in_shape,
                                  const Shape& out_shape) {
    LayerGeometry g;
    g.in_c = in_shape[0];
    g.in_h = in_shape[1];
    g.in_w = in_shape[2];
    g.out_c = out_shape[0];
    g.out_h = out_shape[1];
    g.out_w = out_shape[2];
    g.kernel = conv.kernel_h();
    g.stride = conv.stride();
    g.pad = conv.pad();
    const Tensor* bias = conv.bias() ? &*conv.bias() : nullptr;

    if (options_.prejoin == PreJoinStrategy::kPreJoinFull &&
        pending_bn_fold_ != nullptr) {
      // Should not happen: folding is handled when BN follows conv.
      pending_bn_fold_ = nullptr;
    }
    last_conv_geom_ = g;
    return EmitConvSql(conv, in, g, conv.weight(), bias);
  }

  Result<std::string> ConvertBn(const nn::BatchNorm& bn, const std::string& in,
                                const Shape& in_shape) {
    const std::string tag = "bn" + std::to_string(op_id_);
    const std::string out_table = out_.prefix + "_" + tag + "_out";
    const int64_t plane =
        in_shape.ndim() == 3 ? in_shape[1] * in_shape[2] : 1;
    std::vector<std::string> sql;

    if (options_.bn_mode == BnSqlMode::kPaperBatchStats) {
      if (options_.batched) {
        // Per-image statistics via a grouped self-join (scalar subqueries
        // cannot vary per batch element).
        sql.push_back("CREATE TEMP TABLE " + out_table +
                      " AS SELECT A.BatchID AS BatchID, A.TupleID AS TupleID, "
                      "((A.Value - B.mu) / (B.sd + 0.00005)) AS Value FROM " +
                      in +
                      " A, (SELECT BatchID, avg(Value) AS mu, "
                      "stddevSamp(Value) AS sd FROM " +
                      in + " GROUP BY BatchID) B WHERE A.BatchID = B.BatchID");
      } else {
        // Q4's formula, verbatim semantics.
        sql.push_back("CREATE TEMP TABLE " + out_table +
                      " AS SELECT TupleID, ((Value - (SELECT avg(Value) FROM " +
                      in + ")) / ((SELECT stddevSamp(Value) FROM " + in +
                      ") + 0.00005)) AS Value FROM " + in);
      }
      Emit(bn, std::move(sql), out_table, {});
      return out_table;
    }

    if (options_.prejoin == PreJoinStrategy::kPreJoinFull &&
        !out_.ops.empty() && out_.ops.back().kind == LayerKind::kConv2d) {
      // Fold BN into the preceding conv: rebuild its pre-joined table with
      // scaled weights and adjusted bias, drop the BN statement entirely.
      DL2SQL_RETURN_NOT_OK(FoldBnIntoPreviousConv(bn));
      const std::string conv_out = out_.ops.back().output_table;
      Emit(bn, {}, conv_out, {});
      // Output table unchanged: the conv output is already normalized.
      return conv_out;
    }

    const std::string bn_table = out_.prefix + "_" + tag + "_params";
    DL2SQL_RETURN_NOT_OK(Deploy(bn_table, MakeBnTable(bn)));
    const std::string b_sel = options_.batched ? "A.BatchID AS BatchID, " : "";
    sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " + b_sel +
                  "A.TupleID AS TupleID, A.Value * B.Scale + "
                  "B.Shift AS Value FROM " +
                  in + " A, " + bn_table + " B WHERE intDiv(A.TupleID, " +
                  std::to_string(plane) + ") = B.ChannelID");
    Emit(bn, std::move(sql), out_table, {});
    return out_table;
  }

  /// Rewrites the most recent conv op's static tables with BN folded in.
  Status FoldBnIntoPreviousConv(const nn::BatchNorm& bn) {
    ConvertedOp& conv_op = out_.ops.back();
    const LayerGeometry& g = conv_op.geom;
    // Locate the conv's pjk & bias tables by name convention.
    std::string pjk_name, bias_name;
    for (const auto& t : out_.static_tables) {
      if (t.find("_pjk") != std::string::npos &&
          t.find("conv") != std::string::npos) {
        pjk_name = t;  // last matching wins (most recent conv)
      }
      if (t.find("conv") != std::string::npos &&
          t.find("_bias") != std::string::npos) {
        bias_name = t;
      }
    }
    if (pjk_name.empty()) {
      return Status::InternalError("BN folding requires a pre-joined conv");
    }
    DL2SQL_ASSIGN_OR_RETURN(db::TablePtr pjk, db_->catalog().GetTable(pjk_name));
    // Folding rewrites columns in place, so a paged parameter table must be
    // resident first (it re-pages on the next DML sync if still large).
    DL2SQL_RETURN_NOT_OK(pjk->EnsureResident());
    // Scale weights per output channel.
    std::vector<double> scale(static_cast<size_t>(g.out_c));
    std::vector<double> shift(static_cast<size_t>(g.out_c));
    for (int64_t c = 0; c < g.out_c; ++c) {
      const double s = static_cast<double>(bn.gamma().at(c)) /
                       std::sqrt(static_cast<double>(bn.running_var().at(c)) +
                                 bn.eps());
      scale[static_cast<size_t>(c)] = s;
      shift[static_cast<size_t>(c)] = static_cast<double>(bn.beta().at(c)) -
                                      static_cast<double>(bn.running_mean().at(c)) * s;
    }
    {
      const int64_t out_plane = g.out_h * g.out_w;
      const auto& out_ids = pjk->column(0).ints();  // OutTupleID
      auto& weights = pjk->mutable_column(2).mutable_floats();
      for (size_t r = 0; r < weights.size(); ++r) {
        weights[r] *= scale[static_cast<size_t>(out_ids[r] / out_plane)];
      }
    }
    if (!bias_name.empty()) {
      DL2SQL_ASSIGN_OR_RETURN(db::TablePtr bias_t,
                              db_->catalog().GetTable(bias_name));
      DL2SQL_RETURN_NOT_OK(bias_t->EnsureResident());
      const auto& ids = bias_t->column(0).ints();
      auto& biases = bias_t->mutable_column(1).mutable_floats();
      for (size_t r = 0; r < biases.size(); ++r) {
        const size_t c = static_cast<size_t>(ids[r]);
        biases[r] = biases[r] * scale[c] + shift[c];
      }
    }
    return Status::OK();
  }

  /// Instance norm: per-channel statistics of the *current* activation,
  /// computed by a grouped aggregation and joined back — Table II lists it
  /// as Supported. stddevSamp is corrected to the population variance the
  /// operator defines (the spatial plane size is a compile-time constant).
  Result<std::string> ConvertInstanceNorm(const nn::InstanceNorm& inorm,
                                          const std::string& in,
                                          const Shape& in_shape) {
    if (in_shape.ndim() != 3) {
      return Status::InvalidArgument("InstanceNorm translation requires a ",
                                     "CHW activation");
    }
    const std::string tag = "inorm" + std::to_string(op_id_);
    const std::string stats_table = out_.prefix + "_" + tag + "_stats";
    const std::string params_table = out_.prefix + "_" + tag + "_params";
    const std::string out_table = out_.prefix + "_" + tag + "_out";
    const int64_t plane = in_shape[1] * in_shape[2];

    // Per-channel affine parameters (gamma, beta).
    {
      const auto params = inorm.Parameters();
      const Tensor& gamma = params[0].tensor;
      const Tensor& beta = params[1].tensor;
      std::vector<int64_t> channels;
      std::vector<double> gammas, betas;
      for (int64_t c = 0; c < gamma.NumElements(); ++c) {
        channels.push_back(c);
        gammas.push_back(static_cast<double>(gamma.at(c)));
        betas.push_back(static_cast<double>(beta.at(c)));
      }
      TableSchema schema({{"ChannelID", DataType::kInt64},
                          {"Gamma", DataType::kFloat64},
                          {"Beta", DataType::kFloat64}});
      DL2SQL_ASSIGN_OR_RETURN(
          Table t, Table::FromColumns(schema,
                                      {Column::Ints(std::move(channels)),
                                       Column::Floats(std::move(gammas)),
                                       Column::Floats(std::move(betas))}));
      DL2SQL_RETURN_NOT_OK(Deploy(params_table, std::move(t), "ChannelID"));
    }

    // stddevSamp^2 * (n-1)/n = population variance over the plane.
    const std::string var_correction =
        "(B.sd * B.sd * " +
        std::to_string(static_cast<double>(plane - 1) /
                       static_cast<double>(plane)) +
        " + " + std::to_string(static_cast<double>(inorm.eps())) + ")";
    const std::string chan = "intDiv(TupleID, " + std::to_string(plane) + ")";
    const std::string b_sel = options_.batched ? "BatchID, " : "";
    const std::string b_a_sel = options_.batched ? "A.BatchID AS BatchID, " : "";
    const std::string b_join =
        options_.batched ? "A.BatchID = B.BatchID AND " : "";

    std::vector<std::string> sql;
    sql.push_back("CREATE TEMP TABLE " + stats_table + " AS SELECT " + b_sel +
                  chan +
                  " AS ChannelID, avg(Value) AS mu, stddevSamp(Value) "
                  "AS sd FROM " +
                  in + " GROUP BY " + b_sel + chan);
    sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " + b_a_sel +
                  "A.TupleID AS TupleID, ((A.Value - B.mu) / sqrt" +
                  var_correction + ") * C.Gamma + C.Beta AS Value FROM " + in +
                  " A, " + stats_table + " B, " + params_table + " C WHERE " +
                  b_join + "intDiv(A.TupleID, " + std::to_string(plane) +
                  ") = B.ChannelID AND B.ChannelID = C.ChannelID");
    Emit(inorm, std::move(sql), out_table, {});
    return out_table;
  }

  Result<std::string> ConvertRelu(const Layer& layer, const std::string& in) {
    const std::string out_table =
        out_.prefix + "_relu" + std::to_string(op_id_) + "_out";
    const std::string cols = options_.batched ? "BatchID, TupleID" : "TupleID";
    std::vector<std::string> sql;
    if (options_.relu_as_update) {
      // Q5 style: copy then clamp in place.
      sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " + cols +
                    ", Value FROM " + in);
      sql.push_back("UPDATE " + out_table + " SET Value = 0 WHERE Value < 0");
    } else {
      sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " + cols +
                    ", greatest(0.0, Value) AS Value FROM " + in);
    }
    Emit(layer, std::move(sql), out_table, {});
    return out_table;
  }

  Result<std::string> ConvertPool(const Layer& layer, const std::string& in,
                                  const Shape& in_shape,
                                  const Shape& out_shape) {
    const bool is_max = layer.kind() == LayerKind::kMaxPool;
    const int64_t window = is_max
                               ? static_cast<const nn::MaxPool2d&>(layer).window()
                               : static_cast<const nn::AvgPool2d&>(layer).window();
    const int64_t stride = is_max
                               ? static_cast<const nn::MaxPool2d&>(layer).stride()
                               : static_cast<const nn::AvgPool2d&>(layer).stride();
    const std::string tag = "pool" + std::to_string(op_id_);
    const std::string map_table = out_.prefix + "_" + tag + "_map";
    const std::string out_table = out_.prefix + "_" + tag + "_out";
    DL2SQL_RETURN_NOT_OK(Deploy(
        map_table,
        GeneratePoolingMap(in_shape[0], in_shape[1], in_shape[2], window,
                           stride),
        "TupleID"));
    // Q3: windowed aggregation via the pooling map.
    const std::string b_sel = options_.batched ? "A.BatchID AS BatchID, " : "";
    const std::string b_group = options_.batched ? "A.BatchID, " : "";
    std::vector<std::string> sql;
    sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " + b_sel +
                  "B.MatrixID AS TupleID, " +
                  (is_max ? std::string("max") : std::string("avg")) +
                  "(A.Value) AS Value FROM " + in + " A, " + map_table +
                  " B WHERE A.TupleID = B.TupleID GROUP BY " + b_group +
                  "B.MatrixID");
    LayerGeometry g;
    g.in_c = in_shape[0];
    g.in_h = in_shape[1];
    g.in_w = in_shape[2];
    g.out_c = out_shape[0];
    g.out_h = out_shape[1];
    g.out_w = out_shape[2];
    g.kernel = window;
    g.stride = stride;
    Emit(layer, std::move(sql), out_table, g);
    return out_table;
  }

  Result<std::string> ConvertGlobalPool(const Layer& layer,
                                        const std::string& in,
                                        const Shape& in_shape) {
    const std::string out_table =
        out_.prefix + "_gap" + std::to_string(op_id_) + "_out";
    const int64_t plane = in_shape[1] * in_shape[2];
    const std::string b_sel = options_.batched ? "BatchID, " : "";
    std::vector<std::string> sql;
    sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " + b_sel +
                  "intDiv(TupleID, " + std::to_string(plane) +
                  ") AS TupleID, avg(Value) AS Value FROM " + in +
                  " GROUP BY " + b_sel + "intDiv(TupleID, " +
                  std::to_string(plane) + ")");
    Emit(layer, std::move(sql), out_table, {});
    return out_table;
  }

  Result<std::string> ConvertLinear(const nn::Linear& fc, const std::string& in) {
    const std::string tag = "fc" + std::to_string(op_id_);
    const std::string w_table = out_.prefix + "_" + tag + "_w";
    const std::string out_table = out_.prefix + "_" + tag + "_out";
    DL2SQL_RETURN_NOT_OK(Deploy(w_table, MakeFcWeightTable(fc.weight()), "ColID"));
    const std::string b_sel = options_.batched ? "A.BatchID AS BatchID, " : "";
    const std::string b_t_sel = options_.batched ? "t.BatchID AS BatchID, " : "";
    const std::string b_group = options_.batched ? "A.BatchID, " : "";
    std::string inner = "SELECT " + b_sel +
                        "B.RowID AS RowID, sum(A.Value * B.Value) AS "
                        "Value FROM " +
                        in + " A, " + w_table +
                        " B WHERE A.TupleID = B.ColID GROUP BY " + b_group +
                        "B.RowID";
    std::vector<std::string> sql;
    if (fc.bias()) {
      const std::string b_table = out_.prefix + "_" + tag + "_b";
      DL2SQL_RETURN_NOT_OK(Deploy(b_table, MakeBiasTable(*fc.bias())));
      sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " + b_t_sel +
                    "t.RowID AS TupleID, t.Value + b.Bias AS Value "
                    "FROM (" +
                    inner + ") t, " + b_table + " b WHERE t.RowID = b.KernelID");
    } else {
      sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " + b_t_sel +
                    "t.RowID AS TupleID, t.Value AS Value FROM (" + inner +
                    ") t");
    }
    Emit(fc, std::move(sql), out_table, {});
    return out_table;
  }

  /// Softmax statements: scalar subqueries in single mode, grouped
  /// per-BatchID joins in batch mode.
  std::vector<std::string> MakeSoftmaxSql(const std::string& in,
                                          const std::string& exp_table,
                                          const std::string& out_table) const {
    std::vector<std::string> sql;
    if (options_.batched) {
      sql.push_back("CREATE TEMP TABLE " + exp_table +
                    " AS SELECT A.BatchID AS BatchID, A.TupleID AS TupleID, "
                    "exp(A.Value - B.M) AS Value FROM " +
                    in + " A, (SELECT BatchID, max(Value) AS M FROM " + in +
                    " GROUP BY BatchID) B WHERE A.BatchID = B.BatchID");
      sql.push_back("CREATE TEMP TABLE " + out_table +
                    " AS SELECT A.BatchID AS BatchID, A.TupleID AS TupleID, "
                    "A.Value / B.S AS Value FROM " +
                    exp_table + " A, (SELECT BatchID, sum(Value) AS S FROM " +
                    exp_table + " GROUP BY BatchID) B WHERE A.BatchID = "
                    "B.BatchID");
    } else {
      sql.push_back("CREATE TEMP TABLE " + exp_table +
                    " AS SELECT TupleID, exp(Value - (SELECT max(Value) FROM " +
                    in + ")) AS Value FROM " + in);
      sql.push_back("CREATE TEMP TABLE " + out_table +
                    " AS SELECT TupleID, Value / (SELECT sum(Value) FROM " +
                    exp_table + ") AS Value FROM " + exp_table);
    }
    return sql;
  }

  Result<std::string> ConvertSoftmax(const Layer& layer, const std::string& in) {
    const std::string tag = "sm" + std::to_string(op_id_);
    const std::string exp_table = out_.prefix + "_" + tag + "_exp";
    const std::string out_table = out_.prefix + "_" + tag + "_out";
    Emit(layer, MakeSoftmaxSql(in, exp_table, out_table), out_table, {});
    return out_table;
  }

  /// Runs a child-layer sequence starting from `in`; returns the last table.
  Result<std::string> ConvertSequence(const std::vector<nn::LayerPtr>& layers,
                                      const std::string& in, Shape* shape) {
    std::string cur = in;
    for (const auto& l : layers) {
      DL2SQL_ASSIGN_OR_RETURN(cur, ConvertLayer(*l, cur, shape));
    }
    return cur;
  }

  Result<std::string> ConvertResidual(const nn::ResidualBlock& block,
                                      const std::string& in,
                                      const Shape& in_shape) {
    Shape main_shape = in_shape;
    DL2SQL_ASSIGN_OR_RETURN(std::string main_out,
                            ConvertSequence(block.main_path(), in, &main_shape));
    Shape sc_shape = in_shape;
    DL2SQL_ASSIGN_OR_RETURN(std::string sc_out,
                            ConvertSequence(block.shortcut(), in, &sc_shape));
    ++op_id_;
    const std::string out_table =
        out_.prefix + "_res" + std::to_string(op_id_) + "_out";
    std::vector<std::string> sql;
    // Q5: residual link + ReLU.
    sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " +
                  BatchSel("A") +
                  "A.TupleID AS TupleID, greatest(0.0, A.Value + "
                  "B.Value) AS Value FROM " +
                  main_out + " A, " + sc_out + " B WHERE " + BatchJoin() +
                  "A.TupleID = B.TupleID");
    Emit(block, std::move(sql), out_table, {});
    return out_table;
  }

  Result<std::string> ConvertIdentity(const nn::IdentityBlock& block,
                                      const std::string& in,
                                      const Shape& in_shape) {
    Shape main_shape = in_shape;
    DL2SQL_ASSIGN_OR_RETURN(std::string main_out,
                            ConvertSequence(block.main_path(), in, &main_shape));
    ++op_id_;
    const std::string out_table =
        out_.prefix + "_idn" + std::to_string(op_id_) + "_out";
    std::vector<std::string> sql;
    sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " +
                  BatchSel("A") +
                  "A.TupleID AS TupleID, greatest(0.0, A.Value + "
                  "B.Value) AS Value FROM " +
                  main_out + " A, " + in + " B WHERE " + BatchJoin() +
                  "A.TupleID = B.TupleID");
    Emit(block, std::move(sql), out_table, {});
    return out_table;
  }

  /// "A.BatchID AS BatchID, " in batch mode, empty otherwise.
  std::string BatchSel(const std::string& alias) const {
    return options_.batched ? alias + ".BatchID AS BatchID, " : "";
  }
  /// "A.BatchID = B.BatchID AND " in batch mode, empty otherwise.
  std::string BatchJoin() const {
    return options_.batched ? "A.BatchID = B.BatchID AND " : "";
  }

  Result<std::string> ConvertDense(const nn::DenseBlock& block,
                                   const std::string& in,
                                   const Shape& in_shape) {
    // Stages are (conv, bn, relu) triples over growing concatenations.
    const auto children = block.Children();
    if (children.size() % 3 != 0) {
      return Status::InternalError("dense block structure unexpected");
    }
    std::vector<std::string> feats{in};
    std::vector<int64_t> feat_sizes{in_shape.NumElements()};
    const int64_t plane = in_shape[1] * in_shape[2];
    Shape concat_shape = in_shape;
    std::string concat = in;

    for (size_t s = 0; s * 3 < children.size(); ++s) {
      if (s > 0 || feats.size() > 1) {
        // Build the concatenation table by offset inserts.
        ++op_id_;
        concat = out_.prefix + "_cat" + std::to_string(op_id_);
        const std::string cols =
            options_.batched ? "BatchID, TupleID" : "TupleID";
        const std::string off_cols = options_.batched ? "BatchID, " : "";
        std::vector<std::string> sql;
        sql.push_back("CREATE TEMP TABLE " + concat + " AS SELECT " + cols +
                      ", Value FROM " + feats[0]);
        int64_t offset = feat_sizes[0];
        for (size_t f = 1; f < feats.size(); ++f) {
          sql.push_back("INSERT INTO " + concat + " SELECT " + off_cols +
                        "TupleID + " + std::to_string(offset) +
                        " AS TupleID, Value FROM " + feats[f]);
          offset += feat_sizes[f];
        }
        ConvertedOp op;
        op.kind = LayerKind::kDenseBlock;
        op.layer_name = block.name() + ".concat" + std::to_string(s);
        op.runtime_sql = std::move(sql);
        op.output_table = concat;
        out_.ops.push_back(std::move(op));
        concat_shape = Shape({offset / plane, in_shape[1], in_shape[2]});
      }
      Shape stage_shape = concat_shape;
      std::vector<nn::LayerPtr> stage;
      // Children are raw pointers; wrap them in non-owning shared_ptrs for
      // ConvertSequence.
      for (size_t i = 0; i < 3; ++i) {
        const Layer* l = children[s * 3 + i];
        stage.push_back(nn::LayerPtr(nn::LayerPtr{}, const_cast<Layer*>(l)));
      }
      DL2SQL_ASSIGN_OR_RETURN(std::string stage_out,
                              ConvertSequence(stage, concat, &stage_shape));
      feats.push_back(stage_out);
      feat_sizes.push_back(stage_shape.NumElements());
    }

    // Final concat of everything.
    ++op_id_;
    const std::string out_table = out_.prefix + "_dense" +
                                  std::to_string(op_id_) + "_out";
    const std::string cols = options_.batched ? "BatchID, TupleID" : "TupleID";
    const std::string off_cols = options_.batched ? "BatchID, " : "";
    std::vector<std::string> sql;
    sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " + cols +
                  ", Value FROM " + feats[0]);
    int64_t offset = feat_sizes[0];
    for (size_t f = 1; f < feats.size(); ++f) {
      sql.push_back("INSERT INTO " + out_table + " SELECT " + off_cols +
                    "TupleID + " + std::to_string(offset) +
                    " AS TupleID, Value FROM " + feats[f]);
      offset += feat_sizes[f];
    }
    Emit(block, std::move(sql), out_table, {});
    return out_table;
  }

  Result<std::string> ConvertAttention(const nn::BasicAttention& attn,
                                       const std::string& in) {
    Shape dummy({attn.attention_proj().in_dim()});
    Shape s1 = dummy;
    DL2SQL_ASSIGN_OR_RETURN(std::string scores,
                            ConvertLayer(attn.attention_proj(), in, &s1));
    DL2SQL_ASSIGN_OR_RETURN(std::string weights,
                            ConvertSoftmaxHelper(scores));
    Shape s2 = dummy;
    DL2SQL_ASSIGN_OR_RETURN(std::string values,
                            ConvertLayer(attn.value_proj(), in, &s2));
    ++op_id_;
    const std::string out_table =
        out_.prefix + "_attn" + std::to_string(op_id_) + "_out";
    std::vector<std::string> sql;
    sql.push_back("CREATE TEMP TABLE " + out_table + " AS SELECT " +
                  BatchSel("A") +
                  "A.TupleID AS TupleID, A.Value * B.Value AS Value "
                  "FROM " +
                  weights + " A, " + values + " B WHERE " + BatchJoin() +
                  "A.TupleID = B.TupleID");
    Emit(attn, std::move(sql), out_table, {});
    return out_table;
  }

  Result<std::string> ConvertSoftmaxHelper(const std::string& in) {
    ++op_id_;
    const std::string tag = "smx" + std::to_string(op_id_);
    const std::string exp_table = out_.prefix + "_" + tag + "_exp";
    const std::string out_table = out_.prefix + "_" + tag + "_out";
    ConvertedOp op;
    op.kind = LayerKind::kSoftmax;
    op.layer_name = tag;
    op.runtime_sql = MakeSoftmaxSql(in, exp_table, out_table);
    op.output_table = out_table;
    out_.ops.push_back(std::move(op));
    return out_table;
  }

  Result<std::string> ConvertDeconv(const nn::Deconv2d& deconv,
                                    const std::string& in,
                                    const Shape& in_shape,
                                    const Shape& out_shape) {
    // Transposed conv == zero-stuffed upsample + stride-1 conv with the
    // spatially flipped, channel-transposed kernel.
    const int64_t k = deconv.weight().shape()[2];
    const int64_t s = deconv.stride();
    const int64_t p = deconv.pad();
    const int64_t in_c = in_shape[0];
    const int64_t up_h = (in_shape[1] - 1) * s + 1;
    const int64_t up_w = (in_shape[2] - 1) * s + 1;

    // Upsample map: (NewTupleID, OldTupleID); zero positions are absent.
    std::vector<int64_t> new_ids, old_ids;
    for (int64_t c = 0; c < in_c; ++c) {
      for (int64_t y = 0; y < in_shape[1]; ++y) {
        for (int64_t x = 0; x < in_shape[2]; ++x) {
          new_ids.push_back((c * up_h + y * s) * up_w + x * s);
          old_ids.push_back((c * in_shape[1] + y) * in_shape[2] + x);
        }
      }
    }
    TableSchema up_schema(
        {{"NewID", DataType::kInt64}, {"OldID", DataType::kInt64}});
    DL2SQL_ASSIGN_OR_RETURN(
        Table up_map,
        Table::FromColumns(up_schema, {Column::Ints(std::move(new_ids)),
                                       Column::Ints(std::move(old_ids))}));
    const std::string tag = "deconv" + std::to_string(op_id_);
    const std::string up_table_name = out_.prefix + "_" + tag + "_upmap";
    DL2SQL_RETURN_NOT_OK(Deploy(up_table_name, std::move(up_map), "OldID"));
    const std::string up_out = out_.prefix + "_" + tag + "_up";
    std::vector<std::string> sql;
    sql.push_back("CREATE TEMP TABLE " + up_out + " AS SELECT " +
                  BatchSel("A") + "B.NewID AS TupleID, A.Value AS Value FROM " +
                  in + " A, " + up_table_name + " B WHERE A.TupleID = B.OldID");
    ConvertedOp up_op;
    up_op.kind = LayerKind::kDeconv2d;
    up_op.layer_name = deconv.name() + ".upsample";
    up_op.runtime_sql = std::move(sql);
    up_op.output_table = up_out;
    out_.ops.push_back(std::move(up_op));

    // Flipped kernel.
    const int64_t out_c = deconv.weight().shape()[0];
    Tensor flipped(Shape({out_c, in_c, k, k}));
    for (int64_t oc = 0; oc < out_c; ++oc) {
      for (int64_t ic = 0; ic < in_c; ++ic) {
        for (int64_t i = 0; i < k; ++i) {
          for (int64_t j = 0; j < k; ++j) {
            flipped.at((((oc * in_c) + ic) * k + i) * k + j) = deconv.weight().at(
                (((oc * in_c) + ic) * k + (k - 1 - i)) * k + (k - 1 - j));
          }
        }
      }
    }
    LayerGeometry g;
    g.in_c = in_c;
    g.in_h = up_h;
    g.in_w = up_w;
    g.out_c = out_shape[0];
    g.out_h = out_shape[1];
    g.out_w = out_shape[2];
    g.kernel = k;
    g.stride = 1;
    g.pad = k - 1 - p;
    ++op_id_;
    const auto params = deconv.Parameters();
    const Tensor* bias = params.size() > 1 ? &params[1].tensor : nullptr;
    return EmitConvSql(deconv, up_out, g, flipped, bias);
  }

  const void* pending_bn_fold_ = nullptr;
  LayerGeometry last_conv_geom_;
};

}  // namespace

std::vector<std::string> ConvertedModel::RuntimeTables() const {
  std::vector<std::string> tables{input_table};
  for (const auto& op : ops) {
    for (const auto& stmt : op.runtime_sql) {
      // Every runtime statement that creates a table names it right after
      // "CREATE TEMP TABLE ".
      static const std::string kPrefix = "CREATE TEMP TABLE ";
      if (stmt.compare(0, kPrefix.size(), kPrefix) == 0) {
        const size_t start = kPrefix.size();
        const size_t end = stmt.find(' ', start);
        tables.push_back(stmt.substr(start, end - start));
      }
    }
  }
  return tables;
}

Result<ConvertedModel> ConvertModel(const nn::Model& model,
                                    const ConvertOptions& options,
                                    db::Database* db) {
  Converter converter(options, db);
  return converter.Run(model);
}

Result<uint64_t> StaticStorageBytes(const ConvertedModel& model,
                                    const db::Database& db, bool compressed) {
  uint64_t bytes = 0;
  for (const auto& name : model.static_tables) {
    DL2SQL_ASSIGN_OR_RETURN(db::TablePtr t, db.catalog().GetTable(name));
    if (compressed) {
      DL2SQL_ASSIGN_OR_RETURN(uint64_t b, db::CompressedTableBytes(*t));
      bytes += b;
    } else {
      bytes += t->ByteSize();
    }
  }
  return bytes;
}

}  // namespace dl2sql::core
