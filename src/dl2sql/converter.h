/// \file converter.h
/// \brief DL2SQL model-to-relational conversion (Section III-C).
///
/// A trained minidl Model is turned into:
///  - *static* relational tables holding its parameters and geometry:
///    kernel tables {KernelID, OrderID, Value} (Fig. 3), kernel-mapping
///    tables {MatrixID, OrderID, TupleID} generated offline per Algorithm 2,
///    bias / batch-norm parameter tables, and FC weight tables; and
///  - *runtime* SQL statements per layer: the Q1 conv join + group-by, the
///    Q2 reshape join, the Q3 pooling aggregation, BN/ReLU math expressions,
///    and the residual-link addition of Q5.
///
/// Layout conventions (this repo's multi-channel generalization of the
/// paper's per-channel tables, see DESIGN.md):
///  - flat activations are tables (TupleID, Value) with channel-major
///    TupleID = c * H*W + y * W + x;
///  - a conv FeatureMap table row is (MatrixID, OrderID, Value) where
///    MatrixID is the output-pixel window and OrderID = ic*k*k + i*k + j
///    indexes the patch across all input channels (im2col order);
///  - kernel tables carry all output channels: KernelID = oc.
///
/// Zero padding needs no storage: padded positions simply have no FeatureMap
/// rows, and SUM over the join treats them as zero contributions.
#pragma once

#include <string>
#include <vector>

#include "db/database.h"
#include "nn/model.h"

namespace dl2sql::core {

/// Pre-join strategies of Fig. 11.
enum class PreJoinStrategy : int {
  /// Faithful Q1/Q2/Q3 pipeline: reshape join + kernel join per conv.
  kNone = 0,
  /// Kernel tables are pre-joined with the mapping tables offline, removing
  /// the Q2 reshape join (one join + group-by per conv).
  kPreJoinMapping = 1,
  /// kPreJoinMapping plus folding BatchNorm affine parameters into the
  /// pre-joined weights/biases offline, removing the BN statements entirely.
  kPreJoinFull = 2,
};

/// How BatchNorm is translated.
enum class BnSqlMode : int {
  /// Inference semantics: per-channel affine from frozen running stats
  /// (matches the native model bit-for-bit up to float error).
  kRunningStats = 0,
  /// The paper's Q4 formula: normalize by the *current* feature map's mean
  /// and stddevSamp via scalar subqueries. Kept for fidelity demonstrations;
  /// does not match native inference numerically.
  kPaperBatchStats = 1,
};

struct ConvertOptions {
  std::string table_prefix = "m";
  PreJoinStrategy prejoin = PreJoinStrategy::kNone;
  BnSqlMode bn_mode = BnSqlMode::kRunningStats;
  /// Translate ReLU as the paper's Q5 UPDATE (true) or as a greatest()
  /// projection (false).
  bool relu_as_update = false;
  /// Build hash indexes on the static parameter tables' join columns
  /// (Section IV-A: "we build indices on columns MatrixID, OrderID, and
  /// KernelID"). Disable only for ablation measurements.
  bool build_indexes = true;
  /// Batched pipelines: every activation table carries a BatchID column and
  /// one pipeline run infers a whole batch of keyframes (the paper notes
  /// nUDFs are "performed in a batch manner"). Static parameter tables are
  /// shared across the batch; group-bys and residual joins key on BatchID.
  bool batched = false;
};

/// Geometry of one translated layer (drives the custom cost model).
struct LayerGeometry {
  int64_t in_c = 0, in_h = 0, in_w = 0;
  int64_t out_c = 0, out_h = 0, out_w = 0;
  int64_t kernel = 0, stride = 1, pad = 0;
};

/// One translated primitive operator.
struct ConvertedOp {
  nn::LayerKind kind;
  std::string layer_name;
  /// Statements executed at inference time, in order. Tables they create are
  /// recreated on every run (the runner prepends DROP TABLE IF EXISTS).
  std::vector<std::string> runtime_sql;
  /// Name of the flat (TupleID, Value) table produced by this op.
  std::string output_table;
  LayerGeometry geom;
};

/// A fully converted model.
struct ConvertedModel {
  std::string prefix;
  std::string model_name;
  int64_t num_classes = 0;
  Shape input_shape;
  /// Flat input table the runner fills per inference: (TupleID, Value).
  std::string input_table;
  std::string output_table;
  std::vector<ConvertedOp> ops;
  /// Names of the static parameter tables deployed into the catalog.
  std::vector<std::string> static_tables;
  ConvertOptions options;

  /// Every table this run creates at inference time (for cleanup).
  std::vector<std::string> RuntimeTables() const;
};

/// Converts `model` and deploys its static tables into `db`'s catalog.
/// Fails for unsupported layer kinds (Table II's "Unsupported" rows).
Result<ConvertedModel> ConvertModel(const nn::Model& model,
                                    const ConvertOptions& options,
                                    db::Database* db);

/// Total catalog bytes of the converted model's static tables (Table IV),
/// as stored with the columnar codec (delta-varint IDs + float32 values),
/// matching how ClickHouse would persist them. Pass compressed=false for raw
/// in-memory bytes.
Result<uint64_t> StaticStorageBytes(const ConvertedModel& model,
                                    const db::Database& db,
                                    bool compressed = true);

/// \name Offline table generators (exposed for unit tests)
/// @{

/// Algorithm 2 (multi-channel form): kernel-mapping rows for reshaping a flat
/// (TupleID, Value) activation of shape in_c x in_h x in_w into conv windows.
/// Rows: (MatrixID, OrderID, TupleID); padded positions are omitted.
db::Table GenerateMappingTable(const LayerGeometry& g);

/// Pooling window map: (MatrixID, TupleID) with channel-major MatrixID.
db::Table GeneratePoolingMap(int64_t channels, int64_t in_h, int64_t in_w,
                             int64_t window, int64_t stride);

/// Kernel table (Fig. 3): (KernelID, OrderID, Value) in im2col OrderID order.
db::Table GenerateKernelTable(const Tensor& weight);

/// Pre-joined mapping x kernel: (KernelID, MatrixID, TupleID, Weight).
db::Table GeneratePreJoinedKernel(const LayerGeometry& g, const Tensor& weight);

/// @}

}  // namespace dl2sql::core
