#include "dl2sql/pipeline.h"

#include <algorithm>

namespace dl2sql::core {

using db::Column;
using db::DataType;
using db::Table;
using db::TableSchema;

namespace {

TableSchema FlatSchema(bool batched) {
  if (batched) {
    return TableSchema({{"BatchID", DataType::kInt64},
                        {"TupleID", DataType::kInt64},
                        {"Value", DataType::kFloat64}});
  }
  return TableSchema(
      {{"TupleID", DataType::kInt64}, {"Value", DataType::kFloat64}});
}

}  // namespace

Status Dl2SqlRunner::LoadInput(const Tensor& input) {
  const int64_t n = input.NumElements();
  std::vector<int64_t> ids(static_cast<size_t>(n));
  std::vector<double> values(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    ids[static_cast<size_t>(i)] = i;
    values[static_cast<size_t>(i)] = static_cast<double>(input.at(i));
  }
  DL2SQL_ASSIGN_OR_RETURN(
      Table t,
      Table::FromColumns(FlatSchema(false), {Column::Ints(std::move(ids)),
                                             Column::Floats(std::move(values))}));
  return db_->RegisterTable(model_.input_table, std::move(t),
                            /*temporary=*/true);
}

Status Dl2SqlRunner::LoadInputBatch(const std::vector<Tensor>& inputs) {
  int64_t total = 0;
  for (const auto& t : inputs) total += t.NumElements();
  std::vector<int64_t> batch_ids, ids;
  std::vector<double> values;
  batch_ids.reserve(static_cast<size_t>(total));
  ids.reserve(static_cast<size_t>(total));
  values.reserve(static_cast<size_t>(total));
  for (size_t b = 0; b < inputs.size(); ++b) {
    const Tensor& t = inputs[b];
    for (int64_t i = 0; i < t.NumElements(); ++i) {
      batch_ids.push_back(static_cast<int64_t>(b));
      ids.push_back(i);
      values.push_back(static_cast<double>(t.at(i)));
    }
  }
  DL2SQL_ASSIGN_OR_RETURN(
      Table t, Table::FromColumns(FlatSchema(true),
                                  {Column::Ints(std::move(batch_ids)),
                                   Column::Ints(std::move(ids)),
                                   Column::Floats(std::move(values))}));
  return db_->RegisterTable(model_.input_table, std::move(t),
                            /*temporary=*/true);
}

Status Dl2SqlRunner::Cleanup() {
  for (const auto& t : model_.RuntimeTables()) {
    DL2SQL_RETURN_NOT_OK(db_->Execute("DROP TABLE IF EXISTS " + t).status());
  }
  return Status::OK();
}

Status Dl2SqlRunner::RunStatements(PipelineRunStats* stats) {
  Stopwatch infer_watch;
  for (const auto& op : model_.ops) {
    Stopwatch op_watch;
    for (const auto& stmt : op.runtime_sql) {
      static const std::string kPrefix = "CREATE TEMP TABLE ";
      if (stmt.compare(0, kPrefix.size(), kPrefix) == 0) {
        const size_t start = kPrefix.size();
        const size_t end = stmt.find(' ', start);
        const std::string table = stmt.substr(start, end - start);
        DL2SQL_RETURN_NOT_OK(
            db_->Execute("DROP TABLE IF EXISTS " + table).status());
      }
      DL2SQL_RETURN_NOT_OK(db_->Execute(stmt).status().WithContext(
          "running generated SQL for " + op.layer_name + ": " +
          stmt.substr(0, 120)));
    }
    stats->per_op.push_back({op.layer_name, op.kind, op_watch.ElapsedSeconds()});
  }
  stats->infer_seconds = infer_watch.ElapsedSeconds();
  return Status::OK();
}

Result<Tensor> Dl2SqlRunner::Infer(const Tensor& input,
                                   PipelineRunStats* stats) {
  if (model_.options.batched) {
    DL2SQL_ASSIGN_OR_RETURN(std::vector<Tensor> out, InferBatch({input}, stats));
    return out[0];
  }
  if (input.shape() != model_.input_shape) {
    return Status::InvalidArgument("DL2SQL model ", model_.model_name,
                                   " expects input ",
                                   model_.input_shape.ToString(), ", got ",
                                   input.shape().ToString());
  }
  PipelineRunStats local;
  db_->set_cost_accumulator(&local.clause_costs);
  auto body = [&]() -> Result<Tensor> {
    {
      Stopwatch watch;
      DL2SQL_RETURN_NOT_OK(LoadInput(input));
      local.load_seconds = watch.ElapsedSeconds();
    }
    DL2SQL_RETURN_NOT_OK(RunStatements(&local));
    DL2SQL_ASSIGN_OR_RETURN(
        Table result,
        db_->Execute("SELECT TupleID, Value FROM " + model_.output_table +
                     " ORDER BY TupleID"));
    Tensor activation(Shape({result.num_rows()}));
    for (int64_t i = 0; i < result.num_rows(); ++i) {
      const int64_t id = result.column(0).ints()[static_cast<size_t>(i)];
      if (id < 0 || id >= result.num_rows()) {
        return Status::InternalError("non-dense output TupleIDs from ",
                                     model_.output_table);
      }
      activation.at(id) =
          static_cast<float>(result.column(1).floats()[static_cast<size_t>(i)]);
    }
    DL2SQL_RETURN_NOT_OK(Cleanup());
    return activation;
  };
  auto out = body();
  db_->set_cost_accumulator(nullptr);
  DL2SQL_RETURN_NOT_OK(out.status());
  if (stats != nullptr) *stats = std::move(local);
  return out;
}

Result<std::vector<Tensor>> Dl2SqlRunner::InferBatch(
    const std::vector<Tensor>& inputs, PipelineRunStats* stats) {
  if (inputs.empty()) return std::vector<Tensor>{};
  if (!model_.options.batched) {
    // Non-batched conversion: run the pipeline once per input.
    std::vector<Tensor> out;
    PipelineRunStats total;
    for (const auto& input : inputs) {
      PipelineRunStats one;
      DL2SQL_ASSIGN_OR_RETURN(Tensor r, Infer(input, &one));
      out.push_back(std::move(r));
      total.load_seconds += one.load_seconds;
      total.infer_seconds += one.infer_seconds;
      total.clause_costs.Merge(one.clause_costs);
      if (total.per_op.size() == one.per_op.size()) {
        for (size_t i = 0; i < one.per_op.size(); ++i) {
          total.per_op[i].seconds += one.per_op[i].seconds;
        }
      } else if (total.per_op.empty()) {
        total.per_op = one.per_op;
      }
    }
    if (stats != nullptr) *stats = std::move(total);
    return out;
  }

  for (const auto& input : inputs) {
    if (input.shape() != model_.input_shape) {
      return Status::InvalidArgument("DL2SQL model ", model_.model_name,
                                     " expects input ",
                                     model_.input_shape.ToString(), ", got ",
                                     input.shape().ToString());
    }
  }
  PipelineRunStats local;
  db_->set_cost_accumulator(&local.clause_costs);
  auto body = [&]() -> Result<std::vector<Tensor>> {
    {
      Stopwatch watch;
      DL2SQL_RETURN_NOT_OK(LoadInputBatch(inputs));
      local.load_seconds = watch.ElapsedSeconds();
    }
    DL2SQL_RETURN_NOT_OK(RunStatements(&local));
    DL2SQL_ASSIGN_OR_RETURN(
        Table result,
        db_->Execute("SELECT BatchID, TupleID, Value FROM " +
                     model_.output_table + " ORDER BY BatchID, TupleID"));
    const int64_t per_batch = result.num_rows() /
                              static_cast<int64_t>(inputs.size());
    if (per_batch * static_cast<int64_t>(inputs.size()) != result.num_rows()) {
      return Status::InternalError("ragged batched output from ",
                                   model_.output_table);
    }
    std::vector<Tensor> out;
    out.reserve(inputs.size());
    for (size_t b = 0; b < inputs.size(); ++b) out.emplace_back(Shape({per_batch}));
    for (int64_t i = 0; i < result.num_rows(); ++i) {
      const int64_t batch = result.column(0).ints()[static_cast<size_t>(i)];
      const int64_t id = result.column(1).ints()[static_cast<size_t>(i)];
      if (batch < 0 || batch >= static_cast<int64_t>(inputs.size()) || id < 0 ||
          id >= per_batch) {
        return Status::InternalError("bad batched output ids from ",
                                     model_.output_table);
      }
      out[static_cast<size_t>(batch)].at(id) = static_cast<float>(
          result.column(2).floats()[static_cast<size_t>(i)]);
    }
    DL2SQL_RETURN_NOT_OK(Cleanup());
    return out;
  };
  auto out = body();
  db_->set_cost_accumulator(nullptr);
  DL2SQL_RETURN_NOT_OK(out.status());
  if (stats != nullptr) *stats = std::move(local);
  return out;
}

namespace {
int64_t Argmax(const Tensor& t) {
  int64_t best = 0;
  for (int64_t i = 1; i < t.NumElements(); ++i) {
    if (t.at(i) > t.at(best)) best = i;
  }
  return best;
}
}  // namespace

Result<int64_t> Dl2SqlRunner::Predict(const Tensor& input,
                                      PipelineRunStats* stats) {
  DL2SQL_ASSIGN_OR_RETURN(Tensor out, Infer(input, stats));
  if (out.NumElements() == 0) {
    return Status::InternalError("empty pipeline output");
  }
  return Argmax(out);
}

Result<std::vector<int64_t>> Dl2SqlRunner::PredictBatch(
    const std::vector<Tensor>& inputs, PipelineRunStats* stats) {
  DL2SQL_ASSIGN_OR_RETURN(std::vector<Tensor> out, InferBatch(inputs, stats));
  std::vector<int64_t> preds;
  preds.reserve(out.size());
  for (const auto& t : out) {
    if (t.NumElements() == 0) {
      return Status::InternalError("empty pipeline output");
    }
    preds.push_back(Argmax(t));
  }
  return preds;
}

}  // namespace dl2sql::core
