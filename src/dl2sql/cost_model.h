/// \file cost_model.h
/// \brief The customized DL2SQL cost model (Section IV-A, Eqs. 3-8) and the
/// blind-baseline estimator it is compared against in Figs. 12-13.
///
/// Cost unit convention matches db::CostModel: 1 unit ~= one row touch.
/// Benchmarks convert units to wall time with r = seq_scan_time /
/// seq_scan_cost, exactly as Fig. 12's caption prescribes.
#pragma once

#include "dl2sql/converter.h"

namespace dl2sql::core {

/// Estimated cardinality + cost of one pipeline op.
struct OpCostEstimate {
  std::string label;
  nn::LayerKind kind = nn::LayerKind::kConv2d;
  double output_rows = 0;
  double cost_units = 0;
};

/// \brief Customized estimator: exact neural-operator formulas.
///
/// For a conv with geometry g:
///   k_in  = k^2 * N_in, k_out = k^2 * N_out            (kernel table sizes)
///   T_in  = H_out * W_out * k_in                        (feature-map card.)
///   S_J   = 1 / k_in                                    (Eq. 4)
///   T_out = T_in * S_J * k_out                          (Eq. 5)
///   C_join = T_in + T_out * k_in                        (Eq. 6)
///   C_cnn  = T_in + T_out * k_in + T_out                (Eq. 7, + mapping)
/// BN/ReLU/Pooling are linear scans of their input feature table; residual
/// adds are linear in the feature size.
///
/// `parallelism` is the executing device's thread count: the generated SQL
/// (scans, joins, group-bys) runs morsel-parallel on the device pool, so
/// per-op units divide by it. 1.0 models the serial kEdgeCpu execution.
std::vector<OpCostEstimate> EstimateCustom(const ConvertedModel& model,
                                           double parallelism = 1.0);

/// \brief What the stock optimizer would predict: every generated statement
/// is planned and annotated with db::DefaultCostModel, chaining each
/// statement's estimated output cardinality into the next statement's
/// assumed input cardinality (temp tables do not exist/have no stats at
/// planning time — the blind spot the paper describes). Statistics for the
/// static parameter tables are real (they exist in the catalog).
/// `parallelism` is forwarded into the blind model's CostContext so both
/// estimators price the same multi-core execution.
Result<std::vector<OpCostEstimate>> EstimateDefault(const ConvertedModel& model,
                                                    db::Database* db,
                                                    double parallelism = 1.0);

/// Sum of cost_units over an estimate vector.
double TotalUnits(const std::vector<OpCostEstimate>& estimates);

/// \brief Calibrates seconds-per-cost-unit by timing a sequential scan of a
/// synthetic table with `rows` rows (cost model charges `rows` units).
Result<double> CalibrateSecondsPerUnit(db::Database* db, int64_t rows = 200000);

}  // namespace dl2sql::core
