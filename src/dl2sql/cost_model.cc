#include "dl2sql/cost_model.h"

#include "common/string_util.h"
#include "db/cost_model.h"

namespace dl2sql::core {

std::vector<OpCostEstimate> EstimateCustom(const ConvertedModel& model,
                                           double parallelism) {
  std::vector<OpCostEstimate> out;
  const double par = std::max(1.0, parallelism);
  // Track the flat cardinality flowing between ops (dense activations).
  double flat_rows = static_cast<double>(model.input_shape.NumElements());
  for (const auto& op : model.ops) {
    OpCostEstimate e;
    e.label = op.layer_name;
    e.kind = op.kind;
    switch (op.kind) {
      case nn::LayerKind::kConv2d:
      case nn::LayerKind::kDeconv2d: {
        const LayerGeometry& g = op.geom;
        const double k_in =
            static_cast<double>(g.kernel * g.kernel * g.in_c);
        const double k_out =
            static_cast<double>(g.kernel * g.kernel * g.out_c);
        const double t_in = static_cast<double>(g.out_h * g.out_w) * k_in;
        const double s_j = 1.0 / k_in;
        const double t_out = t_in * s_j * k_out;  // Eq. 5
        // Eq. 7: scan + probe-weighted join + mapping pass. The paper's
        // T_out counts join/group work; the materialized activation is the
        // dense out_c*out_h*out_w.
        e.cost_units = t_in + t_out * s_j * k_in + t_out;
        e.output_rows =
            static_cast<double>(g.out_c * g.out_h * g.out_w);
        // The reshape (Q2) pass under the non-prejoined strategy costs one
        // extra scan of the feature-map table.
        if (model.options.prejoin == PreJoinStrategy::kNone) {
          e.cost_units += t_in;
        }
        flat_rows = e.output_rows;
        break;
      }
      case nn::LayerKind::kMaxPool:
      case nn::LayerKind::kAvgPool: {
        const LayerGeometry& g = op.geom;
        const double windows =
            static_cast<double>(g.out_c * g.out_h * g.out_w);
        const double joined = windows * static_cast<double>(g.kernel * g.kernel);
        e.cost_units = flat_rows + joined + windows;
        e.output_rows = windows;
        flat_rows = windows;
        break;
      }
      case nn::LayerKind::kBatchNorm:
      case nn::LayerKind::kRelu:
      case nn::LayerKind::kSoftmax:
      case nn::LayerKind::kInstanceNorm: {
        e.cost_units = flat_rows;  // single scan
        e.output_rows = flat_rows;
        break;
      }
      case nn::LayerKind::kGlobalAvgPool: {
        e.cost_units = flat_rows;
        const LayerGeometry& g = op.geom;
        e.output_rows = g.out_c > 0 ? static_cast<double>(g.out_c)
                                    : std::max(1.0, flat_rows / 64.0);
        // Without geometry, fall back to the tracked activation; GAP output
        // equals the channel count which callers get from the next op.
        flat_rows = e.output_rows;
        break;
      }
      case nn::LayerKind::kFlatten: {
        e.cost_units = 0;
        e.output_rows = flat_rows;
        break;
      }
      case nn::LayerKind::kLinear:
      case nn::LayerKind::kBasicAttention: {
        // FC = 1x1-conv special case: join of the flat input with the weight
        // table (|W| = in*out pairs) plus the grouped output.
        // Without stored geometry we approximate via the runtime SQL: the
        // weight table is the static deploy; cost ~ |W| + out.
        e.cost_units = flat_rows * 8;  // modest multiplier; refined below
        e.output_rows = flat_rows;
        break;
      }
      case nn::LayerKind::kResidualBlock:
      case nn::LayerKind::kIdentityBlock:
      case nn::LayerKind::kDenseBlock: {
        // The add/concat op itself: linear in the feature size.
        e.cost_units = 2 * flat_rows;
        e.output_rows = flat_rows;
        break;
      }
    }
    // Every op above is executed as generated SQL (scans, joins, group-bys)
    // whose hot loops run morsel-parallel on the device pool.
    e.cost_units /= par;
    out.push_back(std::move(e));
  }
  return out;
}

Result<std::vector<OpCostEstimate>> EstimateDefault(const ConvertedModel& model,
                                                    db::Database* db,
                                                    double parallelism) {
  std::vector<OpCostEstimate> out;
  db::CostContext ctx;
  ctx.catalog = &db->catalog();
  ctx.udfs = &db->udfs();
  ctx.parallelism = std::max(1.0, parallelism);
  ctx.assumed_rows[ToLower(model.input_table)] =
      static_cast<double>(model.input_shape.NumElements());
  db::DefaultCostModel blind;
  db::Planner planner(&db->catalog(), &db->udfs());

  // Register empty shell tables so column binding succeeds for the not-yet-
  // created temp tables; cardinalities come from ctx.assumed_rows, exactly
  // mirroring an optimizer planning a statement chain before execution.
  std::vector<std::string> shells;
  for (const auto& name : model.RuntimeTables()) {
    if (db->catalog().HasTable(name)) continue;
    db::TableSchema schema;
    if (model.options.batched) {
      schema.AddField({"BatchID", db::DataType::kInt64});
    }
    if (name.find("_fm") != std::string::npos) {
      schema.AddField({"MatrixID", db::DataType::kInt64});
      schema.AddField({"OrderID", db::DataType::kInt64});
      schema.AddField({"Value", db::DataType::kFloat64});
    } else {
      schema.AddField({"TupleID", db::DataType::kInt64});
      schema.AddField({"Value", db::DataType::kFloat64});
    }
    DL2SQL_RETURN_NOT_OK(db->catalog().CreateTable(
        name, std::make_shared<db::Table>(db::Table{schema}), true));
    shells.push_back(name);
  }
  auto drop_shells = [&]() {
    for (const auto& s : shells) {
      (void)db->catalog().DropTable(s, true);
    }
  };

  auto body = [&]() -> Status {
  for (const auto& op : model.ops) {
    OpCostEstimate e;
    e.label = op.layer_name;
    e.kind = op.kind;
    for (const auto& stmt_sql : op.runtime_sql) {
      DL2SQL_ASSIGN_OR_RETURN(db::Statement stmt,
                              db::sql::ParseStatement(stmt_sql));
      const db::SelectStmt* select = nullptr;
      std::string created;
      if (std::holds_alternative<db::CreateTableStmt>(stmt)) {
        const auto& ct = std::get<db::CreateTableStmt>(stmt);
        select = ct.as_select.get();
        created = ct.name;
      } else if (std::holds_alternative<db::InsertStmt>(stmt)) {
        const auto& ins = std::get<db::InsertStmt>(stmt);
        select = ins.select.get();
        created = ins.table;
      } else if (std::holds_alternative<db::UpdateStmt>(stmt)) {
        // UPDATE cost: one scan of the (assumed) table.
        const auto& up = std::get<db::UpdateStmt>(stmt);
        auto it = ctx.assumed_rows.find(ToLower(up.table));
        if (it != ctx.assumed_rows.end()) e.cost_units += it->second;
        continue;
      }
      if (select == nullptr) continue;

      // Plan against the catalog; tables that do not exist yet must be
      // registered as empty shells so the planner can bind columns. We
      // temporarily create them from the statement chain: all runtime tables
      // share the flat (TupleID, Value) schema except conv feature maps.
      DL2SQL_ASSIGN_OR_RETURN(db::PlanPtr plan, planner.PlanSelect(*select));
      DL2SQL_RETURN_NOT_OK(blind.Annotate(plan.get(), ctx));
      e.cost_units += plan->est_cost;
      e.output_rows = plan->est_rows;
      if (!created.empty()) {
        // Chain: downstream statements of this op (and later ops) see the
        // blind model's own estimate as this table's cardinality.
        double prev = 0;
        auto it = ctx.assumed_rows.find(ToLower(created));
        if (it != ctx.assumed_rows.end()) prev = it->second;
        ctx.assumed_rows[ToLower(created)] = prev + plan->est_rows;
      }
    }
    out.push_back(std::move(e));
  }
  return Status::OK();
  };
  const Status st = body();
  drop_shells();
  DL2SQL_RETURN_NOT_OK(st);
  return out;
}

double TotalUnits(const std::vector<OpCostEstimate>& estimates) {
  double t = 0;
  for (const auto& e : estimates) t += e.cost_units;
  return t;
}

Result<double> CalibrateSecondsPerUnit(db::Database* db, int64_t rows) {
  std::vector<int64_t> ids(static_cast<size_t>(rows));
  std::vector<double> vals(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    ids[static_cast<size_t>(i)] = i;
    vals[static_cast<size_t>(i)] = static_cast<double>(i) * 0.5;
  }
  DL2SQL_ASSIGN_OR_RETURN(
      db::Table t,
      db::Table::FromColumns(
          db::TableSchema({{"TupleID", db::DataType::kInt64},
                           {"Value", db::DataType::kFloat64}}),
          {db::Column::Ints(std::move(ids)), db::Column::Floats(std::move(vals))}));
  DL2SQL_RETURN_NOT_OK(db->RegisterTable("__calib", std::move(t), true));
  // Warm once, then time a scan+filter pass whose modeled cost is ~2*rows
  // (scan units + filter evaluation units).
  DL2SQL_RETURN_NOT_OK(
      db->Execute("SELECT count(*) FROM __calib WHERE Value >= 0").status());
  Stopwatch watch;
  DL2SQL_RETURN_NOT_OK(
      db->Execute("SELECT count(*) FROM __calib WHERE Value >= 0").status());
  const double secs = watch.ElapsedSeconds();
  DL2SQL_RETURN_NOT_OK(db->Execute("DROP TABLE __calib").status());
  return secs / (2.0 * static_cast<double>(rows));
}

}  // namespace dl2sql::core
