#include "workload/testbed.h"

namespace dl2sql::workload {

using engines::CollaborativeEngine;
using engines::ModelDeployment;
using engines::NUdfOutput;
using engines::QueryCost;

nn::Model BuildRepositoryModel(const TestbedOptions& options,
                               int64_t num_classes, uint64_t seed) {
  nn::BuilderOptions b;
  b.input_channels = options.dataset.keyframe_channels;
  b.input_size = options.dataset.keyframe_size;
  b.num_classes = num_classes;
  b.base_channels = options.model_base_channels;
  b.seed = seed;
  if (options.resnet_depth > 0) {
    auto m = nn::BuildResNet(options.resnet_depth, b);
    DL2SQL_CHECK(m.ok()) << m.status().ToString();
    return std::move(m).ValueOrDie();
  }
  return nn::BuildStudentCnn(b);
}

Status Testbed::DeployAll(const nn::Model& model, const std::string& udf_name,
                          NUdfOutput output) {
  DL2SQL_ASSIGN_OR_RETURN(
      db::NUdfSelectivity sel,
      engines::LearnSelectivityHistogram(model, output, device_.get(),
                                         options_.histogram_samples,
                                         options_.model_seed ^ 0x5eed));
  ModelDeployment deployment;
  deployment.udf_name = udf_name;
  deployment.output = output;
  deployment.selectivity = sel;
  for (CollaborativeEngine* e : AllEngines()) {
    DL2SQL_RETURN_NOT_OK(e->DeployModel(model, deployment));
  }
  return Status::OK();
}

Result<std::unique_ptr<Testbed>> Testbed::Create(const TestbedOptions& options) {
  std::unique_ptr<Testbed> tb(new Testbed());
  tb->options_ = options;
  tb->device_ = Device::Create(options.device);

  DL2SQL_RETURN_NOT_OK(PopulateDatabase(&tb->master_db_, options.dataset));

  tb->independent_ =
      std::make_unique<engines::IndependentEngine>(tb->device_);
  tb->udf_ = std::make_unique<engines::UdfEngine>(tb->device_);
  engines::Dl2SqlEngine::Options plain;
  plain.enable_optimizer_hints = false;
  tb->dl2sql_ = std::make_unique<engines::Dl2SqlEngine>(tb->device_, plain);
  engines::Dl2SqlEngine::Options op;
  op.enable_optimizer_hints = true;
  tb->dl2sql_op_ = std::make_unique<engines::Dl2SqlEngine>(tb->device_, op);

  for (CollaborativeEngine* e : tb->AllEngines()) {
    DL2SQL_RETURN_NOT_OK(e->AttachTablesFrom(tb->master_db_));
  }

  tb->detect_model_ = std::make_unique<nn::Model>(
      BuildRepositoryModel(options, 2, options.model_seed + 1));
  tb->classify_model_ = std::make_unique<nn::Model>(
      BuildRepositoryModel(options, 10, options.model_seed + 2));
  tb->recog_model_ = std::make_unique<nn::Model>(BuildRepositoryModel(
      options, options.dataset.num_patterns, options.model_seed + 3));

  DL2SQL_RETURN_NOT_OK(
      tb->DeployAll(*tb->detect_model_, "nUDF_detect", NUdfOutput::kBool));
  DL2SQL_RETURN_NOT_OK(
      tb->DeployAll(*tb->classify_model_, "nUDF_classify", NUdfOutput::kLabel));
  DL2SQL_RETURN_NOT_OK(
      tb->DeployAll(*tb->recog_model_, "nUDF_recog", NUdfOutput::kClassId));

  if (options.full_repository) {
    ModelRepoOptions repo_opts;
    repo_opts.num_tasks = options.repository_tasks;
    repo_opts.input_channels = options.dataset.keyframe_channels;
    repo_opts.input_size = options.dataset.keyframe_size;
    repo_opts.base_channels = options.model_base_channels;
    repo_opts.num_patterns = options.dataset.num_patterns;
    repo_opts.seed = options.model_seed;
    tb->repository_ = BuildModelRepository(repo_opts);
    for (CollaborativeEngine* e : tb->AllEngines()) {
      DL2SQL_RETURN_NOT_OK(DeployRepository(tb->repository_, e,
                                            tb->device_.get(),
                                            options.histogram_samples,
                                            options.model_seed ^ 0xfeed));
    }
  }
  return tb;
}

std::vector<CollaborativeEngine*> Testbed::AllEngines() {
  return {dl2sql_.get(), dl2sql_op_.get(), udf_.get(), independent_.get()};
}

namespace {

/// Picks the udf names for one query; with a full repository deployed, each
/// query draws a random task of the right kind, as in the paper's benchmark.
QueryParams PickParams(const std::vector<RepositoryTask>& repo,
                       double selectivity, Rng* rng) {
  QueryParams params;
  params.selectivity = selectivity;
  if (repo.empty() || rng == nullptr) return params;
  std::vector<const RepositoryTask*> detect, classify, recog;
  for (const auto& t : repo) {
    if (t.task_kind == "defect_detection") detect.push_back(&t);
    if (t.task_kind == "clothes_classification") classify.push_back(&t);
    if (t.task_kind == "pattern_recognition") recog.push_back(&t);
  }
  if (!detect.empty()) {
    params.detect_udf =
        detect[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(detect.size()) - 1))]->udf_name;
  }
  if (!classify.empty()) {
    params.classify_udf =
        classify[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(classify.size()) - 1))]->udf_name;
  }
  if (!recog.empty()) {
    params.recog_udf =
        recog[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(recog.size()) - 1))]->udf_name;
  }
  return params;
}

}  // namespace

Result<QueryCost> Testbed::RunMixedWorkload(CollaborativeEngine* engine,
                                            int per_type, double selectivity,
                                            uint64_t seed) {
  Rng rng(seed);
  QueryCost total;
  int n = 0;
  for (int type = 1; type <= 4; ++type) {
    for (int q = 0; q < per_type; ++q) {
      const QueryParams params = PickParams(repository_, selectivity, &rng);
      const std::string sql = MakeQueryOfType(type, params, &rng);
      QueryCost cost;
      DL2SQL_RETURN_NOT_OK(
          engine->ExecuteCollaborative(sql, &cost).status());
      total += cost;
      ++n;
    }
  }
  return total / std::max(1, n);
}

Result<QueryCost> Testbed::RunTypeWorkload(CollaborativeEngine* engine,
                                           int type, int count,
                                           double selectivity, uint64_t seed) {
  Rng rng(seed);
  QueryCost total;
  for (int q = 0; q < count; ++q) {
    const QueryParams params = PickParams(repository_, selectivity, &rng);
    const std::string sql = MakeQueryOfType(type, params, &rng);
    QueryCost cost;
    DL2SQL_RETURN_NOT_OK(engine->ExecuteCollaborative(sql, &cost).status());
    total += cost;
  }
  return total / std::max(1, count);
}

}  // namespace dl2sql::workload
