/// \file testbed.h
/// \brief End-to-end experiment harness: dataset + model repository + the
/// four engine configurations (DB-PyTorch, DB-UDF, DL2SQL, DL2SQL-OP) on a
/// chosen simulated device. Used by the benchmarks and the examples.
#pragma once

#include <memory>

#include "engines/dl2sql_engine.h"
#include "engines/independent_engine.h"
#include "engines/udf_engine.h"
#include "nn/builders.h"
#include "workload/dataset.h"
#include "workload/model_repo.h"
#include "workload/queries.h"

namespace dl2sql::workload {

struct TestbedOptions {
  DatasetOptions dataset;
  /// Width/seed of the repository models; input shape is forced to the
  /// dataset's keyframe shape.
  int64_t model_base_channels = 4;
  uint64_t model_seed = 7;
  /// Samples for the offline selectivity histograms (Eq. 10).
  int64_t histogram_samples = 48;
  DeviceKind device = DeviceKind::kEdgeCpu;
  /// Builds a ResNet-N repository instead of the distilled student models.
  int64_t resnet_depth = 0;  ///< 0 = student CNN
  /// Deploy the paper's full 20-task model repository (Section V); mixed
  /// workloads then pick a random task per query, as the paper does.
  bool full_repository = false;
  int64_t repository_tasks = 20;
};

/// \brief One fully wired experimental setup.
class Testbed {
 public:
  /// Builds the dataset once, attaches it to all four engines, builds the
  /// detect/classify/recog model trio and deploys it everywhere.
  static Result<std::unique_ptr<Testbed>> Create(const TestbedOptions& options);

  engines::IndependentEngine* independent() { return independent_.get(); }
  engines::UdfEngine* udf() { return udf_.get(); }
  engines::Dl2SqlEngine* dl2sql() { return dl2sql_.get(); }
  engines::Dl2SqlEngine* dl2sql_op() { return dl2sql_op_.get(); }

  /// All four engines in the paper's reporting order.
  std::vector<engines::CollaborativeEngine*> AllEngines();

  const TestbedOptions& options() const { return options_; }
  const nn::Model& detect_model() const { return *detect_model_; }
  const nn::Model& classify_model() const { return *classify_model_; }
  const nn::Model& recog_model() const { return *recog_model_; }
  const std::vector<RepositoryTask>& repository() const { return repository_; }
  Device* device() { return device_.get(); }
  db::Database& master_db() { return master_db_; }

  /// Runs `per_type` queries of each type 1..4 at the given relational
  /// selectivity; returns the average per-query cost breakdown.
  Result<engines::QueryCost> RunMixedWorkload(
      engines::CollaborativeEngine* engine, int per_type, double selectivity,
      uint64_t seed);

  /// Runs `count` queries of one type; returns the average cost.
  Result<engines::QueryCost> RunTypeWorkload(
      engines::CollaborativeEngine* engine, int type, int count,
      double selectivity, uint64_t seed);

 private:
  Testbed() = default;

  Status DeployAll(const nn::Model& model, const std::string& udf_name,
                   engines::NUdfOutput output);

  TestbedOptions options_;
  std::shared_ptr<Device> device_;
  db::Database master_db_;
  std::unique_ptr<engines::IndependentEngine> independent_;
  std::unique_ptr<engines::UdfEngine> udf_;
  std::unique_ptr<engines::Dl2SqlEngine> dl2sql_;
  std::unique_ptr<engines::Dl2SqlEngine> dl2sql_op_;
  std::vector<RepositoryTask> repository_;
  std::unique_ptr<nn::Model> detect_model_;
  std::unique_ptr<nn::Model> classify_model_;
  std::unique_ptr<nn::Model> recog_model_;
};

/// Builds one repository model with the dataset's keyframe input shape.
nn::Model BuildRepositoryModel(const TestbedOptions& options,
                               int64_t num_classes, uint64_t seed);

}  // namespace dl2sql::workload
