#include "workload/model_repo.h"

#include "nn/builders.h"

namespace dl2sql::workload {

std::vector<RepositoryTask> BuildModelRepository(const ModelRepoOptions& opts) {
  std::vector<RepositoryTask> repo;
  repo.reserve(static_cast<size_t>(opts.num_tasks));
  for (int64_t i = 0; i < opts.num_tasks; ++i) {
    nn::BuilderOptions b;
    b.input_channels = opts.input_channels;
    b.input_size = opts.input_size;
    b.base_channels = opts.base_channels;
    b.seed = opts.seed + static_cast<uint64_t>(i) * 131;

    RepositoryTask task;
    switch (i % 4) {
      case 0:
        task.task_kind = "defect_detection";
        task.output = engines::NUdfOutput::kBool;
        task.udf_name = "nUDF_detect_" + std::to_string(i / 4);
        b.num_classes = 2;
        break;
      case 1:
        task.task_kind = "clothes_classification";
        task.output = engines::NUdfOutput::kLabel;
        task.udf_name = "nUDF_clothes_" + std::to_string(i / 4);
        b.num_classes = 10;
        break;
      case 2:
        task.task_kind = "type_classification";
        task.output = engines::NUdfOutput::kLabel;
        task.udf_name = "nUDF_type_" + std::to_string(i / 4);
        b.num_classes = 6;
        break;
      case 3:
        task.task_kind = "pattern_recognition";
        task.output = engines::NUdfOutput::kClassId;
        task.udf_name = "nUDF_pattern_" + std::to_string(i / 4);
        b.num_classes = opts.num_patterns;
        break;
    }
    task.model = nn::BuildStudentCnn(b);
    repo.push_back(std::move(task));
  }
  return repo;
}

Status DeployRepository(const std::vector<RepositoryTask>& repo,
                        engines::CollaborativeEngine* engine, Device* device,
                        int64_t histogram_samples, uint64_t seed) {
  for (const auto& task : repo) {
    DL2SQL_ASSIGN_OR_RETURN(
        db::NUdfSelectivity sel,
        engines::LearnSelectivityHistogram(task.model, task.output, device,
                                           histogram_samples, seed));
    engines::ModelDeployment dep;
    dep.udf_name = task.udf_name;
    dep.output = task.output;
    dep.selectivity = std::move(sel);
    DL2SQL_RETURN_NOT_OK(engine->DeployModel(task.model, dep)
                             .WithContext("deploying " + task.udf_name));
  }
  return Status::OK();
}

}  // namespace dl2sql::workload
