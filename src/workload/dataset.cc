#include "workload/dataset.h"

#include "tensor/tensor_blob.h"

namespace dl2sql::workload {

using db::Column;
using db::DataType;
using db::Table;
using db::TableSchema;

namespace {

/// Day index (0..364) to an ISO date string in 2021.
std::string DateString(int64_t day) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  int month = 0;
  while (month < 12 && day >= kDays[month]) {
    day -= kDays[month];
    ++month;
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "2021-%02d-%02d", month + 1,
                static_cast<int>(day) + 1);
  return buf;
}

}  // namespace

DatasetSizes ComputeSizes(const DatasetOptions& options) {
  DatasetSizes s;
  s.video = options.video_rows;
  s.fabric = std::max<int64_t>(1, options.video_rows / 10);
  s.client = std::max<int64_t>(1, options.video_rows / 100);
  s.order = std::max<int64_t>(1, options.video_rows / 10);
  s.device = std::max<int64_t>(1, options.video_rows / 100);
  return s;
}

Tensor MakeKeyframe(const DatasetOptions& options, Rng* rng) {
  return Tensor::Random(
      Shape({options.keyframe_channels, options.keyframe_size,
             options.keyframe_size}),
      rng, 1.0f);
}

Status PopulateDatabase(db::Database* db, const DatasetOptions& options) {
  Rng rng(options.seed);
  const DatasetSizes sizes = ComputeSizes(options);

  // ---- fabric ----
  {
    std::vector<int64_t> trans_ids, pattern_ids;
    std::vector<double> meters, humidity, temperature;
    std::vector<std::string> printdates;
    for (int64_t i = 0; i < sizes.fabric; ++i) {
      trans_ids.push_back(i + 1);
      pattern_ids.push_back(rng.UniformInt(0, options.num_patterns - 1));
      meters.push_back(rng.UniformReal(1.0, 100.0));
      humidity.push_back(rng.UniformReal(0.0, 100.0));
      temperature.push_back(rng.UniformReal(0.0, 40.0));
      printdates.push_back(DateString(rng.UniformInt(0, 364)));
    }
    TableSchema schema({{"transID", DataType::kInt64},
                        {"patternID", DataType::kInt64},
                        {"meter", DataType::kFloat64},
                        {"humidity", DataType::kFloat64},
                        {"temperature", DataType::kFloat64},
                        {"printdate", DataType::kString}});
    DL2SQL_ASSIGN_OR_RETURN(
        Table t, Table::FromColumns(
                     schema, {Column::Ints(std::move(trans_ids)),
                              Column::Ints(std::move(pattern_ids)),
                              Column::Floats(std::move(meters)),
                              Column::Floats(std::move(humidity)),
                              Column::Floats(std::move(temperature)),
                              Column::Strings(std::move(printdates))}));
    DL2SQL_RETURN_NOT_OK(db->RegisterTable("fabric", std::move(t)));
  }

  // ---- video (largest, carries keyframe blobs) ----
  {
    std::vector<int64_t> trans_ids;
    std::vector<std::string> dates, keyframes;
    for (int64_t i = 0; i < sizes.video; ++i) {
      trans_ids.push_back(rng.UniformInt(1, sizes.fabric));
      dates.push_back(DateString(rng.UniformInt(0, 364)));
      keyframes.push_back(EncodeTensorBlob(MakeKeyframe(options, &rng)));
    }
    TableSchema schema({{"transID", DataType::kInt64},
                        {"date", DataType::kString},
                        {"keyframe", DataType::kBlob}});
    DL2SQL_ASSIGN_OR_RETURN(
        Table t,
        Table::FromColumns(schema, {Column::Ints(std::move(trans_ids)),
                                    Column::Strings(std::move(dates)),
                                    Column::Blobs(std::move(keyframes))}));
    DL2SQL_RETURN_NOT_OK(db->RegisterTable("video", std::move(t)));
  }

  // ---- client ----
  {
    std::vector<int64_t> client_ids;
    std::vector<std::string> names, regions;
    static const char* kRegions[] = {"east", "west", "north", "south"};
    for (int64_t i = 0; i < sizes.client; ++i) {
      client_ids.push_back(i + 1);
      names.push_back("client_" + std::to_string(i + 1));
      regions.push_back(kRegions[rng.UniformInt(0, 3)]);
    }
    TableSchema schema({{"clientID", DataType::kInt64},
                        {"name", DataType::kString},
                        {"region", DataType::kString}});
    DL2SQL_ASSIGN_OR_RETURN(
        Table t,
        Table::FromColumns(schema, {Column::Ints(std::move(client_ids)),
                                    Column::Strings(std::move(names)),
                                    Column::Strings(std::move(regions))}));
    DL2SQL_RETURN_NOT_OK(db->RegisterTable("client", std::move(t)));
  }

  // ---- order (named "orders": ORDER is a reserved word in the dialect) ----
  {
    std::vector<int64_t> order_ids, client_ids, trans_ids;
    std::vector<double> amounts;
    std::vector<std::string> dates;
    for (int64_t i = 0; i < sizes.order; ++i) {
      order_ids.push_back(i + 1);
      client_ids.push_back(rng.UniformInt(1, sizes.client));
      trans_ids.push_back(rng.UniformInt(1, sizes.fabric));
      amounts.push_back(rng.UniformReal(10.0, 10000.0));
      dates.push_back(DateString(rng.UniformInt(0, 364)));
    }
    TableSchema schema({{"orderID", DataType::kInt64},
                        {"clientID", DataType::kInt64},
                        {"transID", DataType::kInt64},
                        {"amount", DataType::kFloat64},
                        {"orderdate", DataType::kString}});
    DL2SQL_ASSIGN_OR_RETURN(
        Table t,
        Table::FromColumns(schema, {Column::Ints(std::move(order_ids)),
                                    Column::Ints(std::move(client_ids)),
                                    Column::Ints(std::move(trans_ids)),
                                    Column::Floats(std::move(amounts)),
                                    Column::Strings(std::move(dates))}));
    DL2SQL_RETURN_NOT_OK(db->RegisterTable("orders", std::move(t)));
  }

  // ---- device (per-printer sensors) ----
  {
    std::vector<int64_t> device_ids;
    std::vector<std::string> models;
    std::vector<double> temperature, humidity;
    for (int64_t i = 0; i < sizes.device; ++i) {
      device_ids.push_back(i + 1);
      models.push_back("printer_v" + std::to_string(rng.UniformInt(1, 5)));
      temperature.push_back(rng.UniformReal(0.0, 40.0));
      humidity.push_back(rng.UniformReal(0.0, 100.0));
    }
    TableSchema schema({{"deviceID", DataType::kInt64},
                        {"model", DataType::kString},
                        {"temperature", DataType::kFloat64},
                        {"humidity", DataType::kFloat64}});
    DL2SQL_ASSIGN_OR_RETURN(
        Table t,
        Table::FromColumns(schema, {Column::Ints(std::move(device_ids)),
                                    Column::Strings(std::move(models)),
                                    Column::Floats(std::move(temperature)),
                                    Column::Floats(std::move(humidity))}));
    DL2SQL_RETURN_NOT_OK(db->RegisterTable("device", std::move(t)));
  }

  for (const char* name : {"fabric", "video", "client", "orders", "device"}) {
    DL2SQL_RETURN_NOT_OK(db->catalog().Analyze(name));
  }
  return Status::OK();
}

}  // namespace dl2sql::workload
