/// \file model_repo.h
/// \brief The paper's model repository: "a model repository consisting of 20
/// neural networks for various tasks, such as textile defect detection,
/// clothes classification, textile type classification, and textile pattern
/// recognition", each distilled to the 3-block student architecture.
#pragma once

#include <string>
#include <vector>

#include "engines/engine.h"
#include "nn/model.h"

namespace dl2sql::workload {

/// One trained task in the repository.
struct RepositoryTask {
  std::string udf_name;      ///< e.g. "nUDF_detect_3"
  std::string task_kind;     ///< "defect_detection", "clothes_classification",
                             ///< "type_classification", "pattern_recognition"
  engines::NUdfOutput output = engines::NUdfOutput::kBool;
  nn::Model model;
};

struct ModelRepoOptions {
  int64_t num_tasks = 20;
  int64_t input_channels = 3;
  int64_t input_size = 16;
  int64_t base_channels = 4;
  int64_t num_patterns = 10;
  uint64_t seed = 77;
};

/// Builds the repository: tasks cycle through the four kinds, each model
/// seeded independently (a stand-in for per-task fine-tuning).
std::vector<RepositoryTask> BuildModelRepository(const ModelRepoOptions& opts);

/// Deploys every task onto an engine, learning its selectivity histogram on
/// the way (Eq. 10).
Status DeployRepository(const std::vector<RepositoryTask>& repo,
                        engines::CollaborativeEngine* engine, Device* device,
                        int64_t histogram_samples, uint64_t seed);

}  // namespace dl2sql::workload
