/// \file queries.h
/// \brief Collaborative-query templates for the four types of Table I, with
/// preset relational selectivities.
///
/// Deviation from the paper noted in DESIGN.md: the paper's Type 1 example
/// omits the F.transID = V.transID join condition; we include it in every
/// template (a cross product of the two largest tables is neither meaningful
/// nor feasible), exactly as Types 2-4 do.
#pragma once

#include <string>

#include "common/random.h"

namespace dl2sql::workload {

/// Parameters shared by the templates.
struct QueryParams {
  /// Accumulative selectivity of the relational predicates (the paper sweeps
  /// 0.0001 .. 0.01, i.e. 0.01% .. 1%).
  double selectivity = 0.0001;
  std::string detect_udf = "nUDF_detect";
  std::string classify_udf = "nUDF_classify";
  std::string recog_udf = "nUDF_recog";
  /// Label tested by classify-style predicates.
  std::string pattern_label = "class_3";
};

/// Type 1: Q_db and Q_learning independent — total printed meters for a
/// pattern recognized by the classifier.
std::string MakeType1Query(const QueryParams& params);

/// Type 2: Q_db depends on Q_learning — per-pattern defect rate.
std::string MakeType2Query(const QueryParams& params);

/// Type 3: Q_learning depends on Q_db — defect rate under sensor conditions.
std::string MakeType3Query(const QueryParams& params);

/// Type 4: interdependent — recorded pattern disagrees with the recognized
/// pattern (nUDF in a non-equi join condition, as printed in the paper).
std::string MakeType4Query(const QueryParams& params);

/// Type 4 equality variant: F.patternID = nUDF_recog(V.keyframe), the form
/// hint rule 3 turns into a symmetric hash join.
std::string MakeType4EqualityQuery(const QueryParams& params);

/// Two-nUDF variant from Section II's discussion (detect before classify).
std::string MakeTwoUdfQuery(const QueryParams& params);

/// Type 3 with conditional model selection: the family nUDF picks the model
/// variant from the row's humidity/temperature (the paper's "various models
/// are trained for different humidity and temperature combinations").
std::string MakeType3ModelSelectionQuery(const QueryParams& params);

/// A query of the given type (1..4), randomizing the tested label.
std::string MakeQueryOfType(int type, const QueryParams& params, Rng* rng);

}  // namespace dl2sql::workload
