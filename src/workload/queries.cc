#include "workload/queries.h"

#include <cmath>

#include "common/string_util.h"

namespace dl2sql::workload {

namespace {

/// Relational predicate block hitting the requested accumulative
/// selectivity. The dial sits on humidity alone (humidity ~ U[0,100), so
/// `humidity > 100*(1-s)` passes exactly an s-fraction in expectation); the
/// temperature and date predicates keep the paper's query shape but are
/// non-binding, which keeps the realized selectivity low-variance at small
/// dataset scales.
std::string RelationalPredicates(double selectivity) {
  const double humidity_threshold = 100.0 * (1.0 - selectivity);
  return "F.humidity > " + FormatDouble(humidity_threshold, 4) +
         " and F.temperature > 0.0"
         " and F.printdate > '2021-01-01' and F.printdate < '2021-12-31'"
         " and V.date > '2021-01-01' and V.date < '2021-12-31'";
}

}  // namespace

std::string MakeType1Query(const QueryParams& params) {
  return "SELECT sum(meter) FROM fabric F, video V WHERE F.transID = "
         "V.transID and " +
         RelationalPredicates(params.selectivity) + " and " +
         params.classify_udf + "(V.keyframe) = '" + params.pattern_label + "'";
}

std::string MakeType2Query(const QueryParams& params) {
  return "SELECT patternID, count(" + params.detect_udf +
         "(V.keyframe) = TRUE) / sum(meter) FROM fabric F, video V WHERE "
         "F.transID = V.transID and " +
         RelationalPredicates(params.selectivity) + " GROUP BY patternID";
}

std::string MakeType3Query(const QueryParams& params) {
  return "SELECT patternID, count(*) FROM fabric F, video V WHERE F.transID "
         "= V.transID and " +
         RelationalPredicates(params.selectivity) + " and " +
         params.detect_udf + "(V.keyframe) = FALSE GROUP BY patternID";
}

std::string MakeType4Query(const QueryParams& params) {
  return "SELECT patternID FROM fabric F, video V WHERE F.transID = "
         "V.transID and " +
         RelationalPredicates(params.selectivity) + " and F.patternID != " +
         params.recog_udf + "(V.keyframe)";
}

std::string MakeType4EqualityQuery(const QueryParams& params) {
  return "SELECT F.patternID FROM fabric F, video V WHERE " +
         RelationalPredicates(params.selectivity) + " and F.patternID = " +
         params.recog_udf + "(V.keyframe)";
}

std::string MakeTwoUdfQuery(const QueryParams& params) {
  return "SELECT patternID, F.transID FROM fabric F, video V WHERE F.transID "
         "= V.transID and " +
         RelationalPredicates(params.selectivity) + " and " +
         params.detect_udf + "(V.keyframe) = TRUE and " + params.classify_udf +
         "(V.keyframe) = '" + params.pattern_label + "'";
}

std::string MakeType3ModelSelectionQuery(const QueryParams& params) {
  return "SELECT patternID, count(*) FROM fabric F, video V WHERE F.transID "
         "= V.transID and " +
         RelationalPredicates(params.selectivity) +
         " and nUDF_detect_cond(V.keyframe, F.humidity, F.temperature) = "
         "FALSE GROUP BY patternID";
}

std::string MakeQueryOfType(int type, const QueryParams& params, Rng* rng) {
  QueryParams p = params;
  if (rng != nullptr) {
    p.pattern_label = "class_" + std::to_string(rng->UniformInt(0, 9));
  }
  switch (type) {
    case 1:
      return MakeType1Query(p);
    case 2:
      return MakeType2Query(p);
    case 3:
      return MakeType3Query(p);
    case 4:
      return MakeType4Query(p);
    default:
      return MakeType1Query(p);
  }
}

}  // namespace dl2sql::workload
