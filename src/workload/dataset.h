/// \file dataset.h
/// \brief Synthetic Alibaba-IoT textile-printing dataset (Section V).
///
/// The paper's testbed: five tables — video, fabric, client, order, device —
/// with sizes in ratio 100:10:1:10:1, surveillance keyframes resized to
/// 224x224x3, 100M tuples total. We generate the same schema and ratios at a
/// configurable scale with deterministic pseudo-random content; keyframes
/// default to a smaller spatial size so the relational inference path stays
/// tractable (see DESIGN.md substitutions).
///
/// Columns are generated with known distributions so query templates can hit
/// preset selectivities exactly:
///   fabric.humidity    ~ U[0, 100)
///   fabric.temperature ~ U[0, 40)
///   fabric.printdate   ~ U{2021-01-01 .. 2021-12-31} (ISO strings)
#pragma once

#include "common/random.h"
#include "db/database.h"
#include "tensor/tensor.h"

namespace dl2sql::workload {

struct DatasetOptions {
  /// Rows in the video table; other tables follow the 100:10:1:10:1 ratio.
  int64_t video_rows = 2000;
  /// Keyframe tensor shape (CHW). The paper uses 224x224x3.
  int64_t keyframe_channels = 3;
  int64_t keyframe_size = 16;
  /// Distinct fabric patterns.
  int64_t num_patterns = 10;
  uint64_t seed = 2022;
};

/// Derived table sizes for a given options struct.
struct DatasetSizes {
  int64_t video = 0, fabric = 0, client = 0, order = 0, device = 0;
  int64_t Total() const { return video + fabric + client + order + device; }
};

DatasetSizes ComputeSizes(const DatasetOptions& options);

/// Creates and fills the five tables in `db`'s catalog, then ANALYZEs them.
Status PopulateDatabase(db::Database* db, const DatasetOptions& options);

/// Generates one synthetic keyframe (used by tests and selectivity probes).
Tensor MakeKeyframe(const DatasetOptions& options, Rng* rng);

}  // namespace dl2sql::workload
