/// \file table4_storage.cc
/// \brief Reproduces Table IV: storage overhead (KB) of the three model
/// representations as ResNet depth grows.
///
/// Paper shape to reproduce: DL2SQL (relational tables) > DB-PyTorch
/// (TorchScript-analog) > DB-UDF (compiled blob), all growing linearly with
/// depth.
#include "bench/bench_util.h"
#include "dl2sql/converter.h"
#include "nn/serialize.h"

using namespace dl2sql;          // NOLINT
using namespace dl2sql::bench;   // NOLINT

int main() {
  const int64_t max_depth = FullScale() ? 40 : 25;
  PrintHeader("Table IV: storage overheads vs model depth",
              {"Depth", "Params", "DL2SQL(KB)", "DB-PyTorch(KB)",
               "DB-UDF(KB)"});
  for (int64_t depth = 5; depth <= max_depth; depth += 5) {
    nn::BuilderOptions b;
    b.input_channels = 3;
    b.input_size = 16;
    b.base_channels = 8;
    b.num_classes = 10;
    auto model = nn::BuildResNet(depth, b);
    BENCH_CHECK_OK(model.status());

    db::Database db;
    core::ConvertOptions copts;
    copts.table_prefix = "t4_d" + std::to_string(depth);
    auto converted = core::ConvertModel(*model, copts, &db);
    BENCH_CHECK_OK(converted.status());
    auto relational = core::StaticStorageBytes(*converted, db);
    BENCH_CHECK_OK(relational.status());
    auto script = nn::SerializedSize(*model, nn::ModelFormat::kScript);
    auto blob = nn::SerializedSize(*model, nn::ModelFormat::kCompiledBlob);
    BENCH_CHECK_OK(script.status());
    BENCH_CHECK_OK(blob.status());

    PrintCell(depth);
    PrintCell(model->NumParameters());
    PrintCell(static_cast<double>(*relational) / 1024.0);
    PrintCell(static_cast<double>(*script) / 1024.0);
    PrintCell(static_cast<double>(*blob) / 1024.0);
    EndRow();
  }
  return 0;
}
