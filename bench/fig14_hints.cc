/// \file fig14_hints.cc
/// \brief Reproduces Fig. 14: effectiveness of the optimizer hint rules —
/// DL2SQL with vs without hints across nUDF/relational selectivities, plus
/// the pruning of nUDF invocations the hints achieve.
#include "bench/bench_util.h"

using namespace dl2sql;            // NOLINT
using namespace dl2sql::bench;     // NOLINT
using namespace dl2sql::workload;  // NOLINT

int main() {
  TestbedOptions options = StandardOptions();
  auto tb = Testbed::Create(options);
  BENCH_CHECK_OK(tb.status());
  const int count = FullScale() ? 5 : 2;

  PrintHeader("Fig. 14: hint rules vs no hints (Type 3, edge)",
              {"Sel(%)", "NoHints(s)", "Hints(s)", "Speedup", "CallsNoHint",
               "CallsHint"});
  for (double s : {0.0001, 0.001, 0.004, 0.01}) {
    (*tb)->dl2sql()->database().reset_neural_calls();
    auto plain = (*tb)->RunTypeWorkload((*tb)->dl2sql(), 3, count, s, 5);
    BENCH_CHECK_OK(plain.status());
    const int64_t plain_calls = (*tb)->dl2sql()->database().neural_calls();

    (*tb)->dl2sql_op()->database().reset_neural_calls();
    auto hinted = (*tb)->RunTypeWorkload((*tb)->dl2sql_op(), 3, count, s, 5);
    BENCH_CHECK_OK(hinted.status());
    const int64_t hint_calls = (*tb)->dl2sql_op()->database().neural_calls();

    PrintCell(s * 100.0);
    PrintCell(plain->Total());
    PrintCell(hinted->Total());
    PrintCell(hinted->Total() > 0 ? plain->Total() / hinted->Total() : 0.0);
    PrintCell(plain_calls / count);
    PrintCell(hint_calls / count);
    EndRow();
  }

  PrintHeader("Fig. 14 (cont.): two-nUDF ordering (detect before classify)",
              {"Sel(%)", "NoHints(s)", "Hints(s)", "Speedup"});
  for (double s : {0.001, 0.01}) {
    QueryParams p;
    p.selectivity = s;
    const std::string sql = MakeTwoUdfQuery(p);
    engines::QueryCost c_plain, c_hint;
    for (int i = 0; i < count; ++i) {
      engines::QueryCost c;
      BENCH_CHECK_OK(
          (*tb)->dl2sql()->ExecuteCollaborative(sql, &c).status());
      c_plain += c;
      BENCH_CHECK_OK(
          (*tb)->dl2sql_op()->ExecuteCollaborative(sql, &c).status());
      c_hint += c;
    }
    PrintCell(s * 100.0);
    PrintCell(c_plain.Total() / count);
    PrintCell(c_hint.Total() / count);
    PrintCell(c_hint.Total() > 0 ? c_plain.Total() / c_hint.Total() : 0.0);
    EndRow();
  }
  return 0;
}
