/// \file oocore_scale.cc
/// \brief Out-of-core scale demonstration: a fig8-style relational mix
/// (hash join, grouped + global aggregation, filter/project) over a fact
/// table ~10x larger than the configured buffer-pool budget.
///
/// The paged run happens FIRST, before any in-memory copy of the data
/// exists, so the sampled resident-set growth genuinely reflects the paged
/// working set (pool frames + spill scratch + the served result), not the
/// dataset. The run must
///   - keep the RSS delta below the logical data size (bounded peak RSS),
///   - record spills in system.query_profiles (both spill paths exercised),
///   - and produce bit-identical results: every query's row-key checksum is
///     compared against a serial in-memory Database over the same data.
///
/// Emits BENCH_oocore.json (mix_paged_sec / mix_inmem_sec / peak_rss_delta_mb
/// / spill counters plus hardware_concurrency) for
/// scripts/check_bench_regression.py. `--quick` shrinks the dataset for CI;
/// the scale ratio stays >= 10x either way.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/cache.h"
#include "common/logging.h"
#include "common/mem_tracker.h"
#include "common/timer.h"
#include "db/database.h"
#include "db/exec/row_key.h"
#include "db/storage/paged_table.h"
#include "db/storage/storage_engine.h"

using namespace dl2sql;      // NOLINT
using namespace dl2sql::db;  // NOLINT

namespace {

constexpr int64_t kDimRows = 96;
constexpr int64_t kSliceRows = 8192;  // load granularity (stays resident)

// The fig8-style statement shapes: join, grouped aggregation, global
// aggregation, filter+project. The join has no pushable single-side filter,
// so the whole fact table reaches the join input and must spill.
const char* const kMixSql[] = {
    "SELECT F.id, F.grp, D.w FROM fact F INNER JOIN dim D ON F.grp = D.id",
    "SELECT grp, count(*) AS c, sum(val) AS s, avg(val) AS a, "
    "min(val) AS lo, max(val) AS hi FROM fact GROUP BY grp",
    "SELECT count(*) AS c, sum(val) AS s FROM fact",
    "SELECT id * 2 AS d, val + 1.0 AS v FROM fact WHERE grp < 7",
};

struct ScaleConfig {
  int64_t fact_rows;
  size_t pool_bytes;
  int64_t query_mem_limit;
};

/// Default exercises ~29 MB of data against a 2 MB pool (~14x); --quick
/// shrinks to ~12 MB against 1 MB (~12x) for CI. The query memory limit must
/// sit below the fact table (forcing the spill paths) but above the grace
/// join's global pair vector (16 bytes per matching pair, one per fact row).
ScaleConfig PickScale(bool quick) {
  if (quick) return {160000, 1u << 20, 4 << 20};
  return {400000, 2u << 20, 12 << 20};
}

/// One fact row i, shared by the paged and the in-memory loader so both
/// databases hold bit-identical data.
std::vector<Value> FactRow(int64_t i, const std::string& payload) {
  return {Value::Int(i), Value::Int((i * 7919) % kDimRows),
          Value::Float(static_cast<double>((i * 104729 + 13) % 100000) / 7.0),
          Value::String(payload)};
}

TableSchema FactSchema() {
  return TableSchema({{"id", DataType::kInt64},
                      {"grp", DataType::kInt64},
                      {"val", DataType::kFloat64},
                      {"payload", DataType::kString}});
}

void FillDim(Database* db) {
  TableSchema dim_schema({{"id", DataType::kInt64}, {"w", DataType::kInt64}});
  Table dim{dim_schema};
  for (int64_t i = 0; i < kDimRows; ++i) {
    DL2SQL_CHECK(dim.AppendRow({Value::Int(i), Value::Int(i * i)}).ok());
  }
  DL2SQL_CHECK(db->RegisterTable("dim", std::move(dim)).ok());
}

/// Streams the fact table into the paged database in kSliceRows slices so
/// the full dataset is never resident; returns its logical byte size.
int64_t FillFactPaged(Database* db, int64_t rows) {
  const std::string payload(48, 'p');
  storage::PagedTableBuilder builder(db->storage_engine(), FactSchema());
  int64_t logical_bytes = 0;
  for (int64_t base = 0; base < rows; base += kSliceRows) {
    Table slice{FactSchema()};
    const int64_t end = std::min(rows, base + kSliceRows);
    for (int64_t i = base; i < end; ++i) {
      DL2SQL_CHECK(slice.AppendRow(FactRow(i, payload)).ok());
    }
    logical_bytes += static_cast<int64_t>(slice.ByteSize());
    DL2SQL_CHECK(builder.Append(slice).ok());
  }
  auto data = builder.Finish();
  DL2SQL_CHECK(data.ok()) << data.status().ToString();
  DL2SQL_CHECK(
      db->RegisterTable("fact", Table::FromPaged(FactSchema(), std::move(*data)))
          .ok());
  return logical_bytes;
}

void FillFactResident(Database* db, int64_t rows) {
  const std::string payload(48, 'p');
  Table fact{FactSchema()};
  for (int64_t i = 0; i < rows; ++i) {
    DL2SQL_CHECK(fact.AppendRow(FactRow(i, payload)).ok());
  }
  DL2SQL_CHECK(db->RegisterTable("fact", std::move(fact)).ok());
}

/// Order-sensitive bit-level checksum over every row of `t`, via the same
/// canonical value encoding the executor uses for join/group keys.
uint64_t TableChecksum(const Table& t) {
  std::vector<const Column*> cols;
  cols.reserve(static_cast<size_t>(t.num_columns()));
  for (int c = 0; c < t.num_columns(); ++c) cols.push_back(&t.column(c));
  uint64_t h = 0xec0eca11u;
  std::string key;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    key.clear();
    for (const Column* col : cols) AppendKeyPart(*col, r, &key);
    h = Hash64(key.data(), key.size(), h);
  }
  return h ^ (static_cast<uint64_t>(t.num_rows()) << 32);
}

struct MixResult {
  double seconds = 0;
  int64_t max_rss_delta = 0;
  std::vector<uint64_t> checksums;
};

MixResult RunMix(Database* db) {
  const int64_t rss_base = storage::StorageEngine::UpdateProcessRssMetrics();
  MixResult out;
  Stopwatch watch;
  for (const char* sql : kMixSql) {
    auto r = db->Execute(sql);
    DL2SQL_CHECK(r.ok()) << sql << ": " << r.status().ToString();
    out.checksums.push_back(TableChecksum(*r));
    const int64_t rss = storage::StorageEngine::UpdateProcessRssMetrics();
    out.max_rss_delta = std::max(out.max_rss_delta, rss - rss_base);
  }
  out.seconds = watch.ElapsedSeconds();
  return out;
}

int64_t SumProfileColumn(Database* db, const char* column) {
  auto r = db->Execute(std::string("SELECT sum(") + column +
                       ") AS s FROM system.query_profiles");
  DL2SQL_CHECK(r.ok()) << r.status().ToString();
  // sum() yields Float64 (or NULL over an empty profile ring).
  auto v = r->column(0).GetValue(0).AsDouble();
  return v.ok() ? static_cast<int64_t>(*v) : 0;
}

double ToMb(int64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const ScaleConfig cfg = PickScale(quick);

  MemTracker::SetEnabled(true);
  const bool tracking = MemTracker::Enabled();
  if (!tracking) {
    std::printf(
        "note: resource accounting compiled out; spill paths cannot "
        "trigger, measuring paged iteration only\n");
  }

  // ---- paged phase first: no in-memory copy of the data exists yet, so the
  // sampled RSS growth is the paged working set, not the dataset.
  Database paged;
  storage::StorageOptions opts = storage::StorageOptions::FromEnv();
  opts.pool_bytes = cfg.pool_bytes;
  opts.page_min_bytes = 64 * 1024;
  DL2SQL_CHECK(paged.set_storage_mode(StorageMode::kPaged, opts).ok());
  FillDim(&paged);
  const int64_t data_bytes = FillFactPaged(&paged, cfg.fact_rows);
  if (tracking) paged.set_query_mem_limit(cfg.query_mem_limit);

  const double ratio = static_cast<double>(data_bytes) /
                       static_cast<double>(cfg.pool_bytes);
  std::printf("fact rows: %lld, data %.1f MB, pool %.1f MB (%.1fx), "
              "query mem limit %.1f MB\n",
              static_cast<long long>(cfg.fact_rows), ToMb(data_bytes),
              ToMb(static_cast<int64_t>(cfg.pool_bytes)), ratio,
              ToMb(cfg.query_mem_limit));
  if (ratio < 10.0) {
    std::fprintf(stderr, "FAIL: scale ratio %.1fx below the 10x target\n",
                 ratio);
    return 1;
  }

  const MixResult paged_run = RunMix(&paged);
  const int64_t spill_bytes =
      tracking ? SumProfileColumn(&paged, "spill_bytes") : 0;
  const int64_t spill_partitions =
      tracking ? SumProfileColumn(&paged, "spill_partitions") : 0;
  std::printf("paged mix: %.3fs, max RSS delta %.1f MB, spill %.1f MB "
              "across %lld partitions\n",
              paged_run.seconds, ToMb(paged_run.max_rss_delta),
              ToMb(spill_bytes), static_cast<long long>(spill_partitions));

  // ---- serial in-memory reference over identical data.
  Database ref;
  DL2SQL_CHECK(ref.set_storage_mode(StorageMode::kInMemory).ok());
  FillDim(&ref);
  FillFactResident(&ref, cfg.fact_rows);
  const MixResult ref_run = RunMix(&ref);
  std::printf("in-memory mix: %.3fs\n", ref_run.seconds);

  bool ok = true;
  for (size_t q = 0; q < paged_run.checksums.size(); ++q) {
    if (paged_run.checksums[q] != ref_run.checksums[q]) {
      std::fprintf(stderr, "FAIL: result mismatch for %s\n", kMixSql[q]);
      ok = false;
    }
  }
  if (tracking && spill_bytes <= 0) {
    std::fprintf(stderr,
                 "FAIL: no spills recorded; the mix never left memory\n");
    ok = false;
  }
  // Bounded peak RSS: the paged working set must stay below the logical data
  // size (an in-memory run needs at least all of it resident). The bound is
  // deliberately loose — it covers the pool, spill scratch, the served
  // result, and allocator slack — but it is the line between "out of core"
  // and "quietly loaded everything".
  if (paged_run.max_rss_delta >= data_bytes) {
    std::fprintf(stderr,
                 "FAIL: paged RSS delta %.1f MB >= data size %.1f MB\n",
                 ToMb(paged_run.max_rss_delta), ToMb(data_bytes));
    ok = false;
  }

  std::FILE* out = std::fopen("BENCH_oocore.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_oocore.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"oocore_scale\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"quick\": %s,\n"
               "  \"fact_rows\": %lld,\n"
               "  \"data_mb\": %.2f,\n"
               "  \"pool_mb\": %.2f,\n"
               "  \"scale_ratio\": %.2f,\n"
               "  \"mix_paged_sec\": %.6f,\n"
               "  \"mix_inmem_sec\": %.6f,\n"
               "  \"peak_rss_delta_mb\": %.2f,\n"
               "  \"spill_bytes\": %lld,\n"
               "  \"spill_partitions\": %lld\n}\n",
               std::thread::hardware_concurrency(), quick ? "true" : "false",
               static_cast<long long>(cfg.fact_rows), ToMb(data_bytes),
               ToMb(static_cast<int64_t>(cfg.pool_bytes)), ratio,
               paged_run.seconds, ref_run.seconds,
               ToMb(paged_run.max_rss_delta),
               static_cast<long long>(spill_bytes),
               static_cast<long long>(spill_partitions));
  std::fclose(out);
  std::printf("wrote BENCH_oocore.json\n");

  if (!ok) return 1;
  std::printf("OK: %.1fx out-of-core mix bit-identical with bounded RSS\n",
              ratio);
  return 0;
}
