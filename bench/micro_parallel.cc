/// \file micro_parallel.cc
/// \brief Morsel-parallel speedup microbench: filter, hash-join probe, hash
/// aggregation, and batched nUDF inference at 1/2/4/8 worker threads.
///
/// Each workload runs the identical SQL against the same data with Devices
/// whose pools differ only in thread count; reported speedup is
/// serial_seconds / parallel_seconds (median of kReps runs). Results are
/// also emitted to BENCH_parallel.json for tooling. On a single-core host
/// the extra threads just contend — run on >= 4 cores for meaningful
/// numbers.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accel/device.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "db/database.h"

using namespace dl2sql;         // NOLINT
using namespace dl2sql::bench;  // NOLINT

namespace {

constexpr int kReps = 5;
const std::vector<int> kThreadCounts = {1, 2, 4, 8};

struct Workload {
  std::string name;
  std::string sql;
};

std::shared_ptr<Device> MakeCpuDevice(int threads) {
  DeviceProfile profile = Device::ServerCpuProfile();
  profile.name = "bench-cpu-" + std::to_string(threads);
  profile.num_threads = threads;
  return std::make_shared<Device>(profile);
}

void FillTables(db::Database* database, int64_t rows) {
  db::TableSchema fact_schema({{"id", db::DataType::kInt64},
                               {"grp", db::DataType::kInt64},
                               {"val", db::DataType::kInt64}});
  db::Table fact{fact_schema};
  for (int64_t i = 0; i < rows; ++i) {
    BENCH_CHECK_OK(fact.AppendRow({db::Value::Int(i),
                                   db::Value::Int((i * 7919) % 256),
                                   db::Value::Int((i * 104729 + 13) % 10000)}));
  }
  BENCH_CHECK_OK(database->RegisterTable("fact", std::move(fact)));

  db::TableSchema dim_schema(
      {{"id", db::DataType::kInt64}, {"w", db::DataType::kInt64}});
  db::Table dim{dim_schema};
  for (int64_t i = 0; i < 256; ++i) {
    BENCH_CHECK_OK(dim.AppendRow({db::Value::Int(i), db::Value::Int(i * i)}));
  }
  BENCH_CHECK_OK(database->RegisterTable("dim", std::move(dim)));

  // Compute-heavy, parallel-safe batched nUDF: a small fixed-point iteration
  // per row stands in for per-tuple model inference.
  db::NUdfInfo info;
  info.model_name = "bench-iter";
  database->udfs().RegisterNeural(
      "nudf_iter", db::DataType::kFloat64,
      [](const std::vector<db::Value>& args) -> Result<db::Value> {
        DL2SQL_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        for (int k = 0; k < 200; ++k) x = x * 0.999 + 0.5;
        return db::Value::Float(x);
      },
      info,
      [](const std::vector<std::vector<db::Value>>& batch)
          -> Result<std::vector<db::Value>> {
        std::vector<db::Value> out;
        out.reserve(batch.size());
        for (const auto& row : batch) {
          DL2SQL_ASSIGN_OR_RETURN(double x, row[0].AsDouble());
          for (int k = 0; k < 200; ++k) x = x * 0.999 + 0.5;
          out.push_back(db::Value::Float(x));
        }
        return out;
      },
      /*arity=*/1, /*parallel_safe=*/true);
}

double MedianSeconds(db::Database* database, const std::string& sql) {
  // Warm-up (hash indexes, catalog stats) outside the timed region.
  BENCH_CHECK_OK(database->Execute(sql).status());
  std::vector<double> secs;
  for (int r = 0; r < kReps; ++r) {
    Stopwatch watch;
    BENCH_CHECK_OK(database->Execute(sql).status());
    secs.push_back(watch.ElapsedSeconds());
  }
  std::sort(secs.begin(), secs.end());
  return secs[secs.size() / 2];
}

}  // namespace

int main() {
  const int64_t rows = FullScale() ? 2000000 : 400000;
  db::Database database;
  FillTables(&database, rows);

  const std::vector<Workload> workloads = {
      {"filter",
       "SELECT id, val FROM fact WHERE val % 7 = 3 AND (val * 3 + id) % 11 "
       "< 4"},
      {"join",
       "SELECT F.id, D.w FROM fact F INNER JOIN dim D ON F.grp = D.id WHERE "
       "F.val % 2 = 0"},
      {"aggregate",
       "SELECT grp, count(*) AS c, sum(val) AS s, min(val) AS mn, max(val) "
       "AS mx FROM fact GROUP BY grp"},
      {"nudf_batch", "SELECT id, nudf_iter(val) AS p FROM fact"},
  };

  // seconds[workload][threads]
  std::map<std::string, std::map<int, double>> seconds;
  std::vector<std::shared_ptr<Device>> devices;  // keep pools alive
  for (int threads : kThreadCounts) {
    devices.push_back(MakeCpuDevice(threads));
    database.set_exec_options(
        {devices.back().get(), ThreadPool::kDefaultMorselSize});
    for (const auto& w : workloads) {
      seconds[w.name][threads] = MedianSeconds(&database, w.sql);
    }
  }

  // Row-path (DL2SQL_VECTOR=OFF equivalent) single-thread baseline for the
  // relational workloads: the vectorized-vs-row speedup is what re-derives
  // the cost model's SQL calibration factor. The nUDF workload is excluded —
  // inference dominates it and both modes share the batching path.
  std::map<std::string, double> row_seconds;
  database.set_vectorized(false);
  database.set_exec_options(
      {devices.front().get(), ThreadPool::kDefaultMorselSize});
  for (const auto& w : workloads) {
    if (w.name == "nudf_batch") continue;
    row_seconds[w.name] = MedianSeconds(&database, w.sql);
  }
  database.set_vectorized(true);

  PrintHeader("Morsel-parallel speedup (rows=" + std::to_string(rows) + ")",
              {"Workload", "Threads", "Median(s)", "Speedup"});
  for (const auto& w : workloads) {
    const double base = seconds[w.name][1];
    for (int threads : kThreadCounts) {
      const double s = seconds[w.name][threads];
      PrintCell(w.name);
      PrintCell(static_cast<int64_t>(threads));
      PrintCell(s);
      PrintCell(base / s);
      EndRow();
    }
  }

  PrintHeader("Vectorized vs row path (1 thread)",
              {"Workload", "Row(s)", "Vector(s)", "Speedup"});
  for (const auto& w : workloads) {
    if (row_seconds.count(w.name) == 0) continue;
    PrintCell(w.name);
    PrintCell(row_seconds[w.name]);
    PrintCell(seconds[w.name][1]);
    PrintCell(row_seconds[w.name] / seconds[w.name][1]);
    EndRow();
  }

  std::FILE* out = std::fopen("BENCH_parallel.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_parallel.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"micro_parallel\",\n");
  // Core count of the producing machine: check_bench_regression.py skips
  // multi-thread scaling keys when baseline and fresh counts differ (or
  // either box has < 4 cores), so 8-thread timings from a 1-core container
  // never gate a multi-core run (or vice versa).
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"rows\": %lld,\n  \"reps\": %d,\n",
               static_cast<long long>(rows), kReps);
  std::fprintf(out, "  \"workloads\": [\n");
  for (size_t i = 0; i < workloads.size(); ++i) {
    const auto& w = workloads[i];
    const double base = seconds[w.name][1];
    std::fprintf(out, "    {\"name\": \"%s\", \"seconds\": {", w.name.c_str());
    for (size_t t = 0; t < kThreadCounts.size(); ++t) {
      std::fprintf(out, "%s\"%d\": %.6f", t == 0 ? "" : ", ", kThreadCounts[t],
                   seconds[w.name][kThreadCounts[t]]);
    }
    std::fprintf(out, "}, \"speedup\": {");
    for (size_t t = 0; t < kThreadCounts.size(); ++t) {
      std::fprintf(out, "%s\"%d\": %.3f", t == 0 ? "" : ", ", kThreadCounts[t],
                   base / seconds[w.name][kThreadCounts[t]]);
    }
    std::fprintf(out, "}");
    // Flat *_sec leaves: these are the keys the regression guard tracks
    // (scripts/check_bench_regression.py matches "seconds"/"_sec" suffixes
    // and additionally requires the registered BENCH_parallel.json keys).
    std::fprintf(out, ", \"vec_1t_sec\": %.6f, \"vec_8t_sec\": %.6f", base,
                 seconds[w.name][8]);
    if (row_seconds.count(w.name) != 0) {
      std::fprintf(out, ", \"row_1t_sec\": %.6f, \"vector_speedup_1t\": %.3f",
                   row_seconds[w.name], row_seconds[w.name] / base);
    }
    std::fprintf(out, "}%s\n", i + 1 < workloads.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"metrics_snapshot\": %s\n",
               MetricsSnapshotJson().c_str());
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_parallel.json\n");
  return 0;
}
