/// \file ablation_symmetric_join.cc
/// \brief Ablation of the symmetric-hash-join buffer design (Section IV-B,
/// hint rule 3): throughput and eviction/cleanup behaviour across memory
/// budgets and nUDF batch sizes.
#include "bench/bench_util.h"
#include "common/random.h"
#include "db/exec/symmetric_hash_join.h"

using namespace dl2sql;          // NOLINT
using namespace dl2sql::bench;   // NOLINT
using namespace dl2sql::db;      // NOLINT

namespace {

Table MakeKeyedTable(int64_t rows, int64_t key_range, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> keys(static_cast<size_t>(rows));
  for (auto& k : keys) k = rng.UniformInt(0, key_range - 1);
  auto t = Table::FromColumns(TableSchema({{"k", DataType::kInt64}}),
                              {Column::Ints(std::move(keys))});
  return std::move(t).ValueOrDie();
}

}  // namespace

int main() {
  const int64_t rows = FullScale() ? 100000 : 20000;
  const int64_t key_range = rows / 20;
  Table left = MakeKeyedTable(rows, key_range, 1);
  Table right = MakeKeyedTable(rows, key_range, 2);
  ExprPtr key = Expr::BoundCol(0, "k");
  UdfRegistry udfs;

  PrintHeader("Ablation: symmetric hash join vs memory budget (" +
                  std::to_string(rows) + " rows/side)",
              {"Budget", "Seconds", "EvictedBkts", "EvictedTpls",
               "CleanupPairs"});
  for (int64_t budget : std::vector<int64_t>{0, rows / 16, rows / 4, rows, 4 * rows}) {
    SymmetricHashJoinOptions opts;
    opts.batch_size = 256;
    opts.memory_budget_tuples = budget;
    SymmetricHashJoinStats stats;
    EvalContext ctx;
    ctx.udfs = &udfs;
    Stopwatch watch;
    auto pairs =
        SymmetricHashJoinPairs(left, right, *key, *key, &ctx, opts, &stats);
    BENCH_CHECK_OK(pairs.status());
    PrintCell(budget);
    PrintCell(watch.ElapsedSeconds());
    PrintCell(stats.evicted_buckets);
    PrintCell(stats.evicted_tuples);
    PrintCell(stats.cleanup_pairs);
    EndRow();
  }

  PrintHeader("Ablation: batch size (unbounded memory)",
              {"BatchSize", "Seconds", "OnlinePairs"});
  for (int64_t batch : std::vector<int64_t>{8, 64, 512, 4096}) {
    SymmetricHashJoinOptions opts;
    opts.batch_size = batch;
    SymmetricHashJoinStats stats;
    EvalContext ctx;
    ctx.udfs = &udfs;
    Stopwatch watch;
    auto pairs =
        SymmetricHashJoinPairs(left, right, *key, *key, &ctx, opts, &stats);
    BENCH_CHECK_OK(pairs.status());
    PrintCell(batch);
    PrintCell(watch.ElapsedSeconds());
    PrintCell(stats.online_pairs);
    EndRow();
  }
  return 0;
}
