/// \file bench_util.h
/// \brief Shared helpers for the experiment-reproduction binaries.
///
/// Each bench regenerates one table or figure of the paper's evaluation
/// section and prints it in a comparable layout. Absolute numbers differ from
/// the ARM edge testbed; EXPERIMENTS.md records the shape comparisons.
///
/// Scale control: set DL2SQL_BENCH_SCALE=full for paper-sized sweeps
/// (slower); the default "small" keeps every binary in the seconds range.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "workload/testbed.h"

namespace dl2sql::bench {

inline bool FullScale() {
  const char* v = std::getenv("DL2SQL_BENCH_SCALE");
  return v != nullptr && std::strcmp(v, "full") == 0;
}

/// Standard testbed options used across benches (paper Section V analog).
inline workload::TestbedOptions StandardOptions() {
  workload::TestbedOptions options;
  options.dataset.video_rows = FullScale() ? 20000 : 1500;
  options.dataset.keyframe_size = FullScale() ? 24 : 16;
  options.dataset.keyframe_channels = 3;
  options.model_base_channels = 4;
  options.histogram_samples = FullScale() ? 128 : 32;
  return options;
}

/// Prints a header line followed by a separator.
inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& c : columns) std::printf("%-16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("----------------");
  std::printf("\n");
}

inline void PrintCell(const std::string& s) { std::printf("%-16s", s.c_str()); }
inline void PrintCell(double v) { std::printf("%-16.4f", v); }
inline void PrintCell(int64_t v) { std::printf("%-16lld", (long long)v); }
inline void EndRow() { std::printf("\n"); }

/// Format version of the metrics snapshot embedded in BENCH_*.json files.
/// Bump when the snapshot layout changes so tooling can dispatch on it.
inline constexpr int kMetricsSnapshotVersion = 1;

/// Versioned observability snapshot for embedding into bench result files:
/// the full metrics registry plus the per-span-name trace summary. Returns a
/// JSON object; emit it under a "metrics_snapshot" key.
inline std::string MetricsSnapshotJson() {
  std::string out = "{\"version\": ";
  out += std::to_string(kMetricsSnapshotVersion);
  out += ", \"metrics\": ";
  out += MetricsRegistry::Global().ToJson();
  out += ", \"trace_summary\": ";
  out += TraceCollector::Global().SummaryJson();
  out += "}";
  return out;
}

/// Fails the binary loudly on error (benches have no recovery path).
#define BENCH_CHECK_OK(expr)                                          \
  do {                                                                \
    auto _st = (expr);                                                \
    if (!_st.ok()) {                                                  \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,   \
                   _st.ToString().c_str());                           \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

}  // namespace dl2sql::bench
