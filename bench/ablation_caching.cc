/// \file ablation_caching.cc
/// \brief Cross-query caching ablation on the fig8 mixed workload: per
/// engine, wall-clock seconds with caches disabled, with empty caches
/// (cold), and with warm caches, plus the warm speedups. Writes
/// BENCH_caching.json (consumed by scripts/check_bench_regression.py).
///
/// The repeated-query shape is the cache's target scenario: a dashboard or
/// monitoring loop re-issuing the same inference query. Warm runs answer
/// every nUDF row from the memoized results and reuse the prepared plans, so
/// the model never runs; the headline number is warm-vs-cold speedup.
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"

using namespace dl2sql;            // NOLINT
using namespace dl2sql::bench;     // NOLINT
using namespace dl2sql::workload;  // NOLINT

namespace {

double RunOnce(Testbed* tb, engines::CollaborativeEngine* engine, int per_type,
               double selectivity) {
  Stopwatch watch;
  auto cost = tb->RunMixedWorkload(engine, per_type, selectivity,
                                   /*seed=*/2022);
  BENCH_CHECK_OK(cost.status());
  return watch.ElapsedSeconds();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct EngineResult {
  std::string name;
  double disabled_seconds = 0;
  double cold_seconds = 0;
  double warm_seconds = 0;
};

}  // namespace

int main() {
  const int per_type = FullScale() ? 3 : 1;
  const int kReps = 3;
  TestbedOptions options = StandardOptions();
  options.device = DeviceKind::kServerCpu;
  auto tb = Testbed::Create(options);
  BENCH_CHECK_OK(tb.status());

  const workload::DatasetSizes sizes =
      workload::ComputeSizes(options.dataset);
  const double selectivity =
      std::min(0.05, 8.0 / static_cast<double>(sizes.fabric));

  db::CacheOptions off;
  off.enable_nudf_cache = false;
  off.enable_plan_cache = false;

  PrintHeader("Caching ablation: repeated fig8 mixed workload (seconds)",
              {"Approach", "Disabled", "Cold", "Warm", "Warm-vs-cold",
               "Warm-vs-off"});

  std::vector<engines::CollaborativeEngine*> engines_under_test = {
      (*tb)->udf(), (*tb)->dl2sql(), (*tb)->dl2sql_op()};
  std::vector<EngineResult> results;
  for (engines::CollaborativeEngine* engine : engines_under_test) {
    EngineResult r;
    r.name = engine->name();

    // Baseline: the exact pre-cache code paths (caches destroyed). First run
    // discarded so one-time deployment/warmup does not pollute the medians.
    engine->database().set_cache_options(off);
    (void)RunOnce(tb->get(), engine, per_type, selectivity);
    std::vector<double> disabled;
    for (int i = 0; i < kReps; ++i) {
      disabled.push_back(RunOnce(tb->get(), engine, per_type, selectivity));
    }
    r.disabled_seconds = Median(disabled);

    // Fresh empty caches: the cold run pays the probe+insert overhead, the
    // warm repeats answer inference from memoized results.
    engine->database().set_cache_options(db::CacheOptions{});
    r.cold_seconds = RunOnce(tb->get(), engine, per_type, selectivity);
    std::vector<double> warm;
    for (int i = 0; i < kReps; ++i) {
      warm.push_back(RunOnce(tb->get(), engine, per_type, selectivity));
    }
    r.warm_seconds = Median(warm);

    PrintCell(r.name);
    PrintCell(r.disabled_seconds);
    PrintCell(r.cold_seconds);
    PrintCell(r.warm_seconds);
    PrintCell(r.cold_seconds / r.warm_seconds);
    PrintCell(r.disabled_seconds / r.warm_seconds);
    EndRow();
    results.push_back(r);
  }

  std::FILE* out = std::fopen("BENCH_caching.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_caching.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"ablation_caching\",\n");
  std::fprintf(out, "  \"per_type\": %d,\n  \"reps\": %d,\n", per_type, kReps);
  std::fprintf(out, "  \"engines\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const EngineResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"disabled_seconds\": %.6f, "
                 "\"cold_seconds\": %.6f, \"warm_seconds\": %.6f, "
                 "\"speedup_warm_vs_cold\": %.3f, "
                 "\"speedup_warm_vs_disabled\": %.3f}%s\n",
                 r.name.c_str(), r.disabled_seconds, r.cold_seconds,
                 r.warm_seconds, r.cold_seconds / r.warm_seconds,
                 r.disabled_seconds / r.warm_seconds,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"metrics_snapshot\": %s\n",
               MetricsSnapshotJson().c_str());
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_caching.json\n");
  return 0;
}
