/// \file table6_depth.cc
/// \brief Reproduces Table VI: inference + loading cost vs ResNet depth at
/// selectivity 0.1% on the edge device (relational cost omitted, as in the
/// paper, being orders of magnitude smaller for deep models).
///
/// Paper shapes: DL2SQL-OP has the best *inference* time at every depth, but
/// its *loading* (building relational parameter tables) grows fastest, so
/// DB-PyTorch wins on total for deep ResNets.
#include "bench/bench_util.h"

using namespace dl2sql;            // NOLINT
using namespace dl2sql::bench;     // NOLINT
using namespace dl2sql::workload;  // NOLINT

int main() {
  const int64_t max_depth = FullScale() ? 40 : 20;
  const int count = FullScale() ? 3 : 1;

  PrintHeader("Table VI: cost vs model depth (Type 3, sel=0.1%, edge)",
              {"Depth", "Params", "Approach", "Inference(s)", "Loading(s)",
               "Infer+Load(s)"});

  for (int64_t depth = 5; depth <= max_depth; depth += 5) {
    TestbedOptions options = StandardOptions();
    // Depth sweep stresses the models, not the relational side: shrink the
    // dataset so deep-model runs stay tractable, and widen the models so the
    // parameter-table loading cost (the quantity Table VI tracks) is
    // non-trivial.
    options.dataset.video_rows = FullScale() ? 4000 : 600;
    options.resnet_depth = depth;
    options.model_base_channels = FullScale() ? 16 : 8;
    auto tb = Testbed::Create(options);
    BENCH_CHECK_OK(tb.status());
    const int64_t params = (*tb)->detect_model().NumParameters();
    // Paper: sel 0.1% of 10M fabric rows; scale-adapted to leave a handful
    // of qualified transactions.
    const workload::DatasetSizes sizes =
        workload::ComputeSizes(options.dataset);
    const double selectivity = 4.0 / static_cast<double>(sizes.fabric);

    for (engines::CollaborativeEngine* engine :
         {static_cast<engines::CollaborativeEngine*>((*tb)->dl2sql_op()),
          static_cast<engines::CollaborativeEngine*>((*tb)->udf()),
          static_cast<engines::CollaborativeEngine*>((*tb)->independent())}) {
      auto cost = (*tb)->RunTypeWorkload(engine, 3, count, selectivity, 11);
      BENCH_CHECK_OK(cost.status());
      PrintCell(depth);
      PrintCell(params);
      PrintCell(std::string(engine->name()));
      PrintCell(cost->inference_seconds);
      PrintCell(cost->loading_seconds);
      PrintCell(cost->inference_seconds + cost->loading_seconds);
      EndRow();
    }
  }
  return 0;
}
