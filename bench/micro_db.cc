/// \file micro_db.cc
/// \brief google-benchmark microbenchmarks of the lindb engine primitives
/// underlying every experiment: scan+filter, hash join, group-by, symmetric
/// hash join, and SQL parsing.
#include <benchmark/benchmark.h>

#include "db/database.h"
#include "workload/dataset.h"

namespace dl2sql {
namespace {

db::Database* SetupDb(int64_t video_rows) {
  static db::Database* cached = nullptr;
  static int64_t cached_rows = -1;
  if (cached == nullptr || cached_rows != video_rows) {
    delete cached;
    cached = new db::Database();
    workload::DatasetOptions opts;
    opts.video_rows = video_rows;
    opts.keyframe_size = 4;  // tiny blobs: relational speed is the subject
    DL2SQL_CHECK(workload::PopulateDatabase(cached, opts).ok());
    cached_rows = video_rows;
  }
  return cached;
}

void BM_ScanFilter(benchmark::State& state) {
  db::Database* db = SetupDb(state.range(0));
  for (auto _ : state) {
    auto r = db->Execute(
        "SELECT count(*) FROM fabric WHERE humidity > 50 AND temperature > "
        "20");
    DL2SQL_CHECK(r.ok()) << r.status().ToString();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) / 10);
}
BENCHMARK(BM_ScanFilter)->Arg(10000)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  db::Database* db = SetupDb(state.range(0));
  for (auto _ : state) {
    auto r = db->Execute(
        "SELECT count(*) FROM fabric F, video V WHERE F.transID = V.transID");
    DL2SQL_CHECK(r.ok()) << r.status().ToString();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(10000)->Arg(100000);

void BM_GroupBy(benchmark::State& state) {
  db::Database* db = SetupDb(state.range(0));
  for (auto _ : state) {
    auto r = db->Execute(
        "SELECT patternID, sum(meter), avg(humidity) FROM fabric GROUP BY "
        "patternID");
    DL2SQL_CHECK(r.ok()) << r.status().ToString();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) / 10);
}
BENCHMARK(BM_GroupBy)->Arg(10000)->Arg(100000);

void BM_SqlParse(benchmark::State& state) {
  const std::string sql =
      "SELECT patternID, count(nUDF_detect(V.keyframe) = TRUE) / sum(meter) "
      "FROM fabric F, video V WHERE F.transID = V.transID and F.humidity > "
      "80 and F.temperature > 30 and F.printdate > '2021-01-01' GROUP BY "
      "patternID ORDER BY patternID LIMIT 10";
  for (auto _ : state) {
    auto r = db::sql::ParseStatement(sql);
    DL2SQL_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SqlParse);

void BM_InsertRows(benchmark::State& state) {
  for (auto _ : state) {
    db::Database db;
    DL2SQL_CHECK(db.Execute("CREATE TABLE t (a INT, b FLOAT)").ok());
    for (int i = 0; i < state.range(0); ++i) {
      auto r = db.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                          std::to_string(i * 0.5) + ")");
      DL2SQL_CHECK(r.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InsertRows)->Arg(1000);

}  // namespace
}  // namespace dl2sql

BENCHMARK_MAIN();
