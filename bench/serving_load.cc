/// \file serving_load.cc
/// \brief Closed-loop multi-client serving benchmark over a fig8-style mixed
/// workload (inference predicates, retrieval + inference projection,
/// inference aggregation, pure relational), driven through QueryService
/// sessions. Sweeps 1/4/16 clients with cross-query nUDF batch coalescing on
/// vs off and reports QPS plus p50/p95/p99 statement latency. Writes
/// BENCH_serving.json (consumed by scripts/check_bench_regression.py).
///
/// Hard checks (exit 1): every request must succeed (the admission queue is
/// sized so nothing is rejected, and nothing may hang), every result must be
/// bit-identical to the single-threaded reference, and at 16 clients
/// coalescing must issue fewer model batches than running with it off.
///
/// A second sweep drives the same fig8 mix through a cluster coordinator
/// over 1/2/4 in-process shards (real TcpServer instances speaking the wire
/// protocol, each with its own database and model replica) and writes
/// BENCH_shard.json. Every scatter-gather render must be byte-identical to
/// the single-node reference; the mix_<N>shard_sec keys are gated on core
/// count by check_bench_regression.py, since shard scaling on a 1-core box
/// measures nothing.
///
/// --quick shrinks the table and iteration counts for CI smoke use; the
/// committed BENCH_serving.json / BENCH_shard.json snapshots are generated
/// with --quick so the regression guard compares like against like.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/coordinator.h"
#include "common/timer.h"
#include "nn/builders.h"
#include "nn/serialize.h"
#include "server/session.h"
#include "server/tcp_server.h"

using namespace dl2sql;         // NOLINT
using namespace dl2sql::bench;  // NOLINT

namespace {

std::shared_ptr<Device> MakeCpuDevice(const std::string& name, int threads) {
  DeviceProfile profile = Device::ServerCpuProfile();
  profile.name = name;
  profile.num_threads = threads;
  return std::make_shared<Device>(profile);
}

/// The deployed model: one student CNN shared by every query, executed under
/// a mutex like a single exclusive accelerator. Coalescing therefore pays off
/// twice: fewer model calls and fewer lock handoffs.
struct ServedModel {
  nn::Model model;
  std::shared_ptr<Device> device;
  std::mutex mu;

  ServedModel() {
    nn::BuilderOptions opts;
    opts.input_channels = 1;
    opts.input_size = 8;
    opts.num_classes = 4;
    opts.base_channels = 2;
    opts.seed = 7;
    model = nn::BuildStudentCnn(opts);
    // Single-threaded: kernels run inline on the calling thread, so
    // concurrent queries contend only on the model mutex.
    device = MakeCpuDevice("serving-model-cpu", 1);
  }

  /// Deterministic keyframe analog for a row seed.
  Tensor MakeInput(int64_t seed) const {
    Tensor t{Shape({1, 8, 8})};
    for (int64_t i = 0; i < t.NumElements(); ++i) {
      t.at(i) = static_cast<float>((seed * 131 + i * 29) % 211) / 105.0f - 1.0f;
    }
    return t;
  }

  Result<int64_t> PredictSeed(int64_t seed) {
    const Tensor input = MakeInput(seed);
    std::lock_guard<std::mutex> lock(mu);
    return model.Predict(input, device.get());
  }

  /// One accelerator handoff for the whole batch: merged batches mean fewer
  /// lock acquisitions, which is where coalescing pays off under contention.
  Result<std::vector<db::Value>> PredictBatch(
      const std::vector<std::vector<db::Value>>& rows) {
    std::vector<Tensor> inputs;
    inputs.reserve(rows.size());
    for (const auto& row : rows) {
      DL2SQL_ASSIGN_OR_RETURN(int64_t seed, row[0].AsInt());
      inputs.push_back(MakeInput(seed));
    }
    std::vector<db::Value> out;
    out.reserve(rows.size());
    std::lock_guard<std::mutex> lock(mu);
    for (const Tensor& input : inputs) {
      DL2SQL_ASSIGN_OR_RETURN(int64_t cls, model.Predict(input, device.get()));
      out.push_back(db::Value::Int(cls));
    }
    return out;
  }
};

void RegisterServedNudf(db::Database* db, ServedModel* served) {
  db::NUdfInfo info;
  info.model_name = served->model.name();
  info.num_parameters = served->model.NumParameters();
  info.fingerprint = nn::ModelFingerprint(served->model).ValueOr(0x5eed);
  db->udfs().RegisterNeural(
      "nudf_student", db::DataType::kInt64,
      [served](const std::vector<db::Value>& args) -> Result<db::Value> {
        DL2SQL_ASSIGN_OR_RETURN(int64_t seed, args[0].AsInt());
        DL2SQL_ASSIGN_OR_RETURN(int64_t cls, served->PredictSeed(seed));
        return db::Value::Int(cls);
      },
      info,
      [served](const std::vector<std::vector<db::Value>>& rows)
          -> Result<std::vector<db::Value>> { return served->PredictBatch(rows); },
      /*arity=*/1, /*parallel_safe=*/true);
}

void MakeFramesTable(db::Database* db, int64_t rows) {
  db::TableSchema schema(
      {{"id", db::DataType::kInt64}, {"seed", db::DataType::kInt64}});
  db::Table t{schema};
  for (int64_t i = 0; i < rows; ++i) {
    BENCH_CHECK_OK(t.AppendRow({db::Value::Int(i), db::Value::Int(i)}));
  }
  BENCH_CHECK_OK(db->RegisterTable("frames", std::move(t)));
}

/// The fig8 query-type mix, phrased over the frames table. Every query is
/// deterministic (ordered or aggregated) so renders compare bit-for-bit.
const std::vector<std::string>& Queries() {
  static const std::vector<std::string> kQueries = {
      // Type 2 analog: inference predicate.
      "SELECT count(*) AS hits FROM frames WHERE nudf_student(seed) = 1",
      // Type 1 analog: retrieval + inference projection.
      "SELECT id, nudf_student(seed) AS cls FROM frames WHERE id % 5 = 2 "
      "ORDER BY id",
      // Type 3 analog: inference aggregation.
      "SELECT sum(nudf_student(seed)) AS s, count(*) AS n FROM frames "
      "WHERE id >= 64",
      // Type 4 analog: pure relational.
      "SELECT count(*) AS n FROM frames WHERE id % 3 = 0",
  };
  return kQueries;
}

/// One self-contained serving environment: model, devices, database, data.
/// ServedModel holds a mutex, so environments live behind unique_ptrs.
struct Env {
  std::unique_ptr<ServedModel> served = std::make_unique<ServedModel>();
  std::shared_ptr<Device> db_device;
  std::unique_ptr<db::Database> db = std::make_unique<db::Database>();
};

Env BuildEnv(const std::string& tag, int64_t rows) {
  Env env;
  env.db_device = MakeCpuDevice("serving-db-cpu-" + tag, 4);
  // Small morsels keep per-query nUDF submissions well under the batch cap,
  // which is exactly the shape cross-query coalescing targets.
  env.db->set_exec_options({env.db_device.get(), /*morsel_size=*/64});
  // The nUDF result cache would answer repeats without running the model;
  // serving load is about the miss path, so measure with it off.
  db::CacheOptions cache;
  cache.enable_nudf_cache = false;
  env.db->set_cache_options(cache);
  // rows == 0: cluster node — the frames table arrives via coordinator DDL
  // and routed INSERTs instead of being pre-registered.
  if (rows > 0) MakeFramesTable(env.db.get(), rows);
  RegisterServedNudf(env.db.get(), env.served.get());
  return env;
}

int64_t Percentile(const std::vector<int64_t>& sorted_us, double pct) {
  if (sorted_us.empty()) return 0;
  const double rank = pct / 100.0 * static_cast<double>(sorted_us.size() - 1);
  return sorted_us[static_cast<size_t>(rank + 0.5)];
}

struct ConfigResult {
  std::string name;
  int clients = 0;
  bool coalesce = false;
  int64_t statements = 0;
  int64_t failures = 0;
  int64_t mismatches = 0;
  double wall_seconds = 0;
  double qps = 0;
  int64_t min_us = 0;
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
  int64_t nudf_batches = 0;
  int64_t merged_batches = 0;
};

ConfigResult RunConfig(int clients, bool coalesce, int64_t rows,
                       int iters_per_client) {
  Env env = BuildEnv(std::to_string(clients) + (coalesce ? "on" : "off"),
                     rows);
  db::Database& db = *env.db;

  // Single-threaded reference renders, computed before the service wires in
  // the coalescer: the evaluator's direct path is the correctness baseline.
  std::vector<std::string> reference;
  for (const std::string& q : Queries()) {
    auto r = db.Execute(q);
    BENCH_CHECK_OK(r.status());
    reference.push_back(server::RenderTable(*r, server::OutputFormat::kTsv));
  }

  server::ServiceOptions opts;
  opts.admission.max_concurrent = 4;
  opts.admission.max_queue_depth = 64;
  // Never-reject sizing: the queue outlasts the longest closed-loop burst,
  // so any failure below is a real bug, not an overload response.
  opts.admission.queue_timeout_ms = 120000.0;
  opts.coalescer.enabled = coalesce;
  opts.coalescer.max_batch_rows = 256;
  opts.coalescer.wait_window_ms = 0.5;
  server::QueryService service(&db, opts);

  Counter* batches = MetricsRegistry::Global().counter("nudf.batches");
  Counter* merged =
      MetricsRegistry::Global().counter("server.coalesce.merged_batches");
  const int64_t batches_before = batches->value();
  const int64_t merged_before = merged->value();

  ConfigResult result;
  result.name = "c";
  result.name += std::to_string(clients);
  result.name += coalesce ? "_coalesce_on" : "_coalesce_off";
  result.clients = clients;
  result.coalesce = coalesce;

  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(clients));
  std::vector<int64_t> failures(static_cast<size_t>(clients), 0);
  std::vector<int64_t> mismatches(static_cast<size_t>(clients), 0);

  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto session = service.CreateSession();
      const auto& queries = Queries();
      const int total = iters_per_client * static_cast<int>(queries.size());
      for (int k = 0; k < total; ++k) {
        const size_t qi = static_cast<size_t>(c + k) % queries.size();
        Stopwatch watch;
        auto r = session->Execute(queries[qi]);
        latencies[static_cast<size_t>(c)].push_back(watch.ElapsedMicros());
        if (!r.ok()) {
          ++failures[static_cast<size_t>(c)];
          continue;
        }
        if (server::RenderTable(*r, server::OutputFormat::kTsv) !=
            reference[qi]) {
          ++mismatches[static_cast<size_t>(c)];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  result.wall_seconds = wall.ElapsedSeconds();

  std::vector<int64_t> all;
  for (int c = 0; c < clients; ++c) {
    const size_t ci = static_cast<size_t>(c);
    all.insert(all.end(), latencies[ci].begin(), latencies[ci].end());
    result.failures += failures[ci];
    result.mismatches += mismatches[ci];
  }
  std::sort(all.begin(), all.end());
  result.statements = static_cast<int64_t>(all.size());
  result.qps = static_cast<double>(all.size()) / result.wall_seconds;
  result.min_us = all.empty() ? 0 : all.front();
  result.p50_us = Percentile(all, 50);
  result.p95_us = Percentile(all, 95);
  result.p99_us = Percentile(all, 99);
  result.nudf_batches = batches->value() - batches_before;
  result.merged_batches = merged->value() - merged_before;
  return result;
}

// ---------------------------------------------------------------------------
// Multi-shard scatter-gather sweep (BENCH_shard.json).
// ---------------------------------------------------------------------------

/// One in-process shard: its own database, model replica, service, and TCP
/// listener — a faithful stand-in for a `lindb_server` shard process, wire
/// protocol included (the coordinator talks to it over a real socket).
struct ShardNode {
  Env env;
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::TcpServer> tcp;
};

struct ShardConfigResult {
  int shards = 0;
  double mix_seconds = 0;  // best-of-reps wall time for the whole fig8 mix
  double qps = 0;
  int64_t statements = 0;
};

/// Boots `num_shards` shards + a coordinator, loads `rows` frames through
/// coordinator DDL/routed INSERTs, gates every mix render byte-identical
/// against the single-node `reference`, then times the mix best-of-`reps`.
ShardConfigResult RunShardConfig(int num_shards, int64_t rows, int reps,
                                 const std::vector<std::string>& reference) {
  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::vector<cluster::ShardEndpoint> endpoints;
  for (int s = 0; s < num_shards; ++s) {
    auto node = std::make_unique<ShardNode>();
    // Every shard builds the model from the same fixed seed, so all replicas
    // agree with the coordinator and the single-node reference.
    node->env = BuildEnv("shard" + std::to_string(num_shards) + "_" +
                             std::to_string(s),
                         /*rows=*/0);
    node->service = std::make_unique<server::QueryService>(
        node->env.db.get(), server::ServiceOptions{});
    node->tcp = std::make_unique<server::TcpServer>(
        node->service.get(), server::TcpServerOptions{});
    BENCH_CHECK_OK(node->tcp->Start());
    endpoints.push_back({"127.0.0.1", node->tcp->port()});
    nodes.push_back(std::move(node));
  }

  Env co_env = BuildEnv("coord" + std::to_string(num_shards), /*rows=*/0);
  server::QueryService service(co_env.db.get(), server::ServiceOptions{});
  auto coordinator = std::make_unique<cluster::Coordinator>(
      co_env.db.get(), std::move(endpoints), cluster::ShardClientOptions{});
  service.set_distributed_executor(coordinator.get());

  auto session = service.CreateSession();
  BENCH_CHECK_OK(session
                     ->Execute("CREATE TABLE frames (id int64, seed int64) "
                               "PARTITION BY HASH (id)")
                     .status());
  for (int64_t lo = 0; lo < rows; lo += 64) {
    std::string insert = "INSERT INTO frames VALUES ";
    const int64_t hi = std::min(rows, lo + 64);
    for (int64_t i = lo; i < hi; ++i) {
      if (i != lo) insert += ", ";
      insert += "(" + std::to_string(i) + ", " + std::to_string(i) + ")";
    }
    BENCH_CHECK_OK(session->Execute(insert).status());
  }

  // Byte-identity gate: scatter-gather must render exactly like one node.
  const auto& queries = Queries();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto r = session->Execute(queries[qi]);
    BENCH_CHECK_OK(r.status());
    if (server::RenderTable(*r, server::OutputFormat::kTsv) !=
        reference[qi]) {
      std::fprintf(stderr,
                   "FATAL: %d-shard result differs from single node for: %s\n",
                   num_shards, queries[qi].c_str());
      std::exit(1);
    }
  }

  ShardConfigResult result;
  result.shards = num_shards;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    for (const std::string& q : queries) {
      BENCH_CHECK_OK(session->Execute(q).status());
    }
    const double s = watch.ElapsedSeconds();
    if (rep == 0 || s < result.mix_seconds) result.mix_seconds = s;
  }
  result.statements = static_cast<int64_t>(queries.size());
  result.qps = static_cast<double>(queries.size()) / result.mix_seconds;

  // Detach before teardown: the coordinator's destructor restores the
  // system-table providers it decorated on the coordinator database.
  service.set_distributed_executor(nullptr);
  coordinator.reset();
  for (auto& node : nodes) node->tcp->Stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int64_t rows = quick ? 300 : 600;
  const int iters_per_client = quick ? 3 : (FullScale() ? 24 : 8);

  // Uncontended single-threaded floor for the regression gate: best-of-reps
  // for the whole query mix on the evaluator's direct path. Deterministic
  // compute at the ~milliseconds scale, so run-to-run noise stays far below
  // the gate threshold (the contended serving numbers below do not).
  double reference_mix_seconds = 0;
  {
    Env env = BuildEnv("reference", rows);
    const int kReps = 7;
    for (const std::string& q : Queries()) {
      double best = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        Stopwatch watch;
        BENCH_CHECK_OK(env.db->Execute(q).status());
        const double s = watch.ElapsedSeconds();
        if (rep == 0 || s < best) best = s;
      }
      reference_mix_seconds += best;
    }
    std::printf("uncontended reference mix floor: %.3f ms\n",
                reference_mix_seconds * 1e3);
  }

  PrintHeader("Serving load: closed-loop clients over the fig8 query mix",
              {"Config", "QPS", "p50_us", "p95_us", "p99_us", "Batches",
               "Merged"});

  std::vector<ConfigResult> results;
  for (int clients : {1, 4, 16}) {
    for (bool coalesce : {false, true}) {
      ConfigResult r = RunConfig(clients, coalesce, rows, iters_per_client);
      PrintCell(r.name);
      PrintCell(r.qps);
      PrintCell(r.p50_us);
      PrintCell(r.p95_us);
      PrintCell(r.p99_us);
      PrintCell(r.nudf_batches);
      PrintCell(r.merged_batches);
      EndRow();
      results.push_back(r);
    }
  }

  // Hard acceptance checks.
  int64_t batches_on_16 = 0, batches_off_16 = 0;
  bool ok = true;
  for (const ConfigResult& r : results) {
    if (r.failures != 0 || r.mismatches != 0) {
      std::fprintf(stderr, "FATAL: config %s had %lld failures, %lld result "
                           "mismatches (want 0/0)\n",
                   r.name.c_str(), (long long)r.failures,
                   (long long)r.mismatches);
      ok = false;
    }
    if (r.clients == 16) {
      (r.coalesce ? batches_on_16 : batches_off_16) = r.nudf_batches;
    }
  }
  if (batches_on_16 >= batches_off_16) {
    std::fprintf(stderr,
                 "FATAL: coalescing did not reduce model batches at 16 "
                 "clients (on=%lld vs off=%lld)\n",
                 (long long)batches_on_16, (long long)batches_off_16);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("\n16-client batch reduction: %lld -> %lld (%.2fx fewer model "
              "calls with coalescing)\n",
              (long long)batches_off_16, (long long)batches_on_16,
              static_cast<double>(batches_off_16) /
                  static_cast<double>(batches_on_16));

  std::FILE* out = std::fopen("BENCH_serving.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_serving.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"serving_load\",\n");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"quick\": %s,\n  \"rows\": %lld,\n"
                    "  \"iters_per_client\": %d,\n",
               quick ? "true" : "false", (long long)rows, iters_per_client);
  std::fprintf(out, "  \"reference_mix_seconds\": %.6f,\n",
               reference_mix_seconds);
  std::fprintf(out, "  \"configs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    // Key naming is deliberate: per-config numbers use _us / _s names that
    // check_bench_regression.py reports but does not compare — contended
    // wall clock and latency percentiles are too noisy at this scale for a
    // regression gate. The gated seconds-like key is the uncontended
    // reference floor emitted at the top level below.
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"clients\": %d, \"coalesce\": %s, "
                 "\"statements\": %lld, \"failures\": %lld, "
                 "\"mismatches\": %lld, \"wall_s\": %.6f, \"qps\": %.2f, "
                 "\"min_us\": %lld, \"p50_us\": %lld, \"p95_us\": %lld, "
                 "\"p99_us\": %lld, \"nudf_batches\": %lld, "
                 "\"merged_batches\": %lld}%s\n",
                 r.name.c_str(), r.clients, r.coalesce ? "true" : "false",
                 (long long)r.statements, (long long)r.failures,
                 (long long)r.mismatches, r.wall_seconds, r.qps,
                 (long long)r.min_us, (long long)r.p50_us,
                 (long long)r.p95_us, (long long)r.p99_us,
                 (long long)r.nudf_batches, (long long)r.merged_batches,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"batch_reduction_16_clients\": {\"off\": %lld, "
               "\"on\": %lld, \"factor\": %.3f},\n",
               (long long)batches_off_16, (long long)batches_on_16,
               static_cast<double>(batches_off_16) /
                   static_cast<double>(batches_on_16));
  std::fprintf(out, "  \"metrics_snapshot\": %s\n",
               MetricsSnapshotJson().c_str());
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_serving.json\n");

  // ----- multi-shard scatter-gather sweep -----
  // Single-node reference renders: the correctness baseline every shard
  // count must match byte for byte.
  std::vector<std::string> shard_reference;
  {
    Env env = BuildEnv("shardref", rows);
    for (const std::string& q : Queries()) {
      auto r = env.db->Execute(q);
      BENCH_CHECK_OK(r.status());
      shard_reference.push_back(
          server::RenderTable(*r, server::OutputFormat::kTsv));
    }
  }

  const int shard_reps = quick ? 3 : 7;
  PrintHeader("Scatter-gather: fig8 mix through a coordinator over N shards",
              {"Shards", "mix_ms", "QPS"});
  std::vector<ShardConfigResult> shard_results;
  for (int shards : {1, 2, 4}) {
    ShardConfigResult r =
        RunShardConfig(shards, rows, shard_reps, shard_reference);
    PrintCell(static_cast<int64_t>(r.shards));
    PrintCell(r.mix_seconds * 1e3);
    PrintCell(r.qps);
    EndRow();
    shard_results.push_back(r);
  }
  const double scaling_1_to_4 =
      shard_results.front().mix_seconds / shard_results.back().mix_seconds;
  std::printf("\n1 -> 4 shard mix speedup: %.2fx (hardware_concurrency=%u; "
              "meaningful only with >= 4 cores)\n",
              scaling_1_to_4, std::thread::hardware_concurrency());

  out = std::fopen("BENCH_shard.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_shard.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"shard_scatter\",\n");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"quick\": %s,\n  \"rows\": %lld,\n  \"reps\": %d,\n",
               quick ? "true" : "false", (long long)rows, shard_reps);
  // The gated keys: mix_1shard_sec is always comparable (no fan-out
  // parallelism to speak of); the N>1 keys are shard-scaling keys that
  // check_bench_regression.py only compares across machines with matching
  // hardware_concurrency >= 4.
  for (const ShardConfigResult& r : shard_results) {
    std::fprintf(out, "  \"mix_%dshard_sec\": %.6f,\n", r.shards,
                 r.mix_seconds);
  }
  std::fprintf(out, "  \"scaling_1_to_4\": %.3f,\n", scaling_1_to_4);
  std::fprintf(out, "  \"configs\": [\n");
  for (size_t i = 0; i < shard_results.size(); ++i) {
    const ShardConfigResult& r = shard_results[i];
    // Per-config keys use _s / qps names on purpose: reported by the
    // regression script but not compared (the gated top-level keys above are
    // the contract).
    std::fprintf(out,
                 "    {\"name\": \"s%d\", \"shards\": %d, \"mix_s\": %.6f, "
                 "\"qps\": %.2f, \"statements\": %lld}%s\n",
                 r.shards, r.shards, r.mix_seconds, r.qps,
                 (long long)r.statements,
                 i + 1 < shard_results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_shard.json\n");
  return 0;
}
