/// \file fig11_prejoin.cc
/// \brief Reproduces Fig. 11: CNN-block cost under the three pre-join
/// strategies (none / pre-join mapping / pre-join full).
///
/// Paper shape: avoiding the Q2 reshape join and the kernel join cuts block
/// time substantially.
#include "bench/bench_util.h"
#include "dl2sql/pipeline.h"
#include "nn/builders.h"

using namespace dl2sql;          // NOLINT
using namespace dl2sql::bench;   // NOLINT

namespace {

double RunStrategy(const nn::Model& model, core::PreJoinStrategy strategy,
                   int reps, std::vector<double>* per_conv_block) {
  db::Database db;
  core::ConvertOptions copts;
  copts.prejoin = strategy;
  copts.table_prefix = "f11";
  auto converted = core::ConvertModel(model, copts, &db);
  BENCH_CHECK_OK(converted.status());
  core::Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  Rng rng(3);
  Tensor input = Tensor::Random(model.input_shape(), &rng, 1.0f);

  double total = 0;
  per_conv_block->clear();
  for (int r = 0; r < reps; ++r) {
    core::PipelineRunStats stats;
    BENCH_CHECK_OK(runner.Infer(input, &stats).status());
    total += stats.infer_seconds;
    size_t conv_idx = 0;
    for (const auto& op : stats.per_op) {
      if (op.kind != nn::LayerKind::kConv2d) continue;
      if (per_conv_block->size() <= conv_idx) per_conv_block->push_back(0);
      (*per_conv_block)[conv_idx++] += op.seconds;
    }
  }
  for (auto& v : *per_conv_block) v /= reps;
  return total / reps;
}

}  // namespace

int main() {
  nn::BuilderOptions b;
  b.input_channels = 3;
  b.input_size = FullScale() ? 32 : 16;
  b.base_channels = FullScale() ? 8 : 4;
  nn::Model model = nn::BuildStudentCnn(b);
  const int reps = FullScale() ? 20 : 5;

  PrintHeader("Fig. 11: CNN block cost under pre-join strategies",
              {"Strategy", "Conv1(s)", "Conv2(s)", "Conv3(s)", "Total(s)"});
  const std::pair<core::PreJoinStrategy, const char*> kStrategies[] = {
      {core::PreJoinStrategy::kNone, "no-prejoin"},
      {core::PreJoinStrategy::kPreJoinMapping, "prejoin-map"},
      {core::PreJoinStrategy::kPreJoinFull, "prejoin-full"},
  };
  for (const auto& [strategy, name] : kStrategies) {
    std::vector<double> blocks;
    const double total = RunStrategy(model, strategy, reps, &blocks);
    PrintCell(std::string(name));
    for (size_t i = 0; i < 3; ++i) {
      PrintCell(i < blocks.size() ? blocks[i] : 0.0);
    }
    PrintCell(total);
    EndRow();
  }
  return 0;
}
