/// \file fig13_operators.cc
/// \brief Reproduces Fig. 13: per-operator estimation accuracy of the custom
/// vs default cost model (conv / BN / ReLU / pooling / FC).
#include "bench/bench_util.h"
#include "dl2sql/cost_model.h"
#include "dl2sql/pipeline.h"
#include "nn/layers.h"

using namespace dl2sql;          // NOLINT
using namespace dl2sql::bench;   // NOLINT

namespace {

void Probe(const std::string& name, nn::Model model, double spu, int reps) {
  db::Database db;
  auto converted = core::ConvertModel(model, {}, &db);
  BENCH_CHECK_OK(converted.status());
  const double custom_s =
      core::TotalUnits(core::EstimateCustom(*converted)) * spu;
  auto blind = core::EstimateDefault(*converted, &db);
  BENCH_CHECK_OK(blind.status());
  const double default_s = core::TotalUnits(*blind) * spu;

  core::Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  Rng rng(5);
  Tensor input = Tensor::Random(model.input_shape(), &rng, 1.0f);
  double actual = 0;
  for (int r = 0; r < reps; ++r) {
    core::PipelineRunStats stats;
    BENCH_CHECK_OK(runner.Infer(input, &stats).status());
    actual += stats.infer_seconds;
  }
  actual /= reps;

  PrintCell(name);
  PrintCell(actual);
  PrintCell(custom_s);
  PrintCell(default_s);
  EndRow();
}

}  // namespace

int main() {
  db::Database calib_db;
  auto r = core::CalibrateSecondsPerUnit(&calib_db);
  BENCH_CHECK_OK(r.status());
  const double spu = *r;
  const int reps = FullScale() ? 10 : 3;
  const int64_t size = FullScale() ? 32 : 16;

  PrintHeader("Fig. 13: per-operator estimation (single-op pipelines)",
              {"Operator", "Actual(s)", "Custom(s)", "Default(s)"});

  Rng rng(9);
  {
    nn::Model m("conv", Shape({3, size, size}), {"a", "b"});
    m.AddLayer(std::make_shared<nn::Conv2d>("conv", 3, 4, 3, 1, 1, &rng));
    Probe("Conv", std::move(m), spu, reps);
  }
  {
    nn::Model m("bn", Shape({3, size, size}), {"a", "b"});
    auto bn = std::make_shared<nn::BatchNorm>("bn", 3);
    bn->RandomizeStats(&rng);
    m.AddLayer(bn);
    Probe("BatchNorm", std::move(m), spu, reps);
  }
  {
    nn::Model m("relu", Shape({3, size, size}), {"a", "b"});
    m.AddLayer(std::make_shared<nn::ReluLayer>("relu"));
    Probe("ReLU", std::move(m), spu, reps);
  }
  {
    nn::Model m("pool", Shape({3, size, size}), {"a", "b"});
    m.AddLayer(std::make_shared<nn::MaxPool2d>("pool", 2, 2));
    Probe("MaxPool", std::move(m), spu, reps);
  }
  {
    nn::Model m("fc", Shape({3, size, size}), {"a", "b"});
    m.AddLayer(std::make_shared<nn::Flatten>("flatten"));
    m.AddLayer(std::make_shared<nn::Linear>("fc", 3 * size * size, 16, &rng));
    Probe("FC", std::move(m), spu, reps);
  }
  return 0;
}
