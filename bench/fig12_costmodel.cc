/// \file fig12_costmodel.cc
/// \brief Reproduces Fig. 12: estimated vs actual cost of single-conv DL2SQL
/// pipelines under (a) varying kernel size and (b) varying feature-map size,
/// comparing the default DBMS model against the customized model (Eqs. 3-8).
///
/// Cost units are converted to seconds via r = seq_scan_time / seq_scan_cost
/// exactly as the figure's caption describes. Paper shape: the customized
/// model tracks the actual cost; the default model diverges badly.
#include "bench/bench_util.h"
#include "dl2sql/cost_model.h"
#include "dl2sql/pipeline.h"
#include "nn/layers.h"

using namespace dl2sql;          // NOLINT
using namespace dl2sql::bench;   // NOLINT

namespace {

struct ProbeResult {
  double actual_s = 0;
  double custom_s = 0;
  double default_s = 0;
};

ProbeResult ProbeConv(int64_t channels, int64_t size, int64_t kernel,
                      double seconds_per_unit, int reps) {
  Rng rng(kernel * 1000 + size);
  nn::Model model("probe", Shape({channels, size, size}), {"a", "b"});
  model.AddLayer(std::make_shared<nn::Conv2d>("conv", channels, channels,
                                              kernel, 1, kernel / 2, &rng));
  db::Database db;
  auto converted = core::ConvertModel(model, {}, &db);
  BENCH_CHECK_OK(converted.status());

  ProbeResult out;
  auto custom = core::EstimateCustom(*converted);
  out.custom_s = core::TotalUnits(custom) * seconds_per_unit;
  auto blind = core::EstimateDefault(*converted, &db);
  BENCH_CHECK_OK(blind.status());
  out.default_s = core::TotalUnits(*blind) * seconds_per_unit;

  core::Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  Tensor input = Tensor::Random(model.input_shape(), &rng, 1.0f);
  for (int r = 0; r < reps; ++r) {
    core::PipelineRunStats stats;
    BENCH_CHECK_OK(runner.Infer(input, &stats).status());
    out.actual_s += stats.infer_seconds;
  }
  out.actual_s /= reps;
  return out;
}

}  // namespace

int main() {
  db::Database calib_db;
  auto r = core::CalibrateSecondsPerUnit(&calib_db);
  BENCH_CHECK_OK(r.status());
  const double spu = *r;
  std::printf("calibration: %.3e seconds per cost unit\n", spu);
  const int reps = FullScale() ? 10 : 3;

  PrintHeader("Fig. 12a: cost vs kernel size (16x16x3 input)",
              {"Kernel", "Actual(s)", "Custom(s)", "Default(s)"});
  for (int64_t k : {1, 3, 5, 7}) {
    ProbeResult p = ProbeConv(3, 16, k, spu, reps);
    PrintCell(k);
    PrintCell(p.actual_s);
    PrintCell(p.custom_s);
    PrintCell(p.default_s);
    EndRow();
  }

  PrintHeader("Fig. 12b: cost vs feature-map size (3x3 kernel)",
              {"MapSize", "Actual(s)", "Custom(s)", "Default(s)"});
  for (int64_t s : {8, 16, 24, 32}) {
    ProbeResult p = ProbeConv(3, s, 3, spu, reps);
    PrintCell(s);
    PrintCell(p.actual_s);
    PrintCell(p.custom_s);
    PrintCell(p.default_s);
    EndRow();
  }
  return 0;
}
