/// \file fig9_blocks.cc
/// \brief Reproduces Fig. 9: running time of each CNN block inside a DL2SQL
/// inference of the distilled student model (Conv blocks dominate).
#include "bench/bench_util.h"
#include "dl2sql/pipeline.h"
#include "nn/builders.h"

using namespace dl2sql;          // NOLINT
using namespace dl2sql::bench;   // NOLINT

int main() {
  nn::BuilderOptions b;
  b.input_channels = 3;
  b.input_size = FullScale() ? 32 : 16;
  b.base_channels = FullScale() ? 8 : 4;
  nn::Model model = nn::BuildStudentCnn(b);

  db::Database db;
  core::ConvertOptions copts;
  auto converted = core::ConvertModel(model, copts, &db);
  BENCH_CHECK_OK(converted.status());
  core::Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());

  Rng rng(3);
  Tensor input = Tensor::Random(model.input_shape(), &rng, 1.0f);
  const int reps = FullScale() ? 20 : 5;

  // Aggregate per-op seconds across repetitions.
  std::vector<core::PipelineRunStats::OpTime> total;
  for (int r = 0; r < reps; ++r) {
    core::PipelineRunStats stats;
    BENCH_CHECK_OK(runner.Infer(input, &stats).status());
    if (total.empty()) {
      total = stats.per_op;
    } else {
      for (size_t i = 0; i < total.size(); ++i) {
        total[i].seconds += stats.per_op[i].seconds;
      }
    }
  }

  PrintHeader("Fig. 9: per-op cost inside the DL2SQL student pipeline",
              {"Op", "Kind", "Seconds(avg)"});
  for (const auto& op : total) {
    PrintCell(op.label);
    PrintCell(std::string(nn::LayerKindToString(op.kind)));
    PrintCell(op.seconds / reps);
    EndRow();
  }
  return 0;
}
