/// \file ablation_indexes.cc
/// \brief Ablation: hash indexes on the static parameter tables (Section
/// IV-A's "we build indices on columns MatrixID, OrderID, and KernelID") vs
/// rebuilding the join hash tables on every inference, crossed with the
/// pre-join strategies of Fig. 11.
#include "bench/bench_util.h"
#include "dl2sql/pipeline.h"
#include "nn/builders.h"

using namespace dl2sql;          // NOLINT
using namespace dl2sql::bench;   // NOLINT

namespace {

double Run(const nn::Model& model, core::PreJoinStrategy strategy,
           bool indexes, int reps, int64_t* index_joins) {
  db::Database db;
  core::ConvertOptions copts;
  copts.prejoin = strategy;
  copts.build_indexes = indexes;
  auto converted = core::ConvertModel(model, copts, &db);
  BENCH_CHECK_OK(converted.status());
  core::Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  Rng rng(3);
  Tensor input = Tensor::Random(model.input_shape(), &rng, 1.0f);
  BENCH_CHECK_OK(runner.Infer(input).status());  // warm-up
  Stopwatch watch;
  for (int r = 0; r < reps; ++r) {
    BENCH_CHECK_OK(runner.Infer(input).status());
  }
  *index_joins = db.index_joins_executed();
  return watch.ElapsedSeconds() / reps;
}

}  // namespace

int main() {
  nn::BuilderOptions b;
  b.input_size = FullScale() ? 32 : 16;
  b.base_channels = FullScale() ? 8 : 4;
  nn::Model model = nn::BuildStudentCnn(b);
  const int reps = FullScale() ? 20 : 8;

  PrintHeader("Ablation: parameter-table hash indexes x pre-join strategy",
              {"Strategy", "Indexes", "PerInfer(s)", "IndexJoins"});
  const std::pair<core::PreJoinStrategy, const char*> kStrategies[] = {
      {core::PreJoinStrategy::kNone, "no-prejoin"},
      {core::PreJoinStrategy::kPreJoinMapping, "prejoin-map"},
      {core::PreJoinStrategy::kPreJoinFull, "prejoin-full"},
  };
  for (const auto& [strategy, name] : kStrategies) {
    for (bool indexes : {false, true}) {
      int64_t index_joins = 0;
      const double secs = Run(model, strategy, indexes, reps, &index_joins);
      PrintCell(std::string(name));
      PrintCell(std::string(indexes ? "on" : "off"));
      PrintCell(secs);
      PrintCell(index_joins);
      EndRow();
    }
  }
  return 0;
}
