/// \file fig10_clauses.cc
/// \brief Reproduces Fig. 10: running-time share of each SQL clause type in
/// the generated DL2SQL queries (Join and GroupBy dominate).
#include "bench/bench_util.h"
#include "dl2sql/pipeline.h"
#include "nn/builders.h"

using namespace dl2sql;          // NOLINT
using namespace dl2sql::bench;   // NOLINT

int main() {
  nn::BuilderOptions b;
  b.input_channels = 3;
  b.input_size = FullScale() ? 32 : 16;
  b.base_channels = FullScale() ? 8 : 4;
  nn::Model model = nn::BuildStudentCnn(b);

  db::Database db;
  auto converted = core::ConvertModel(model, {}, &db);
  BENCH_CHECK_OK(converted.status());
  core::Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());

  Rng rng(3);
  Tensor input = Tensor::Random(model.input_shape(), &rng, 1.0f);
  const int reps = FullScale() ? 20 : 5;

  CostAccumulator clauses;
  for (int r = 0; r < reps; ++r) {
    core::PipelineRunStats stats;
    BENCH_CHECK_OK(runner.Infer(input, &stats).status());
    clauses.Merge(stats.clause_costs);
  }

  const double total = clauses.Total();
  PrintHeader("Fig. 10: SQL-clause cost share in generated DL2SQL queries",
              {"Clause", "Seconds(avg)", "Share(%)"});
  for (const auto& [bucket, secs] : clauses.buckets()) {
    PrintCell(bucket);
    PrintCell(secs / reps);
    PrintCell(total > 0 ? 100.0 * secs / total : 0.0);
    EndRow();
  }
  return 0;
}
