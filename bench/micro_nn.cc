/// \file micro_nn.cc
/// \brief google-benchmark microbenchmarks of the minidl inference kernels
/// and the DL2SQL conversion/inference path.
#include <benchmark/benchmark.h>

#include "dl2sql/pipeline.h"
#include "nn/builders.h"

namespace dl2sql {
namespace {

void BM_NativeStudentForward(benchmark::State& state) {
  nn::BuilderOptions b;
  b.input_size = state.range(0);
  b.base_channels = 8;
  nn::Model model = nn::BuildStudentCnn(b);
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  Rng rng(1);
  Tensor input = Tensor::Random(model.input_shape(), &rng, 1.0f);
  for (auto _ : state) {
    auto r = model.Forward(input, device.get());
    DL2SQL_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NativeStudentForward)->Arg(16)->Arg(32)->Arg(64);

void BM_NativeResNetForward(benchmark::State& state) {
  nn::BuilderOptions b;
  b.input_size = 32;
  b.base_channels = 8;
  auto model = nn::BuildResNet(state.range(0), b);
  DL2SQL_CHECK(model.ok());
  auto device = Device::Create(DeviceKind::kEdgeCpu);
  Rng rng(1);
  Tensor input = Tensor::Random(model->input_shape(), &rng, 1.0f);
  for (auto _ : state) {
    auto r = model->Forward(input, device.get());
    DL2SQL_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NativeResNetForward)->Arg(5)->Arg(10)->Arg(20);

void BM_Dl2SqlStudentInfer(benchmark::State& state) {
  nn::BuilderOptions b;
  b.input_size = state.range(0);
  b.base_channels = 4;
  nn::Model model = nn::BuildStudentCnn(b);
  db::Database db;
  auto converted = core::ConvertModel(model, {}, &db);
  DL2SQL_CHECK(converted.ok());
  core::Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
  Rng rng(1);
  Tensor input = Tensor::Random(model.input_shape(), &rng, 1.0f);
  for (auto _ : state) {
    auto r = runner.Infer(input);
    DL2SQL_CHECK(r.ok()) << r.status().ToString();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Dl2SqlStudentInfer)->Arg(8)->Arg(16)->Arg(32);

void BM_ConvertModel(benchmark::State& state) {
  nn::BuilderOptions b;
  b.input_size = 16;
  b.base_channels = 8;
  auto model = nn::BuildResNet(state.range(0), b);
  DL2SQL_CHECK(model.ok());
  for (auto _ : state) {
    db::Database db;
    auto converted = core::ConvertModel(*model, {}, &db);
    DL2SQL_CHECK(converted.ok());
    benchmark::DoNotOptimize(converted);
  }
}
BENCHMARK(BM_ConvertModel)->Arg(5)->Arg(10);

}  // namespace
}  // namespace dl2sql

BENCHMARK_MAIN();
