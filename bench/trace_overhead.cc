/// \file trace_overhead.cc
/// \brief Guard: tracing compiled in but runtime-disabled must cost < 5%.
///
/// A disabled DL2SQL_TRACE_SPAN is one relaxed atomic load plus two empty
/// string constructions; this binary proves that stays in the noise against
/// a realistic per-span workload (a few microseconds of arithmetic, the
/// scale of one morsel or one small NN layer). Exits non-zero when the
/// median instrumented/plain ratio exceeds the threshold, so CI fails if a
/// future change makes "tracing off" expensive.
///
/// Run with --enabled to instead sanity-check that enabled tracing records
/// events (no timing guard; enabled tracing is allowed to cost more).
///
/// Run with --distributed for the cluster leg: an in-process coordinator +
/// 2-shard loopback cluster executes a scatter-gather mix (pushdown select,
/// merge aggregates) with the collector runtime-disabled vs runtime-enabled.
/// The disabled path's <5% claim is enforced structurally — tracing off must
/// ship zero `.trace` headers and zero META trailer bytes, making the wire
/// traffic byte-identical to a build without distributed observability — and
/// its wall time is emitted as dist_mix_off_sec so
/// scripts/check_bench_regression.py catches drift against the committed
/// baseline. Enabled tracing turns on the whole cross-node pipeline (wire
/// headers, shard-side span collection, trailer shipping, coordinator
/// timeline folding); it is allowed to cost, but a generous ratio budget
/// (default 50%, DL2SQL_DIST_TRACE_OVERHEAD_PCT overrides) catches
/// pathological regressions like a trailer-size blowup. Merges the dist_*
/// keys into BENCH_profile.json — run it after bench_profile_overhead,
/// which rewrites that file.
///
/// Anti-flake measures: the default 5% threshold is overridable through
/// DL2SQL_TRACE_OVERHEAD_PCT (e.g. 10 on noisy shared CI runners), and the
/// whole measurement is retried best-of-3 — one quiet attempt passes, so a
/// single scheduler hiccup cannot fail the build.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "common/timer.h"
#include "common/trace.h"
#include "db/database.h"
#include "server/session.h"
#include "server/tcp_server.h"

using namespace dl2sql;  // NOLINT

namespace {

constexpr int kWorkloadElems = 4096;  // one morsel's worth of arithmetic
constexpr int kCallsPerRep = 2000;
constexpr int kReps = 9;
constexpr int kAttempts = 3;  // best-of-3: any quiet attempt passes

/// Overhead budget as a ratio (default 1.05 = 5%); DL2SQL_TRACE_OVERHEAD_PCT
/// overrides the percentage for noisier environments.
double MaxOverheadRatio() {
  const char* env = std::getenv("DL2SQL_TRACE_OVERHEAD_PCT");
  if (env != nullptr) {
    const double pct = std::atof(env);
    if (pct > 0) return 1.0 + pct / 100.0;
  }
  return 1.05;
}

// volatile sink defeats whole-loop elimination without perturbing the loop.
volatile double g_sink = 0;

double WorkloadPlain(const std::vector<double>& data) {
  double sum = 0;
  for (double v : data) sum += v * 1.0000001 + 0.5;
  return sum;
}

double WorkloadTraced(const std::vector<double>& data) {
  DL2SQL_TRACE_SPAN("bench", "overhead_probe");
  double sum = 0;
  for (double v : data) sum += v * 1.0000001 + 0.5;
  return sum;
}

template <typename Fn>
double MedianRepSeconds(const std::vector<double>& data, Fn fn) {
  std::vector<double> reps;
  reps.reserve(kReps);
  for (int r = 0; r < kReps; ++r) {
    Stopwatch watch;
    for (int c = 0; c < kCallsPerRep; ++c) g_sink = fn(data);
    reps.push_back(watch.ElapsedSeconds());
  }
  std::sort(reps.begin(), reps.end());
  return reps[reps.size() / 2];
}

// --- distributed leg -------------------------------------------------------

constexpr int kDistShards = 2;
constexpr int64_t kDistRows = 512;
constexpr int kDistMixesPerRep = 4;
constexpr int kDistReps = 5;

/// The scatter-gather shapes the coordinator optimizes: a pushdown filter
/// (ships verbatim, concatenates) and two merge aggregates (partials
/// re-merge). No fallback shapes — a gather would swamp the wire-level
/// overhead this leg guards.
const char* const kDistMixSql[] = {
    "SELECT id, val FROM fact WHERE val % 3 = 1",
    "SELECT grp, count(*) AS c, sum(val) AS s FROM fact GROUP BY grp",
    "SELECT sum(val) FROM fact",
};

/// Enabled-tracing ratio budget for the distributed leg (default 1.5 = 50%:
/// the live pipeline snapshots spans and ships trailers per statement, so it
/// legitimately costs; the budget only catches pathological regressions).
/// DL2SQL_DIST_TRACE_OVERHEAD_PCT overrides.
double MaxDistOverheadRatio() {
  const char* env = std::getenv("DL2SQL_DIST_TRACE_OVERHEAD_PCT");
  if (env != nullptr) {
    const double pct = std::atof(env);
    if (pct > 0) return 1.0 + pct / 100.0;
  }
  return 1.5;
}

/// One in-process shard: its own Database + QueryService behind a real
/// loopback TcpServer, so the measured path includes the wire protocol.
struct ShardProc {
  std::unique_ptr<dl2sql::db::Database> db =
      std::make_unique<dl2sql::db::Database>();
  std::unique_ptr<dl2sql::server::QueryService> service;
  std::unique_ptr<dl2sql::server::TcpServer> tcp;
};

/// Re-emits BENCH_profile.json with the dist_* keys replaced: stale dist_
/// lines drop, the fresh ones splice in before the closing brace, everything
/// bench_profile_overhead wrote survives. Degrades to a fresh minimal
/// document when the file is absent (standalone runs).
bool MergeDistKeysIntoProfileJson(double on_sec, double off_sec,
                                  double ratio) {
  std::string base = "{\n  \"bench\": \"profile_overhead\"\n}\n";
  {
    std::ifstream in("BENCH_profile.json");
    if (in.good()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      base = buf.str();
    }
  }
  std::string filtered;
  size_t pos = 0;
  while (pos < base.size()) {
    size_t eol = base.find('\n', pos);
    if (eol == std::string::npos) eol = base.size();
    const std::string line = base.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find("\"dist_") == std::string::npos) filtered += line + "\n";
  }
  const size_t close = filtered.rfind('}');
  if (close == std::string::npos) return false;
  std::string head = filtered.substr(0, close);
  while (!head.empty() && (head.back() == '\n' || head.back() == ' ')) {
    head.pop_back();
  }
  if (!head.empty() && head.back() != '{' && head.back() != ',') head += ',';
  char tail[256];
  std::snprintf(tail, sizeof(tail),
                "\n  \"dist_mix_on_sec\": %.6f,\n"
                "  \"dist_mix_off_sec\": %.6f,\n"
                "  \"dist_overhead_ratio\": %.4f\n}\n",
                on_sec, off_sec, ratio);
  std::ofstream out("BENCH_profile.json", std::ios::trunc);
  if (!out.good()) return false;
  out << head << tail;
  return out.good();
}

int RunDistributedLeg() {
  using dl2sql::server::QueryService;
  using dl2sql::server::ServiceOptions;
  using dl2sql::server::TcpServer;
  using dl2sql::server::TcpServerOptions;

  std::vector<std::unique_ptr<ShardProc>> shards;
  std::vector<dl2sql::cluster::ShardEndpoint> endpoints;
  for (int s = 0; s < kDistShards; ++s) {
    auto shard = std::make_unique<ShardProc>();
    shard->service =
        std::make_unique<QueryService>(shard->db.get(), ServiceOptions{});
    shard->tcp =
        std::make_unique<TcpServer>(shard->service.get(), TcpServerOptions{});
    auto st = shard->tcp->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "shard %d start failed: %s\n", s,
                   st.ToString().c_str());
      return 1;
    }
    endpoints.push_back({"127.0.0.1", shard->tcp->port()});
    shards.push_back(std::move(shard));
  }
  dl2sql::db::Database co_db;
  QueryService service(&co_db, ServiceOptions{});
  dl2sql::cluster::ShardClientOptions client_opts;
  client_opts.connect_retry_ms = 2000;
  client_opts.statement_timeout_ms = 10000;
  auto coordinator = std::make_unique<dl2sql::cluster::Coordinator>(
      &co_db, std::move(endpoints), client_opts);
  service.set_distributed_executor(coordinator.get());
  auto session = service.CreateSession();

  auto exec = [&](const std::string& sql) -> bool {
    auto r = session->Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "distributed statement failed: %s\n  %s\n",
                   r.status().ToString().c_str(), sql.c_str());
      return false;
    }
    g_sink = static_cast<double>(r->num_rows());
    return true;
  };

  bool loaded = exec(
      "CREATE TABLE fact (id int64, grp int64, val int64) "
      "PARTITION BY HASH (id)");
  if (loaded) {
    std::string values;
    for (int64_t i = 0; i < kDistRows; ++i) {
      if (i > 0) values += ", ";
      values += "(" + std::to_string(i) + ", " + std::to_string(i % 16) +
                ", " + std::to_string((i * 104729 + 13) % 1000) + ")";
    }
    loaded = exec("INSERT INTO fact VALUES " + values);
  }

  // Structural guard for the disabled path: tracing off must put nothing
  // extra on the wire — no `.trace` header, no META trailer — so its only
  // possible overhead is the (regression-checked) local bookkeeping.
  bool structural_ok = false;
  if (loaded) {
    TraceCollector::Global().SetEnabled(false);
    auto untraced = coordinator->shard(0)->Execute("SELECT 1");
    TraceContext ctx{0xbe9cbe9c, 0x1};
    auto traced = coordinator->shard(0)->Execute("SELECT 1", 0.0, &ctx);
    if (!untraced.ok() || !traced.ok()) {
      std::fprintf(stderr, "FATAL: structural probe statements failed\n");
    } else if (!untraced->meta.empty()) {
      std::fprintf(stderr,
                   "FATAL: tracing-disabled statement shipped %zu trailer "
                   "line(s); the off path is no longer byte-identical\n",
                   untraced->meta.size());
    } else if (traced->meta.empty()) {
      std::fprintf(stderr,
                   "FATAL: traced statement shipped no trailer; the guard "
                   "would measure a dead pipeline\n");
    } else {
      structural_ok = true;
    }
  }

  int rc = 1;
  if (loaded && structural_ok) {
    auto median_rep_seconds = [&]() -> double {
      std::vector<double> reps;
      reps.reserve(kDistReps);
      for (int r = 0; r < kDistReps; ++r) {
        Stopwatch watch;
        for (int m = 0; m < kDistMixesPerRep; ++m) {
          for (const char* sql : kDistMixSql) {
            if (!exec(sql)) return -1;
          }
        }
        reps.push_back(watch.ElapsedSeconds());
      }
      std::sort(reps.begin(), reps.end());
      return reps[reps.size() / 2];
    };

    TraceCollector& collector = TraceCollector::Global();
    auto set_tracing = [&](bool on) {
      // Clear between sides so the enabled runs never pay ring-wraparound
      // costs that the disabled side cannot see.
      collector.SetEnabled(on);
      collector.Clear();
    };

    // Warm-up: connections dialed, tables faulted in, both code paths run.
    set_tracing(false);
    double warm = median_rep_seconds();
    set_tracing(true);
    if (warm >= 0 && median_rep_seconds() < 0) warm = -1;

    const double limit = MaxDistOverheadRatio();
    double best_ratio = 0;
    double best_on = 0;
    double best_off = 0;
    bool passed = false;
    for (int attempt = 1; warm >= 0 && attempt <= kAttempts && !passed;
         ++attempt) {
      // Interleave orderings so drift penalizes neither side.
      set_tracing(false);
      const double off_a = median_rep_seconds();
      set_tracing(true);
      const double on_a = median_rep_seconds();
      const double on_b = median_rep_seconds();
      set_tracing(false);
      const double off_b = median_rep_seconds();
      if (off_a < 0 || on_a < 0 || on_b < 0 || off_b < 0) break;

      const double off = std::min(off_a, off_b);
      const double on = std::min(on_a, on_b);
      const double ratio = on / off;
      std::printf("distributed attempt %d/%d:\n", attempt, kAttempts);
      std::printf("  tracing off median: %.6fs\n", off);
      std::printf("  tracing on  median: %.6fs (headers + trailers live)\n",
                  on);
      std::printf("  ratio: %.4f (limit %.2f)\n", ratio, limit);
      if (attempt == 1 || ratio < best_ratio) {
        best_ratio = ratio;
        best_on = on;
        best_off = off;
      }
      passed = ratio <= limit;
    }
    collector.SetEnabled(false);
    collector.Clear();

    if (best_off > 0) {
      if (!MergeDistKeysIntoProfileJson(best_on, best_off, best_ratio)) {
        std::fprintf(stderr, "FATAL: cannot update BENCH_profile.json\n");
      } else {
        std::printf("merged dist_* keys into BENCH_profile.json\n");
      }
    }
    if (passed) {
      std::printf("OK: distributed tracing overhead within budget\n");
      rc = 0;
    } else if (best_off > 0) {
      std::fprintf(stderr,
                   "FAIL: distributed tracing costs %.1f%% (> %.0f%% budget) "
                   "in every attempt\n",
                   (best_ratio - 1.0) * 100, (limit - 1.0) * 100);
    }
  }

  // Teardown order mirrors lindb_server: detach the executor before the
  // coordinator restores the system-table providers it decorated.
  session.reset();
  service.set_distributed_executor(nullptr);
  coordinator.reset();
  for (auto& shard : shards) shard->tcp->Stop();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--distributed") == 0) {
    return RunDistributedLeg();
  }
  std::vector<double> data(kWorkloadElems);
  for (int i = 0; i < kWorkloadElems; ++i) data[i] = i * 0.001;

  if (argc > 1 && std::strcmp(argv[1], "--enabled") == 0) {
    TraceCollector::Global().Clear();
    TraceCollector::Global().SetEnabled(true);
    for (int c = 0; c < 100; ++c) g_sink = WorkloadTraced(data);
    TraceCollector::Global().SetEnabled(false);
    const int64_t events = TraceCollector::Global().EventCount();
#if defined(DL2SQL_TRACING_DISABLED)
    const int64_t expected = 0;
#else
    const int64_t expected = 100;
#endif
    std::printf("enabled-mode events recorded: %lld (expected %lld)\n",
                static_cast<long long>(events),
                static_cast<long long>(expected));
    return events == expected ? 0 : 1;
  }

  // Warm-up evens out frequency scaling before the measured reps.
  for (int c = 0; c < kCallsPerRep; ++c) g_sink = WorkloadPlain(data);

  const double limit = MaxOverheadRatio();
  double best_ratio = 0;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    // Interleave orderings so drift penalizes neither side.
    const double plain_a = MedianRepSeconds(data, WorkloadPlain);
    const double traced_a = MedianRepSeconds(data, WorkloadTraced);
    const double traced_b = MedianRepSeconds(data, WorkloadTraced);
    const double plain_b = MedianRepSeconds(data, WorkloadPlain);
    const double plain = std::min(plain_a, plain_b);
    const double traced = std::min(traced_a, traced_b);
    const double ratio = traced / plain;

    std::printf("attempt %d/%d:\n", attempt, kAttempts);
    std::printf("  plain   median: %.6fs\n", plain);
    std::printf("  traced  median: %.6fs (tracing disabled at runtime)\n",
                traced);
    std::printf("  ratio: %.4f (limit %.2f)\n", ratio, limit);
    if (attempt == 1 || ratio < best_ratio) best_ratio = ratio;
    if (ratio <= limit) {
      std::printf("OK: disabled tracing overhead within budget\n");
      return 0;
    }
  }
  std::fprintf(stderr,
               "FAIL: disabled tracing costs %.1f%% (> %.0f%% budget) in "
               "every attempt\n",
               (best_ratio - 1.0) * 100, (limit - 1.0) * 100);
  return 1;
}
