/// \file trace_overhead.cc
/// \brief Guard: tracing compiled in but runtime-disabled must cost < 5%.
///
/// A disabled DL2SQL_TRACE_SPAN is one relaxed atomic load plus two empty
/// string constructions; this binary proves that stays in the noise against
/// a realistic per-span workload (a few microseconds of arithmetic, the
/// scale of one morsel or one small NN layer). Exits non-zero when the
/// median instrumented/plain ratio exceeds the threshold, so CI fails if a
/// future change makes "tracing off" expensive.
///
/// Run with --enabled to instead sanity-check that enabled tracing records
/// events (no timing guard; enabled tracing is allowed to cost more).
///
/// Anti-flake measures: the default 5% threshold is overridable through
/// DL2SQL_TRACE_OVERHEAD_PCT (e.g. 10 on noisy shared CI runners), and the
/// whole measurement is retried best-of-3 — one quiet attempt passes, so a
/// single scheduler hiccup cannot fail the build.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/timer.h"
#include "common/trace.h"

using namespace dl2sql;  // NOLINT

namespace {

constexpr int kWorkloadElems = 4096;  // one morsel's worth of arithmetic
constexpr int kCallsPerRep = 2000;
constexpr int kReps = 9;
constexpr int kAttempts = 3;  // best-of-3: any quiet attempt passes

/// Overhead budget as a ratio (default 1.05 = 5%); DL2SQL_TRACE_OVERHEAD_PCT
/// overrides the percentage for noisier environments.
double MaxOverheadRatio() {
  const char* env = std::getenv("DL2SQL_TRACE_OVERHEAD_PCT");
  if (env != nullptr) {
    const double pct = std::atof(env);
    if (pct > 0) return 1.0 + pct / 100.0;
  }
  return 1.05;
}

// volatile sink defeats whole-loop elimination without perturbing the loop.
volatile double g_sink = 0;

double WorkloadPlain(const std::vector<double>& data) {
  double sum = 0;
  for (double v : data) sum += v * 1.0000001 + 0.5;
  return sum;
}

double WorkloadTraced(const std::vector<double>& data) {
  DL2SQL_TRACE_SPAN("bench", "overhead_probe");
  double sum = 0;
  for (double v : data) sum += v * 1.0000001 + 0.5;
  return sum;
}

template <typename Fn>
double MedianRepSeconds(const std::vector<double>& data, Fn fn) {
  std::vector<double> reps;
  reps.reserve(kReps);
  for (int r = 0; r < kReps; ++r) {
    Stopwatch watch;
    for (int c = 0; c < kCallsPerRep; ++c) g_sink = fn(data);
    reps.push_back(watch.ElapsedSeconds());
  }
  std::sort(reps.begin(), reps.end());
  return reps[reps.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> data(kWorkloadElems);
  for (int i = 0; i < kWorkloadElems; ++i) data[i] = i * 0.001;

  if (argc > 1 && std::strcmp(argv[1], "--enabled") == 0) {
    TraceCollector::Global().Clear();
    TraceCollector::Global().SetEnabled(true);
    for (int c = 0; c < 100; ++c) g_sink = WorkloadTraced(data);
    TraceCollector::Global().SetEnabled(false);
    const int64_t events = TraceCollector::Global().EventCount();
#if defined(DL2SQL_TRACING_DISABLED)
    const int64_t expected = 0;
#else
    const int64_t expected = 100;
#endif
    std::printf("enabled-mode events recorded: %lld (expected %lld)\n",
                static_cast<long long>(events),
                static_cast<long long>(expected));
    return events == expected ? 0 : 1;
  }

  // Warm-up evens out frequency scaling before the measured reps.
  for (int c = 0; c < kCallsPerRep; ++c) g_sink = WorkloadPlain(data);

  const double limit = MaxOverheadRatio();
  double best_ratio = 0;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    // Interleave orderings so drift penalizes neither side.
    const double plain_a = MedianRepSeconds(data, WorkloadPlain);
    const double traced_a = MedianRepSeconds(data, WorkloadTraced);
    const double traced_b = MedianRepSeconds(data, WorkloadTraced);
    const double plain_b = MedianRepSeconds(data, WorkloadPlain);
    const double plain = std::min(plain_a, plain_b);
    const double traced = std::min(traced_a, traced_b);
    const double ratio = traced / plain;

    std::printf("attempt %d/%d:\n", attempt, kAttempts);
    std::printf("  plain   median: %.6fs\n", plain);
    std::printf("  traced  median: %.6fs (tracing disabled at runtime)\n",
                traced);
    std::printf("  ratio: %.4f (limit %.2f)\n", ratio, limit);
    if (attempt == 1 || ratio < best_ratio) best_ratio = ratio;
    if (ratio <= limit) {
      std::printf("OK: disabled tracing overhead within budget\n");
      return 0;
    }
  }
  std::fprintf(stderr,
               "FAIL: disabled tracing costs %.1f%% (> %.0f%% budget) in "
               "every attempt\n",
               (best_ratio - 1.0) * 100, (limit - 1.0) * 100);
  return 1;
}
