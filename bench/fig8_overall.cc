/// \file fig8_overall.cc
/// \brief Reproduces Fig. 8: overall cost breakdown (loading / inference /
/// relational) of the four approaches on the edge device and on the server
/// in CPU and (simulated) GPU mode, over a mixed Type 1-4 workload.
///
/// Paper shapes: DL2SQL-OP best on the edge; the GPU cuts inference but
/// inflates loading; DB-UDF gains nothing from the GPU.
#include "bench/bench_util.h"

using namespace dl2sql;          // NOLINT
using namespace dl2sql::bench;   // NOLINT
using namespace dl2sql::workload;  // NOLINT

int main() {
  const int per_type = FullScale() ? 5 : 1;
  // The paper's default selectivity is 0.01% of a 10M-row fabric table
  // (~1000 surviving rows). At bench scale we pick the selectivity that
  // leaves a comparable handful of qualified transactions.
  const workload::DatasetSizes sizes =
      workload::ComputeSizes(StandardOptions().dataset);
  const double selectivity =
      std::min(0.05, 8.0 / static_cast<double>(sizes.fabric));
  std::printf("scale-adapted relational selectivity: %.4f%%\n",
              selectivity * 100.0);

  PrintHeader("Fig. 8: overall performance (seconds per query, mixed types)",
              {"Hardware", "Approach", "Loading", "Inference", "Relational",
               "Total"});

  const std::pair<DeviceKind, const char*> kHardware[] = {
      {DeviceKind::kEdgeCpu, "edge-cpu"},
      {DeviceKind::kServerCpu, "server-cpu"},
      {DeviceKind::kServerGpu, "server-gpu"},
  };

  for (const auto& [device, hw_name] : kHardware) {
    TestbedOptions options = StandardOptions();
    options.device = device;
    // The paper's benchmark draws a random task from a 20-model repository
    // per query.
    options.full_repository = true;
    auto tb = Testbed::Create(options);
    BENCH_CHECK_OK(tb.status());
    for (engines::CollaborativeEngine* engine : (*tb)->AllEngines()) {
      auto cost = (*tb)->RunMixedWorkload(engine, per_type, selectivity,
                                          /*seed=*/2022);
      BENCH_CHECK_OK(cost.status());
      PrintCell(std::string(hw_name));
      PrintCell(std::string(engine->name()));
      PrintCell(cost->loading_seconds);
      PrintCell(cost->inference_seconds);
      PrintCell(cost->relational_seconds);
      PrintCell(cost->Total());
      EndRow();
    }
  }
  return 0;
}
