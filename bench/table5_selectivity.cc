/// \file table5_selectivity.cc
/// \brief Reproduces Table V: performance vs relational-predicate selectivity
/// (0.01% .. 1%) on the edge device.
///
/// Paper shapes: DL2SQL-OP wins everywhere but its inference cost grows with
/// selectivity (more rows trigger inference), narrowing the gap; DB-UDF and
/// DB-PyTorch totals barely correlate with selectivity because they infer on
/// every scanned keyframe regardless.
#include "bench/bench_util.h"

using namespace dl2sql;            // NOLINT
using namespace dl2sql::bench;     // NOLINT
using namespace dl2sql::workload;  // NOLINT

int main() {
  TestbedOptions options = StandardOptions();
  options.device = DeviceKind::kEdgeCpu;
  auto tb = Testbed::Create(options);
  BENCH_CHECK_OK(tb.status());

  // The paper sweeps 0.01%..1% of a 10M-row fabric table; we sweep the
  // selectivities that leave the same *absolute* candidate counts at bench
  // scale (0.5 .. 32 qualified fabric rows).
  const workload::DatasetSizes sizes = workload::ComputeSizes(options.dataset);
  std::vector<double> selectivities;
  for (double rows : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    selectivities.push_back(
        std::min(0.5, rows / static_cast<double>(sizes.fabric)));
  }
  const int count = FullScale() ? 5 : 2;

  PrintHeader(
      "Table V: DL2SQL-OP breakdown vs selectivity (Type 3, edge)",
      {"Sel(%)", "Inference(s)", "Loading(s)", "Relational(s)", "All(s)"});
  for (double s : selectivities) {
    auto cost = (*tb)->RunTypeWorkload((*tb)->dl2sql_op(), 3, count, s, 7);
    BENCH_CHECK_OK(cost.status());
    PrintCell(s * 100.0);
    PrintCell(cost->inference_seconds);
    PrintCell(cost->loading_seconds);
    PrintCell(cost->relational_seconds);
    PrintCell(cost->Total());
    EndRow();
  }

  PrintHeader("Table V (cont.): total seconds per approach vs selectivity",
              {"Sel(%)", "DL2SQL-OP", "DL2SQL", "DB-UDF", "DB-PyTorch"});
  for (double s : selectivities) {
    PrintCell(s * 100.0);
    for (engines::CollaborativeEngine* engine :
         {static_cast<engines::CollaborativeEngine*>((*tb)->dl2sql_op()),
          static_cast<engines::CollaborativeEngine*>((*tb)->dl2sql()),
          static_cast<engines::CollaborativeEngine*>((*tb)->udf()),
          static_cast<engines::CollaborativeEngine*>((*tb)->independent())}) {
      auto cost = (*tb)->RunTypeWorkload(engine, 3, count, s, 7);
      BENCH_CHECK_OK(cost.status());
      PrintCell(cost->Total());
    }
    EndRow();
  }
  return 0;
}
