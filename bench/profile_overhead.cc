/// \file profile_overhead.cc
/// \brief Guard: fully-enabled resource accounting must cost < 5%.
///
/// Runs a fig8-style serving mix (hash join, hash aggregation, batched nUDF
/// projection) through the Database twice — once with the MemTracker gate
/// enabled, once with DL2SQL_MEM_TRACKER=OFF semantics (runtime-disabled) —
/// and fails when the median enabled/disabled ratio exceeds the budget. The
/// enabled pass also sanity-checks the accounting itself: every mix
/// statement must land in system.query_profiles with a positive memory
/// peak, so the guard cannot pass by accidentally measuring a no-op path.
///
/// Anti-flake measures mirror bench/trace_overhead.cc: the default 5%
/// threshold is overridable through DL2SQL_PROFILE_OVERHEAD_PCT (e.g. 15 on
/// noisy shared CI runners), and the measurement is retried best-of-3 — one
/// quiet attempt passes, so a single scheduler hiccup cannot fail the build.
///
/// Emits BENCH_profile.json (mix_on_sec / mix_off_sec / overhead_ratio plus
/// hardware_concurrency) for scripts/check_bench_regression.py.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/mem_tracker.h"
#include "common/timer.h"
#include "db/database.h"

using namespace dl2sql;      // NOLINT
using namespace dl2sql::db;  // NOLINT

namespace {

constexpr int64_t kFactRows = 8000;
constexpr int64_t kDimRows = 64;
constexpr int kMixesPerRep = 2;
constexpr int kReps = 7;
constexpr int kAttempts = 3;  // best-of-3: any quiet attempt passes

// The same three statement shapes the fig8 mixed workload exercises:
// relational join, aggregation, and batched nUDF inference.
const char* const kMixSql[] = {
    "SELECT F.id, D.w FROM fact F INNER JOIN dim D ON F.grp = D.id "
    "WHERE F.val % 3 = 1",
    "SELECT grp, count(*) AS c, sum(val) AS s FROM fact GROUP BY grp",
    "SELECT id, nudf_affine(val) AS p FROM fact WHERE id % 2 = 0",
};

/// Overhead budget as a ratio (default 1.05 = 5%);
/// DL2SQL_PROFILE_OVERHEAD_PCT overrides the percentage for noisier
/// environments.
double MaxOverheadRatio() {
  const char* env = std::getenv("DL2SQL_PROFILE_OVERHEAD_PCT");
  if (env != nullptr) {
    const double pct = std::atof(env);
    if (pct > 0) return 1.0 + pct / 100.0;
  }
  return 1.05;
}

// volatile sink defeats whole-loop elimination without perturbing the loop.
volatile int64_t g_sink = 0;

void FillTables(Database* db) {
  // The nUDF result cache would collapse repeat mixes into cache hits and
  // the measurement would stop covering the batch path; disable it.
  CacheOptions cache;
  cache.enable_nudf_cache = false;
  db->set_cache_options(cache);

  TableSchema fact_schema({{"id", DataType::kInt64},
                           {"grp", DataType::kInt64},
                           {"val", DataType::kInt64}});
  Table fact{fact_schema};
  for (int64_t i = 0; i < kFactRows; ++i) {
    DL2SQL_CHECK(fact.AppendRow({Value::Int(i),
                                 Value::Int((i * 7919) % kDimRows),
                                 Value::Int((i * 104729 + 13) % 1000)})
                     .ok());
  }
  DL2SQL_CHECK(db->RegisterTable("fact", std::move(fact)).ok());

  TableSchema dim_schema({{"id", DataType::kInt64}, {"w", DataType::kInt64}});
  Table dim{dim_schema};
  for (int64_t i = 0; i < kDimRows; ++i) {
    DL2SQL_CHECK(dim.AppendRow({Value::Int(i), Value::Int(i * i)}).ok());
  }
  DL2SQL_CHECK(db->RegisterTable("dim", std::move(dim)).ok());

  NUdfInfo info;
  info.model_name = "affine";
  db->udfs().RegisterNeural(
      "nudf_affine", DataType::kFloat64,
      [](const std::vector<Value>& args) -> Result<Value> {
        DL2SQL_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        return Value::Float(x * 2.0 + 1.0);
      },
      info,
      [](const std::vector<std::vector<Value>>& rows)
          -> Result<std::vector<Value>> {
        std::vector<Value> out;
        out.reserve(rows.size());
        for (const auto& row : rows) {
          DL2SQL_ASSIGN_OR_RETURN(double x, row[0].AsDouble());
          out.push_back(Value::Float(x * 2.0 + 1.0));
        }
        return out;
      },
      /*arity=*/1, /*parallel_safe=*/true);
}

int64_t RunMixOnce(Database* db) {
  int64_t rows = 0;
  for (const char* sql : kMixSql) {
    auto r = db->Execute(sql);
    DL2SQL_CHECK(r.ok());
    rows += r->num_rows();
  }
  return rows;
}

double MedianRepSeconds(Database* db) {
  std::vector<double> reps;
  reps.reserve(kReps);
  for (int r = 0; r < kReps; ++r) {
    Stopwatch watch;
    for (int m = 0; m < kMixesPerRep; ++m) g_sink = RunMixOnce(db);
    reps.push_back(watch.ElapsedSeconds());
  }
  std::sort(reps.begin(), reps.end());
  return reps[reps.size() / 2];
}

/// With accounting on, every mix statement must have recorded a positive
/// memory peak in system.query_profiles — proof the enabled pass actually
/// exercised the tracked path rather than a silently-degraded no-op.
bool ProfilesShowTrackedPeaks(Database* db) {
  auto r = db->Execute(
      "SELECT count(*) AS n FROM system.query_profiles "
      "WHERE mem_peak_bytes > 0");
  if (!r.ok() || r->num_rows() != 1) return false;
  return r->column(0).GetValue(0).int_value() >= 3;
}

}  // namespace

int main() {
  if (!MemTracker::Enabled()) {
    // Compiled out (-DDL2SQL_MEM_TRACKER=OFF) or disabled via env: there is
    // no enabled path to measure, which trivially satisfies the budget.
    MemTracker::SetEnabled(true);
    if (!MemTracker::Enabled()) {
      std::printf("resource accounting compiled out; nothing to measure\n");
      return 0;
    }
  }

  Database database;
  FillTables(&database);

  // Warm-up evens out frequency scaling (and faults in the tables) before
  // the measured reps.
  MemTracker::SetEnabled(false);
  g_sink = RunMixOnce(&database);
  MemTracker::SetEnabled(true);
  g_sink = RunMixOnce(&database);
  if (!ProfilesShowTrackedPeaks(&database)) {
    std::fprintf(stderr,
                 "FATAL: system.query_profiles shows no positive memory "
                 "peaks with accounting enabled; the guard would measure a "
                 "broken path\n");
    return 1;
  }

  const double limit = MaxOverheadRatio();
  double best_ratio = 0;
  double best_on = 0;
  double best_off = 0;
  bool passed = false;
  for (int attempt = 1; attempt <= kAttempts && !passed; ++attempt) {
    // Interleave orderings so drift penalizes neither side.
    MemTracker::SetEnabled(false);
    const double off_a = MedianRepSeconds(&database);
    MemTracker::SetEnabled(true);
    const double on_a = MedianRepSeconds(&database);
    const double on_b = MedianRepSeconds(&database);
    MemTracker::SetEnabled(false);
    const double off_b = MedianRepSeconds(&database);
    MemTracker::SetEnabled(true);

    const double off = std::min(off_a, off_b);
    const double on = std::min(on_a, on_b);
    const double ratio = on / off;

    std::printf("attempt %d/%d:\n", attempt, kAttempts);
    std::printf("  accounting off median: %.6fs\n", off);
    std::printf("  accounting on  median: %.6fs\n", on);
    std::printf("  ratio: %.4f (limit %.2f)\n", ratio, limit);
    if (attempt == 1 || ratio < best_ratio) {
      best_ratio = ratio;
      best_on = on;
      best_off = off;
    }
    passed = ratio <= limit;
  }

  std::FILE* out = std::fopen("BENCH_profile.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_profile.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"profile_overhead\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"fact_rows\": %lld,\n"
               "  \"mix_on_sec\": %.6f,\n"
               "  \"mix_off_sec\": %.6f,\n"
               "  \"overhead_ratio\": %.4f\n}\n",
               std::thread::hardware_concurrency(),
               static_cast<long long>(kFactRows), best_on, best_off,
               best_ratio);
  std::fclose(out);
  std::printf("wrote BENCH_profile.json\n");

  if (passed) {
    std::printf("OK: enabled accounting overhead within budget\n");
    return 0;
  }
  std::fprintf(stderr,
               "FAIL: enabled accounting costs %.1f%% (> %.0f%% budget) in "
               "every attempt\n",
               (best_ratio - 1.0) * 100, (limit - 1.0) * 100);
  return 1;
}
