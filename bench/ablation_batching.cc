/// \file ablation_batching.cc
/// \brief Ablation: batched DL2SQL pipelines (one SQL execution per batch,
/// BatchID-keyed group-bys) vs per-image pipelines. Batching amortizes the
/// per-statement planning/materialization overhead — the same motivation the
/// paper gives for running nUDFs "in a batch manner".
#include "bench/bench_util.h"
#include "dl2sql/pipeline.h"
#include "nn/builders.h"

using namespace dl2sql;          // NOLINT
using namespace dl2sql::bench;   // NOLINT

int main() {
  nn::BuilderOptions b;
  b.input_size = FullScale() ? 24 : 16;
  b.base_channels = 4;
  nn::Model model = nn::BuildStudentCnn(b);
  Rng rng(3);

  PrintHeader("Ablation: batched vs per-image DL2SQL inference",
              {"BatchSize", "Mode", "Total(s)", "PerImage(s)"});
  for (int64_t batch : {1, 4, 16, 64}) {
    std::vector<Tensor> inputs;
    for (int64_t i = 0; i < batch; ++i) {
      inputs.push_back(Tensor::Random(model.input_shape(), &rng, 1.0f));
    }

    // Per-image pipeline, looped.
    {
      db::Database db;
      auto converted = core::ConvertModel(model, {}, &db);
      BENCH_CHECK_OK(converted.status());
      core::Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
      BENCH_CHECK_OK(runner.Infer(inputs[0]).status());  // warm-up
      Stopwatch watch;
      for (const auto& in : inputs) {
        BENCH_CHECK_OK(runner.Infer(in).status());
      }
      const double total = watch.ElapsedSeconds();
      PrintCell(batch);
      PrintCell(std::string("per-image"));
      PrintCell(total);
      PrintCell(total / static_cast<double>(batch));
      EndRow();
    }

    // One batched pipeline execution.
    {
      db::Database db;
      core::ConvertOptions copts;
      copts.batched = true;
      auto converted = core::ConvertModel(model, copts, &db);
      BENCH_CHECK_OK(converted.status());
      core::Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());
      BENCH_CHECK_OK(runner.InferBatch({inputs[0]}).status());  // warm-up
      Stopwatch watch;
      BENCH_CHECK_OK(runner.InferBatch(inputs).status());
      const double total = watch.ElapsedSeconds();
      PrintCell(batch);
      PrintCell(std::string("batched"));
      PrintCell(total);
      PrintCell(total / static_cast<double>(batch));
      EndRow();
    }
  }
  return 0;
}
