/// \file lindb_shell.cpp
/// \brief Interactive SQL shell for the lindb engine.
///
/// Usage:
///   ./build/examples/lindb_shell [--demo]      # --demo preloads the IoT
///                                              # dataset + an nUDF
/// Meta commands:
///   .help               this text
///   .tables             list tables and views
///   .schema <table>     show a table's schema
///   .explain <select>   show the optimized plan
///   .analyze <select>   execute and show the plan with actual rows/time
///   .save <path>        snapshot the database to a file
///   .load <path>        restore a snapshot
///   .quit               exit
/// Anything else is executed as SQL (single statement per line).
#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "db/persistence.h"
#include "engines/dl2sql_engine.h"
#include "workload/dataset.h"
#include "workload/testbed.h"

using namespace dl2sql;  // NOLINT

namespace {

void PrintHelp() {
  std::printf(
      ".help / .tables / .schema <t> / .explain <select> / .analyze <select> / .save <path> / "
      ".load <path> / .quit, or any SQL statement\n");
}

}  // namespace

int main(int argc, char** argv) {
  db::Database db;
  std::unique_ptr<engines::Dl2SqlEngine> engine;

  if (argc > 1 && std::string(argv[1]) == "--demo") {
    std::printf("loading the IoT textile-printing demo dataset...\n");
    workload::DatasetOptions opts;
    opts.video_rows = 500;
    opts.keyframe_size = 12;
    auto st = workload::PopulateDatabase(&db, opts);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    // Wire an nUDF so collaborative queries work in the shell: the engine
    // owns its own database, so we attach the dataset and route queries
    // through it instead.
    auto device = Device::Create(DeviceKind::kEdgeCpu);
    engines::Dl2SqlEngine::Options eopts;
    eopts.enable_optimizer_hints = true;
    engine = std::make_unique<engines::Dl2SqlEngine>(device, eopts);
    if (!engine->AttachTablesFrom(db).ok()) return 1;
    workload::TestbedOptions t;
    t.dataset = opts;
    t.model_base_channels = 2;
    nn::Model detect = workload::BuildRepositoryModel(t, 2, 5);
    engines::ModelDeployment dep;
    dep.udf_name = "nUDF_detect";
    dep.output = engines::NUdfOutput::kBool;
    auto sel = engines::LearnSelectivityHistogram(
        detect, engines::NUdfOutput::kBool, device.get(), 16, 3);
    if (sel.ok()) dep.selectivity = *sel;
    if (!engine->DeployModel(detect, dep).ok()) return 1;
    std::printf(
        "demo ready: tables fabric/video/client/orders/device, nUDF_detect "
        "deployed.\ntry: SELECT count(*) FROM video V WHERE "
        "nUDF_detect(V.keyframe) = TRUE\n");
  }

  db::Database& active = engine ? engine->database() : db;

  std::string line;
  std::printf("lindb> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) {
      std::printf("lindb> ");
      std::fflush(stdout);
      continue;
    }
    if (trimmed == ".quit" || trimmed == ".exit") break;
    if (trimmed == ".help") {
      PrintHelp();
    } else if (trimmed == ".tables") {
      for (const auto& t : active.catalog().TableNames()) {
        std::printf("table %s\n", t.c_str());
      }
      for (const auto& v : active.catalog().ViewNames()) {
        std::printf("view  %s\n", v.c_str());
      }
    } else if (StartsWith(trimmed, ".schema ")) {
      auto t = active.catalog().GetTable(Trim(trimmed.substr(8)));
      if (t.ok()) {
        std::printf("%s\n", (*t)->schema().ToString().c_str());
      } else {
        std::printf("error: %s\n", t.status().ToString().c_str());
      }
    } else if (StartsWith(trimmed, ".explain ")) {
      auto plan = active.Explain(trimmed.substr(9));
      std::printf("%s\n", plan.ok() ? plan->c_str()
                                    : plan.status().ToString().c_str());
    } else if (StartsWith(trimmed, ".analyze ")) {
      auto plan = active.ExplainAnalyze(trimmed.substr(9));
      std::printf("%s\n", plan.ok() ? plan->c_str()
                                    : plan.status().ToString().c_str());
    } else if (StartsWith(trimmed, ".save ")) {
      auto st = db::SaveDatabase(active, Trim(trimmed.substr(6)));
      std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
    } else if (StartsWith(trimmed, ".load ")) {
      auto st = db::LoadDatabase(Trim(trimmed.substr(6)), &active);
      std::printf("%s\n", st.ok() ? "loaded" : st.ToString().c_str());
    } else if (engine != nullptr &&
               EqualsIgnoreCase(trimmed.substr(0, 6), "select")) {
      engines::QueryCost cost;
      auto r = engine->ExecuteCollaborative(trimmed, &cost);
      if (r.ok()) {
        std::printf("%s(%lld rows | load %.4fs infer %.4fs relational "
                    "%.4fs)\n",
                    r->ToString(25).c_str(),
                    static_cast<long long>(r->num_rows()),
                    cost.loading_seconds, cost.inference_seconds,
                    cost.relational_seconds);
      } else {
        std::printf("error: %s\n", r.status().ToString().c_str());
      }
    } else {
      Stopwatch watch;
      auto r = active.Execute(trimmed);
      if (r.ok()) {
        std::printf("%s(%lld rows, %.4fs)\n", r->ToString(25).c_str(),
                    static_cast<long long>(r->num_rows()),
                    watch.ElapsedSeconds());
      } else {
        std::printf("error: %s\n", r.status().ToString().c_str());
      }
    }
    std::printf("lindb> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
