/// \file quickstart.cpp
/// \brief Quickstart: convert a small CNN into relational tables + SQL
/// (DL2SQL), run the same inference natively and through the database, and
/// show they agree.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
#include <cstdio>

#include "dl2sql/pipeline.h"
#include "nn/builders.h"

using namespace dl2sql;  // NOLINT

int main() {
  // 1. An "offline-trained" model (deterministic random weights).
  nn::BuilderOptions opts;
  opts.input_channels = 3;
  opts.input_size = 16;
  opts.base_channels = 4;
  opts.num_classes = 5;
  nn::Model model = nn::BuildStudentCnn(opts);
  std::printf("%s\n", model.Summary().c_str());

  // 2. Convert it into relational tables + generated SQL inside an embedded
  //    database (the paper's tight-integration strategy).
  db::Database db;
  auto converted = core::ConvertModel(model, {}, &db);
  if (!converted.ok()) {
    std::fprintf(stderr, "conversion failed: %s\n",
                 converted.status().ToString().c_str());
    return 1;
  }
  std::printf("static parameter tables: %zu\n",
              converted->static_tables.size());
  std::printf("example generated statement (first conv):\n  %s\n\n",
              converted->ops.front().runtime_sql.back().substr(0, 160).c_str());

  core::Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());

  // 3. One keyframe, two inference paths.
  Rng rng(123);
  Tensor keyframe = Tensor::Random(model.input_shape(), &rng, 1.0f);

  auto device = Device::Create(DeviceKind::kEdgeCpu);
  auto native = model.Forward(keyframe, device.get());
  core::PipelineRunStats stats;
  auto via_sql = runner.Infer(keyframe, &stats);
  if (!native.ok() || !via_sql.ok()) {
    std::fprintf(stderr, "inference failed\n");
    return 1;
  }

  std::printf("class  native      via-SQL\n");
  for (int64_t i = 0; i < via_sql->NumElements(); ++i) {
    std::printf("%-6lld %-11.6f %-11.6f\n", static_cast<long long>(i),
                native->at(i), via_sql->at(i));
  }
  std::printf("\nSQL pipeline: load=%.4fs infer=%.4fs over %zu ops\n",
              stats.load_seconds, stats.infer_seconds, stats.per_op.size());
  return 0;
}
