/// \file lindb_client.cpp
/// \brief Command-line client for lindb_server's line protocol.
///
/// Usage:
///   ./build/examples/lindb_client [--host H] --port N [--file script.sql]
///
/// With --file, the script is split into statements (respecting quoted
/// strings and -- comments), each sent as one line; otherwise statements are
/// read from stdin, one per line. Responses are printed verbatim up to and
/// including their END marker, so output diffs are stable.
///
/// Connects with a bounded retry (exponential backoff inside a total budget,
/// default 3000 ms, DL2SQL_CLUSTER_CONNECT_RETRY_MS overrides) so scripts
/// that launch a server and immediately drive it don't flake on the startup
/// race with ECONNREFUSED.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "db/sql/parser.h"

using namespace dl2sql;  // NOLINT

namespace {

/// Flattening a statement onto one protocol line would otherwise let a `--`
/// comment swallow the rest of it, so comments are stripped first (quotes
/// respected, '' escapes included).
std::string StripLineComments(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (in_string) {
      out += c;
      if (c == '\'') {
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          out += sql[++i];
        } else {
          in_string = false;
        }
      }
      continue;
    }
    if (c == '\'') {
      in_string = true;
      out += c;
      continue;
    }
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      if (i < sql.size()) out += '\n';
      continue;
    }
    out += c;
  }
  return out;
}

bool SendLine(int fd, std::string line) {
  // The protocol is one statement per line.
  line = StripLineComments(line);
  for (char& c : line) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  line += '\n';
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd, line.data() + sent, line.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Prints one framed response (through its END line). Returns false on EOF.
bool PumpResponse(int fd, std::string* buffer) {
  while (true) {
    size_t nl;
    while ((nl = buffer->find('\n')) != std::string::npos) {
      const std::string line = buffer->substr(0, nl);
      buffer->erase(0, nl + 1);
      std::printf("%s\n", line.c_str());
      if (line == "END") return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

/// Dials host:port, retrying refused/failed connects with exponential
/// backoff (20 ms doubling to 200 ms) until `budget_ms` is spent. Returns
/// the connected fd, or -1 with errno describing the last failure.
int ConnectWithRetry(const sockaddr_in& addr, double budget_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(budget_ms);
  double backoff_ms = 20.0;
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    const int saved = errno;
    ::close(fd);
    if (std::chrono::steady_clock::now() +
            std::chrono::duration<double, std::milli>(backoff_ms) >=
        deadline) {
      errno = saved;
      return -1;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    backoff_ms = backoff_ms * 2 < 200.0 ? backoff_ms * 2 : 200.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--host" && v != nullptr) {
      host = v;
      ++i;
    } else if (arg == "--port" && v != nullptr) {
      port = std::atoi(v);
      ++i;
    } else if (arg == "--file" && v != nullptr) {
      file = v;
      ++i;
    } else {
      std::fprintf(stderr, "usage: lindb_client [--host H] --port N [--file script.sql]\n");
      return 2;
    }
  }
  if (port <= 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "bad host %s\n", host.c_str());
    return 1;
  }
  double budget_ms = 3000.0;
  if (const char* env = std::getenv("DL2SQL_CLUSTER_CONNECT_RETRY_MS")) {
    const double v = std::atof(env);
    if (v > 0) budget_ms = v;
  }
  const int fd = ConnectWithRetry(addr, budget_ms);
  if (fd < 0) {
    std::perror("connect");
    return 1;
  }

  std::vector<std::string> statements;
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", file.c_str());
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    statements = db::sql::SplitStatements(script.str());
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) statements.push_back(line);
    }
  }

  std::string buffer;
  for (const std::string& stmt : statements) {
    if (!SendLine(fd, stmt)) {
      std::fprintf(stderr, "connection lost while sending\n");
      return 1;
    }
    if (!PumpResponse(fd, &buffer)) {
      std::fprintf(stderr, "connection closed before response finished\n");
      return 1;
    }
  }
  ::close(fd);
  return 0;
}
