/// \file cost_model_explorer.cpp
/// \brief Shows why the paper needs a customized cost model: per-layer
/// cardinality and cost estimates of the default (blind) DBMS model vs the
/// DL2SQL model (Eqs. 3-8), against the actually materialized table sizes.
#include <cstdio>

#include "dl2sql/cost_model.h"
#include "dl2sql/pipeline.h"
#include "nn/builders.h"

using namespace dl2sql;  // NOLINT

int main() {
  nn::BuilderOptions opts;
  opts.input_channels = 3;
  opts.input_size = 16;
  opts.base_channels = 4;
  nn::Model model = nn::BuildStudentCnn(opts);

  db::Database db;
  auto converted = core::ConvertModel(model, {}, &db);
  if (!converted.ok()) {
    std::fprintf(stderr, "%s\n", converted.status().ToString().c_str());
    return 1;
  }

  auto custom = core::EstimateCustom(*converted);
  auto blind = core::EstimateDefault(*converted, &db);
  if (!blind.ok()) {
    std::fprintf(stderr, "%s\n", blind.status().ToString().c_str());
    return 1;
  }

  std::printf("%-16s %-14s %-18s %-18s\n", "Layer", "Kind", "CustomCost(units)",
              "DefaultCost(units)");
  for (size_t i = 0; i < custom.size(); ++i) {
    std::printf("%-16s %-14s %-18.0f %-18.0f\n", custom[i].label.c_str(),
                nn::LayerKindToString(custom[i].kind), custom[i].cost_units,
                (*blind)[i].cost_units);
  }
  std::printf("\nTOTAL custom=%.0f default=%.0f (x%.1f overestimation)\n",
              core::TotalUnits(custom), core::TotalUnits(*blind),
              core::TotalUnits(*blind) / core::TotalUnits(custom));
  std::printf(
      "\nThe default model cannot see through the generated temp tables, so "
      "its join estimates compound layer over layer (Section IV).\n");
  return 0;
}
