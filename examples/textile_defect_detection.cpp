/// \file textile_defect_detection.cpp
/// \brief The paper's motivating scenario: a printing-fault detection query
/// over IoT sensor data + surveillance keyframes, processed by all three
/// strategies (independent / UDF / DL2SQL(-OP)) with the same answer but very
/// different cost profiles.
#include <cstdio>

#include "workload/testbed.h"

using namespace dl2sql;            // NOLINT
using namespace dl2sql::workload;  // NOLINT

int main() {
  std::printf("setting up the IoT textile-printing testbed...\n");
  TestbedOptions options;
  options.dataset.video_rows = 800;
  options.dataset.keyframe_size = 16;
  auto tb = Testbed::Create(options);
  if (!tb.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", tb.status().ToString().c_str());
    return 1;
  }

  // The introduction's collaborative query: transactions where the printed
  // fabric shows no defect despite adverse humidity/temperature conditions.
  const std::string query =
      "SELECT patternID, F.transID "
      "FROM fabric F, video V "
      "WHERE F.humidity > 80 and F.temperature > 30 "
      "and F.printdate > '2021-01-01' and F.printdate < '2021-12-31' "
      "and F.transID = V.transID "
      "and V.date > '2021-01-01' and V.date < '2021-12-31' "
      "and nUDF_detect(V.keyframe) = FALSE";
  std::printf("\ncollaborative query:\n%s\n\n", query.c_str());

  for (engines::CollaborativeEngine* engine : (*tb)->AllEngines()) {
    engines::QueryCost cost;
    auto result = engine->ExecuteCollaborative(query, &cost);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", engine->name(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s -> %lld rows | load %.4fs  infer %.4fs  relational "
                "%.4fs  total %.4fs\n",
                engine->name(), static_cast<long long>(result->num_rows()),
                cost.loading_seconds, cost.inference_seconds,
                cost.relational_seconds, cost.Total());
  }

  std::printf(
      "\nAll four strategies return the same rows; DL2SQL-OP's optimizer "
      "delays the nUDF predicate behind the selective sensor filters.\n");
  return 0;
}
