/// \file batch_inference.cpp
/// \brief Batched DL2SQL pipelines: one generated-SQL execution infers a
/// whole batch of keyframes (every activation table carries a BatchID), and
/// the same extension plugs into collaborative queries through the
/// vectorized nUDF interface.
#include <cstdio>

#include "dl2sql/pipeline.h"
#include "nn/builders.h"

using namespace dl2sql;  // NOLINT

int main() {
  nn::BuilderOptions opts;
  opts.input_channels = 3;
  opts.input_size = 16;
  opts.base_channels = 4;
  opts.num_classes = 4;
  nn::Model model = nn::BuildStudentCnn(opts);

  db::Database db;
  core::ConvertOptions copts;
  copts.batched = true;
  auto converted = core::ConvertModel(model, copts, &db);
  if (!converted.ok()) {
    std::fprintf(stderr, "%s\n", converted.status().ToString().c_str());
    return 1;
  }
  std::printf("batched conv statement:\n  %.170s...\n\n",
              converted->ops.front().runtime_sql.back().c_str());
  core::Dl2SqlRunner runner(&db, std::move(converted).ValueOrDie());

  Rng rng(42);
  std::vector<Tensor> keyframes;
  for (int i = 0; i < 8; ++i) {
    keyframes.push_back(Tensor::Random(model.input_shape(), &rng, 1.0f));
  }

  core::PipelineRunStats stats;
  auto preds = runner.PredictBatch(keyframes, &stats);
  if (!preds.ok()) {
    std::fprintf(stderr, "%s\n", preds.status().ToString().c_str());
    return 1;
  }

  auto device = Device::Create(DeviceKind::kEdgeCpu);
  std::printf("frame  sql-batch  native\n");
  for (size_t i = 0; i < preds->size(); ++i) {
    auto native = model.Predict(keyframes[i], device.get());
    std::printf("%-6zu %-10lld %-10lld %s\n", i,
                static_cast<long long>((*preds)[i]),
                static_cast<long long>(native.ok() ? *native : -1),
                (*preds)[i] == *native ? "" : "<- MISMATCH");
  }
  std::printf("\nbatch of %zu inferred in one pipeline run: load=%.4fs "
              "infer=%.4fs (%zu ops)\n",
              keyframes.size(), stats.load_seconds, stats.infer_seconds,
              stats.per_op.size());
  return 0;
}
