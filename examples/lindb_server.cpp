/// \file lindb_server.cpp
/// \brief Standalone lindb TCP server: newline-delimited SQL in, framed
/// TSV/JSON out (see src/server/wire.h for the protocol). With --shard flags
/// it becomes a cluster coordinator scatter-gathering over shard processes
/// (see src/cluster/coordinator.h).
///
/// Usage:
///   ./build/examples/lindb_server [--port N] [--init script.sql]
///                                 [--coalesce on|off] [--max-concurrent N]
///                                 [--shard host:port]... [--demo-model]
///
/// --port 0 (the default) picks a free port; the server prints
/// "PORT <n>" on stdout once it is listening, so scripts can capture it.
/// --init runs a SQL script before serving (schema + seed data). In
/// coordinator mode the script executes statement by statement through a
/// service session, so PARTITION BY HASH DDL and sharded-table DML route
/// through the coordinator like client traffic would.
/// --shard (repeatable, in shard-index order) names one shard's SQL port;
/// any --shard flag turns this process into the cluster coordinator.
/// --demo-model registers the deterministic demo student CNN as
/// nudf_student — run it on the coordinator AND every shard so the model is
/// replicated, the cluster analog of deploying one model to all replicas.
/// Shuts down cleanly on SIGINT/SIGTERM.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "common/trace.h"
#include "demo_model.h"
#include "server/session.h"
#include "server/tcp_server.h"

using namespace dl2sql;  // NOLINT

int main(int argc, char** argv) {
  server::TcpServerOptions tcp_opts;
  server::ServiceOptions service_opts;
  std::string init_path;
  std::vector<cluster::ShardEndpoint> shards;
  bool demo_model = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "--port needs a value\n");
        return 2;
      }
      tcp_opts.port = std::atoi(v);
    } else if (arg == "--init") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "--init needs a path\n");
        return 2;
      }
      init_path = v;
    } else if (arg == "--coalesce") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "--coalesce needs on|off\n");
        return 2;
      }
      service_opts.coalescer.enabled = std::string(v) == "on";
    } else if (arg == "--max-concurrent") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "--max-concurrent needs a value\n");
        return 2;
      }
      service_opts.admission.max_concurrent = std::atoi(v);
    } else if (arg == "--shard") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "--shard needs host:port\n");
        return 2;
      }
      auto endpoint = cluster::ParseShardEndpoint(v);
      if (!endpoint.ok()) {
        std::fprintf(stderr, "%s\n", endpoint.status().ToString().c_str());
        return 2;
      }
      shards.push_back(std::move(*endpoint));
    } else if (arg == "--demo-model") {
      demo_model = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  // DL2SQL_TRACE=on|1|true enables runtime span collection (the compile-time
  // DL2SQL_TRACING gate must also be on, which is the default build). Traced
  // spans feed system.spans, the .ctrace export, and — in coordinator mode —
  // the cross-node trailer shipping.
  if (const char* env = std::getenv("DL2SQL_TRACE")) {
    const std::string v = env;
    if (v == "on" || v == "1" || v == "true") {
      TraceCollector::Global().SetEnabled(true);
    }
  }

  db::Database db;
  std::shared_ptr<demo::ServedModel> served;
  if (demo_model) served = demo::RegisterDemoModel(&db);

  server::QueryService service(&db, service_opts);
  std::unique_ptr<cluster::Coordinator> coordinator;
  if (!shards.empty()) {
    coordinator = std::make_unique<cluster::Coordinator>(
        &db, std::move(shards), cluster::ShardClientOptions::FromEnv());
    service.set_distributed_executor(coordinator.get());
  }

  if (!init_path.empty()) {
    std::ifstream in(init_path);
    if (!in) {
      std::fprintf(stderr, "cannot read init script %s\n", init_path.c_str());
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    if (coordinator != nullptr) {
      // Statement by statement through a session, so sharded DDL/DML routes
      // through the coordinator exactly like client traffic.
      auto session = service.CreateSession();
      for (const std::string& stmt :
           db::sql::SplitStatements(script.str())) {
        auto result = session->Execute(stmt);
        if (!result.ok()) {
          std::fprintf(stderr, "init script failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
      }
    } else {
      auto st = db.ExecuteScript(script.str());
      if (!st.ok()) {
        std::fprintf(stderr, "init script failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
    }
  }

  server::TcpServer tcp(&service, tcp_opts);

  // Block the shutdown signals before serving threads spawn so they inherit
  // the mask and sigwait below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  auto st = tcp.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("PORT %d\n", tcp.port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&signals, &sig);
  std::printf("signal %d: shutting down\n", sig);
  tcp.Stop();
  // The coordinator must detach from the service before it restores the
  // system-table providers it decorated.
  service.set_distributed_executor(nullptr);
  coordinator.reset();
  return 0;
}
