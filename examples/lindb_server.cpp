/// \file lindb_server.cpp
/// \brief Standalone lindb TCP server: newline-delimited SQL in, framed
/// TSV/JSON out (see src/server/wire.h for the protocol).
///
/// Usage:
///   ./build/examples/lindb_server [--port N] [--init script.sql]
///                                 [--coalesce on|off] [--max-concurrent N]
///
/// --port 0 (the default) picks a free port; the server prints
/// "PORT <n>" on stdout once it is listening, so scripts can capture it.
/// --init runs a SQL script before serving (schema + seed data).
/// Shuts down cleanly on SIGINT/SIGTERM.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "server/session.h"
#include "server/tcp_server.h"

using namespace dl2sql;  // NOLINT

int main(int argc, char** argv) {
  server::TcpServerOptions tcp_opts;
  server::ServiceOptions service_opts;
  std::string init_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "--port needs a value\n");
        return 2;
      }
      tcp_opts.port = std::atoi(v);
    } else if (arg == "--init") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "--init needs a path\n");
        return 2;
      }
      init_path = v;
    } else if (arg == "--coalesce") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "--coalesce needs on|off\n");
        return 2;
      }
      service_opts.coalescer.enabled = std::string(v) == "on";
    } else if (arg == "--max-concurrent") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "--max-concurrent needs a value\n");
        return 2;
      }
      service_opts.admission.max_concurrent = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  db::Database db;
  if (!init_path.empty()) {
    std::ifstream in(init_path);
    if (!in) {
      std::fprintf(stderr, "cannot read init script %s\n", init_path.c_str());
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    auto st = db.ExecuteScript(script.str());
    if (!st.ok()) {
      std::fprintf(stderr, "init script failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  server::QueryService service(&db, service_opts);
  server::TcpServer tcp(&service, tcp_opts);

  // Block the shutdown signals before serving threads spawn so they inherit
  // the mask and sigwait below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  auto st = tcp.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("PORT %d\n", tcp.port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&signals, &sig);
  std::printf("signal %d: shutting down\n", sig);
  tcp.Stop();
  return 0;
}
