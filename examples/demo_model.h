/// \file demo_model.h
/// \brief The deterministic demo student CNN served as `nudf_student`.
///
/// Shared by lindb_server's --demo-model flag and the cluster smoke/serving
/// tooling: every process that registers this model builds it from the same
/// fixed seed, so a coordinator and its shards (or a single node and a
/// cluster) agree on every prediction — the in-database analog of replicating
/// one deployed model to every serving replica.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "accel/device.h"
#include "db/database.h"
#include "nn/builders.h"
#include "nn/serialize.h"

namespace dl2sql::demo {

/// One student CNN behind a mutex, like a single exclusive accelerator.
struct ServedModel {
  nn::Model model;
  std::shared_ptr<Device> device;
  std::mutex mu;

  ServedModel() {
    nn::BuilderOptions opts;
    opts.input_channels = 1;
    opts.input_size = 8;
    opts.num_classes = 4;
    opts.base_channels = 2;
    opts.seed = 7;
    model = nn::BuildStudentCnn(opts);
    DeviceProfile profile = Device::ServerCpuProfile();
    profile.name = "demo-model-cpu";
    profile.num_threads = 1;
    device = std::make_shared<Device>(profile);
  }

  /// Deterministic keyframe analog for a row seed.
  Tensor MakeInput(int64_t seed) const {
    Tensor t{Shape({1, 8, 8})};
    for (int64_t i = 0; i < t.NumElements(); ++i) {
      t.at(i) = static_cast<float>((seed * 131 + i * 29) % 211) / 105.0f - 1.0f;
    }
    return t;
  }

  Result<int64_t> PredictSeed(int64_t seed) {
    const Tensor input = MakeInput(seed);
    std::lock_guard<std::mutex> lock(mu);
    return model.Predict(input, device.get());
  }

  Result<std::vector<db::Value>> PredictBatch(
      const std::vector<std::vector<db::Value>>& rows) {
    std::vector<Tensor> inputs;
    inputs.reserve(rows.size());
    for (const auto& row : rows) {
      DL2SQL_ASSIGN_OR_RETURN(int64_t seed, row[0].AsInt());
      inputs.push_back(MakeInput(seed));
    }
    std::vector<db::Value> out;
    out.reserve(rows.size());
    std::lock_guard<std::mutex> lock(mu);
    for (const Tensor& input : inputs) {
      DL2SQL_ASSIGN_OR_RETURN(int64_t cls, model.Predict(input, device.get()));
      out.push_back(db::Value::Int(cls));
    }
    return out;
  }
};

/// Registers `nudf_student(seed) -> int64` backed by a fresh ServedModel;
/// the returned handle owns the model and must outlive the database.
inline std::shared_ptr<ServedModel> RegisterDemoModel(db::Database* db) {
  auto served = std::make_shared<ServedModel>();
  db::NUdfInfo info;
  info.model_name = served->model.name();
  info.num_parameters = served->model.NumParameters();
  info.fingerprint = nn::ModelFingerprint(served->model).ValueOr(0x5eed);
  db->udfs().RegisterNeural(
      "nudf_student", db::DataType::kInt64,
      [served](const std::vector<db::Value>& args) -> Result<db::Value> {
        DL2SQL_ASSIGN_OR_RETURN(int64_t seed, args[0].AsInt());
        DL2SQL_ASSIGN_OR_RETURN(int64_t cls, served->PredictSeed(seed));
        return db::Value::Int(cls);
      },
      info,
      [served](const std::vector<std::vector<db::Value>>& rows)
          -> Result<std::vector<db::Value>> {
        return served->PredictBatch(rows);
      },
      /*arity=*/1, /*parallel_safe=*/true);
  return served;
}

}  // namespace dl2sql::demo
