/// \file query_types_tour.cpp
/// \brief Tour of the four collaborative-query types of Table I: runs each on
/// DL2SQL-OP, prints the optimized plan (showing where the optimizer placed
/// the nUDF predicates) and the result.
#include <cstdio>

#include "workload/testbed.h"

using namespace dl2sql;            // NOLINT
using namespace dl2sql::workload;  // NOLINT

int main() {
  TestbedOptions options;
  options.dataset.video_rows = 500;
  options.dataset.keyframe_size = 12;
  auto tb = Testbed::Create(options);
  if (!tb.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", tb.status().ToString().c_str());
    return 1;
  }

  QueryParams params;
  params.selectivity = 0.1;

  struct Case {
    const char* title;
    std::string sql;
  };
  const Case cases[] = {
      {"Type 1 (independent): printed meters of one recognized pattern",
       MakeType1Query(params)},
      {"Type 2 (Q_db depends on Q_learning): per-pattern defect rate",
       MakeType2Query(params)},
      {"Type 3 (Q_learning depends on Q_db): defects under sensor conditions",
       MakeType3Query(params)},
      {"Type 4 (interdependent): recorded vs recognized pattern mismatch",
       MakeType4Query(params)},
      {"Type 4 equality variant (symmetric hash join, hint rule 3)",
       MakeType4EqualityQuery(params)},
  };

  auto* engine = (*tb)->dl2sql_op();
  for (const Case& c : cases) {
    std::printf("\n===== %s =====\n%s\n", c.title, c.sql.c_str());
    auto plan = engine->database().Explain(c.sql);
    if (plan.ok()) {
      std::printf("--- optimized plan ---\n%s", plan->c_str());
    }
    engines::QueryCost cost;
    auto result = engine->ExecuteCollaborative(c.sql, &cost);
    if (!result.ok()) {
      std::fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("--- result (%lld rows, %.4fs) ---\n%s",
                static_cast<long long>(result->num_rows()), cost.Total(),
                result->ToString(8).c_str());
  }
  return 0;
}
