file(REMOVE_RECURSE
  "CMakeFiles/dl2sql_dl2sql.dir/converter.cc.o"
  "CMakeFiles/dl2sql_dl2sql.dir/converter.cc.o.d"
  "CMakeFiles/dl2sql_dl2sql.dir/cost_model.cc.o"
  "CMakeFiles/dl2sql_dl2sql.dir/cost_model.cc.o.d"
  "CMakeFiles/dl2sql_dl2sql.dir/pipeline.cc.o"
  "CMakeFiles/dl2sql_dl2sql.dir/pipeline.cc.o.d"
  "libdl2sql_dl2sql.a"
  "libdl2sql_dl2sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl2sql_dl2sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
