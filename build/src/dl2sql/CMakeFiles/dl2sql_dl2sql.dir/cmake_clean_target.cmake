file(REMOVE_RECURSE
  "libdl2sql_dl2sql.a"
)
