# Empty dependencies file for dl2sql_dl2sql.
# This may be replaced when dependencies are built.
