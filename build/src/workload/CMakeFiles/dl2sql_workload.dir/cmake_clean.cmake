file(REMOVE_RECURSE
  "CMakeFiles/dl2sql_workload.dir/dataset.cc.o"
  "CMakeFiles/dl2sql_workload.dir/dataset.cc.o.d"
  "CMakeFiles/dl2sql_workload.dir/model_repo.cc.o"
  "CMakeFiles/dl2sql_workload.dir/model_repo.cc.o.d"
  "CMakeFiles/dl2sql_workload.dir/queries.cc.o"
  "CMakeFiles/dl2sql_workload.dir/queries.cc.o.d"
  "CMakeFiles/dl2sql_workload.dir/testbed.cc.o"
  "CMakeFiles/dl2sql_workload.dir/testbed.cc.o.d"
  "libdl2sql_workload.a"
  "libdl2sql_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl2sql_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
