file(REMOVE_RECURSE
  "libdl2sql_workload.a"
)
