# Empty dependencies file for dl2sql_workload.
# This may be replaced when dependencies are built.
