file(REMOVE_RECURSE
  "CMakeFiles/dl2sql_common.dir/logging.cc.o"
  "CMakeFiles/dl2sql_common.dir/logging.cc.o.d"
  "CMakeFiles/dl2sql_common.dir/status.cc.o"
  "CMakeFiles/dl2sql_common.dir/status.cc.o.d"
  "CMakeFiles/dl2sql_common.dir/string_util.cc.o"
  "CMakeFiles/dl2sql_common.dir/string_util.cc.o.d"
  "libdl2sql_common.a"
  "libdl2sql_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl2sql_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
