# Empty compiler generated dependencies file for dl2sql_common.
# This may be replaced when dependencies are built.
