file(REMOVE_RECURSE
  "libdl2sql_common.a"
)
