file(REMOVE_RECURSE
  "CMakeFiles/dl2sql_tensor.dir/tensor_blob.cc.o"
  "CMakeFiles/dl2sql_tensor.dir/tensor_blob.cc.o.d"
  "CMakeFiles/dl2sql_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/dl2sql_tensor.dir/tensor_ops.cc.o.d"
  "libdl2sql_tensor.a"
  "libdl2sql_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl2sql_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
