file(REMOVE_RECURSE
  "libdl2sql_tensor.a"
)
