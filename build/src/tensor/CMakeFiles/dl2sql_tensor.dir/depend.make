# Empty dependencies file for dl2sql_tensor.
# This may be replaced when dependencies are built.
