# Empty dependencies file for dl2sql_engines.
# This may be replaced when dependencies are built.
