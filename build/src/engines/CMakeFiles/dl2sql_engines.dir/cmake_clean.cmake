file(REMOVE_RECURSE
  "CMakeFiles/dl2sql_engines.dir/dl2sql_engine.cc.o"
  "CMakeFiles/dl2sql_engines.dir/dl2sql_engine.cc.o.d"
  "CMakeFiles/dl2sql_engines.dir/engine.cc.o"
  "CMakeFiles/dl2sql_engines.dir/engine.cc.o.d"
  "CMakeFiles/dl2sql_engines.dir/independent_engine.cc.o"
  "CMakeFiles/dl2sql_engines.dir/independent_engine.cc.o.d"
  "CMakeFiles/dl2sql_engines.dir/udf_engine.cc.o"
  "CMakeFiles/dl2sql_engines.dir/udf_engine.cc.o.d"
  "libdl2sql_engines.a"
  "libdl2sql_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl2sql_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
