file(REMOVE_RECURSE
  "libdl2sql_engines.a"
)
