file(REMOVE_RECURSE
  "libdl2sql_accel.a"
)
