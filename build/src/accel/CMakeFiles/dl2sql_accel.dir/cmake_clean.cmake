file(REMOVE_RECURSE
  "CMakeFiles/dl2sql_accel.dir/device.cc.o"
  "CMakeFiles/dl2sql_accel.dir/device.cc.o.d"
  "CMakeFiles/dl2sql_accel.dir/thread_pool.cc.o"
  "CMakeFiles/dl2sql_accel.dir/thread_pool.cc.o.d"
  "libdl2sql_accel.a"
  "libdl2sql_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl2sql_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
