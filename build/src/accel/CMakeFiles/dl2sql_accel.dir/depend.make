# Empty dependencies file for dl2sql_accel.
# This may be replaced when dependencies are built.
