file(REMOVE_RECURSE
  "CMakeFiles/dl2sql_nn.dir/blocks.cc.o"
  "CMakeFiles/dl2sql_nn.dir/blocks.cc.o.d"
  "CMakeFiles/dl2sql_nn.dir/builders.cc.o"
  "CMakeFiles/dl2sql_nn.dir/builders.cc.o.d"
  "CMakeFiles/dl2sql_nn.dir/compute.cc.o"
  "CMakeFiles/dl2sql_nn.dir/compute.cc.o.d"
  "CMakeFiles/dl2sql_nn.dir/layers.cc.o"
  "CMakeFiles/dl2sql_nn.dir/layers.cc.o.d"
  "CMakeFiles/dl2sql_nn.dir/model.cc.o"
  "CMakeFiles/dl2sql_nn.dir/model.cc.o.d"
  "CMakeFiles/dl2sql_nn.dir/serialize.cc.o"
  "CMakeFiles/dl2sql_nn.dir/serialize.cc.o.d"
  "libdl2sql_nn.a"
  "libdl2sql_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl2sql_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
