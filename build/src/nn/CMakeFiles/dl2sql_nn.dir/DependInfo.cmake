
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/blocks.cc" "src/nn/CMakeFiles/dl2sql_nn.dir/blocks.cc.o" "gcc" "src/nn/CMakeFiles/dl2sql_nn.dir/blocks.cc.o.d"
  "/root/repo/src/nn/builders.cc" "src/nn/CMakeFiles/dl2sql_nn.dir/builders.cc.o" "gcc" "src/nn/CMakeFiles/dl2sql_nn.dir/builders.cc.o.d"
  "/root/repo/src/nn/compute.cc" "src/nn/CMakeFiles/dl2sql_nn.dir/compute.cc.o" "gcc" "src/nn/CMakeFiles/dl2sql_nn.dir/compute.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/dl2sql_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/dl2sql_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/nn/CMakeFiles/dl2sql_nn.dir/model.cc.o" "gcc" "src/nn/CMakeFiles/dl2sql_nn.dir/model.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/dl2sql_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/dl2sql_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dl2sql_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/dl2sql_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dl2sql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
