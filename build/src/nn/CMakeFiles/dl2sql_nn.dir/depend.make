# Empty dependencies file for dl2sql_nn.
# This may be replaced when dependencies are built.
