file(REMOVE_RECURSE
  "libdl2sql_nn.a"
)
