file(REMOVE_RECURSE
  "libdl2sql_db.a"
)
