
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/catalog.cc" "src/db/CMakeFiles/dl2sql_db.dir/catalog.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/catalog.cc.o.d"
  "/root/repo/src/db/codec.cc" "src/db/CMakeFiles/dl2sql_db.dir/codec.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/codec.cc.o.d"
  "/root/repo/src/db/column.cc" "src/db/CMakeFiles/dl2sql_db.dir/column.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/column.cc.o.d"
  "/root/repo/src/db/cost_model.cc" "src/db/CMakeFiles/dl2sql_db.dir/cost_model.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/cost_model.cc.o.d"
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/dl2sql_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/database.cc.o.d"
  "/root/repo/src/db/eval.cc" "src/db/CMakeFiles/dl2sql_db.dir/eval.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/eval.cc.o.d"
  "/root/repo/src/db/exec/symmetric_hash_join.cc" "src/db/CMakeFiles/dl2sql_db.dir/exec/symmetric_hash_join.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/exec/symmetric_hash_join.cc.o.d"
  "/root/repo/src/db/expr.cc" "src/db/CMakeFiles/dl2sql_db.dir/expr.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/expr.cc.o.d"
  "/root/repo/src/db/index.cc" "src/db/CMakeFiles/dl2sql_db.dir/index.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/index.cc.o.d"
  "/root/repo/src/db/optimizer.cc" "src/db/CMakeFiles/dl2sql_db.dir/optimizer.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/optimizer.cc.o.d"
  "/root/repo/src/db/persistence.cc" "src/db/CMakeFiles/dl2sql_db.dir/persistence.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/persistence.cc.o.d"
  "/root/repo/src/db/plan.cc" "src/db/CMakeFiles/dl2sql_db.dir/plan.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/plan.cc.o.d"
  "/root/repo/src/db/planner.cc" "src/db/CMakeFiles/dl2sql_db.dir/planner.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/planner.cc.o.d"
  "/root/repo/src/db/sql/lexer.cc" "src/db/CMakeFiles/dl2sql_db.dir/sql/lexer.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/sql/lexer.cc.o.d"
  "/root/repo/src/db/sql/parser.cc" "src/db/CMakeFiles/dl2sql_db.dir/sql/parser.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/sql/parser.cc.o.d"
  "/root/repo/src/db/sql/printer.cc" "src/db/CMakeFiles/dl2sql_db.dir/sql/printer.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/sql/printer.cc.o.d"
  "/root/repo/src/db/stats.cc" "src/db/CMakeFiles/dl2sql_db.dir/stats.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/stats.cc.o.d"
  "/root/repo/src/db/table.cc" "src/db/CMakeFiles/dl2sql_db.dir/table.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/table.cc.o.d"
  "/root/repo/src/db/types.cc" "src/db/CMakeFiles/dl2sql_db.dir/types.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/types.cc.o.d"
  "/root/repo/src/db/udf.cc" "src/db/CMakeFiles/dl2sql_db.dir/udf.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/udf.cc.o.d"
  "/root/repo/src/db/value.cc" "src/db/CMakeFiles/dl2sql_db.dir/value.cc.o" "gcc" "src/db/CMakeFiles/dl2sql_db.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dl2sql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
