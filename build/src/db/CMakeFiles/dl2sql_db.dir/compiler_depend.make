# Empty compiler generated dependencies file for dl2sql_db.
# This may be replaced when dependencies are built.
