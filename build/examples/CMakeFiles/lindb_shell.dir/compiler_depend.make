# Empty compiler generated dependencies file for lindb_shell.
# This may be replaced when dependencies are built.
