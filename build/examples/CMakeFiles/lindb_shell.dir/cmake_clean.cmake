file(REMOVE_RECURSE
  "CMakeFiles/lindb_shell.dir/lindb_shell.cpp.o"
  "CMakeFiles/lindb_shell.dir/lindb_shell.cpp.o.d"
  "lindb_shell"
  "lindb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lindb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
