# Empty compiler generated dependencies file for textile_defect_detection.
# This may be replaced when dependencies are built.
