file(REMOVE_RECURSE
  "CMakeFiles/textile_defect_detection.dir/textile_defect_detection.cpp.o"
  "CMakeFiles/textile_defect_detection.dir/textile_defect_detection.cpp.o.d"
  "textile_defect_detection"
  "textile_defect_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textile_defect_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
