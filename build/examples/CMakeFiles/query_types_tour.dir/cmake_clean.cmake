file(REMOVE_RECURSE
  "CMakeFiles/query_types_tour.dir/query_types_tour.cpp.o"
  "CMakeFiles/query_types_tour.dir/query_types_tour.cpp.o.d"
  "query_types_tour"
  "query_types_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_types_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
