# Empty compiler generated dependencies file for batch_inference.
# This may be replaced when dependencies are built.
