file(REMOVE_RECURSE
  "CMakeFiles/batch_inference.dir/batch_inference.cpp.o"
  "CMakeFiles/batch_inference.dir/batch_inference.cpp.o.d"
  "batch_inference"
  "batch_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
