# Empty compiler generated dependencies file for bench_table6_depth.
# This may be replaced when dependencies are built.
