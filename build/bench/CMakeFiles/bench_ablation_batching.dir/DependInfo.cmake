
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_batching.cc" "bench/CMakeFiles/bench_ablation_batching.dir/ablation_batching.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_batching.dir/ablation_batching.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/dl2sql_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engines/CMakeFiles/dl2sql_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/dl2sql/CMakeFiles/dl2sql_dl2sql.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/dl2sql_db.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dl2sql_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dl2sql_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/dl2sql_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dl2sql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
