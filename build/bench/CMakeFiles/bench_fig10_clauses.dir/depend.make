# Empty dependencies file for bench_fig10_clauses.
# This may be replaced when dependencies are built.
