file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_clauses.dir/fig10_clauses.cc.o"
  "CMakeFiles/bench_fig10_clauses.dir/fig10_clauses.cc.o.d"
  "bench_fig10_clauses"
  "bench_fig10_clauses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_clauses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
