# Empty dependencies file for bench_fig13_operators.
# This may be replaced when dependencies are built.
