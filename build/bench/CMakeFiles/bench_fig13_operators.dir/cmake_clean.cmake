file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_operators.dir/fig13_operators.cc.o"
  "CMakeFiles/bench_fig13_operators.dir/fig13_operators.cc.o.d"
  "bench_fig13_operators"
  "bench_fig13_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
