# Empty dependencies file for bench_table5_selectivity.
# This may be replaced when dependencies are built.
