file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_selectivity.dir/table5_selectivity.cc.o"
  "CMakeFiles/bench_table5_selectivity.dir/table5_selectivity.cc.o.d"
  "bench_table5_selectivity"
  "bench_table5_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
