file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_costmodel.dir/fig12_costmodel.cc.o"
  "CMakeFiles/bench_fig12_costmodel.dir/fig12_costmodel.cc.o.d"
  "bench_fig12_costmodel"
  "bench_fig12_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
