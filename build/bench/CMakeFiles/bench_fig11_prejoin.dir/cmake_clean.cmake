file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_prejoin.dir/fig11_prejoin.cc.o"
  "CMakeFiles/bench_fig11_prejoin.dir/fig11_prejoin.cc.o.d"
  "bench_fig11_prejoin"
  "bench_fig11_prejoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_prejoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
