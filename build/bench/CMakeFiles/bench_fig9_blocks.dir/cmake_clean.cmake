file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_blocks.dir/fig9_blocks.cc.o"
  "CMakeFiles/bench_fig9_blocks.dir/fig9_blocks.cc.o.d"
  "bench_fig9_blocks"
  "bench_fig9_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
