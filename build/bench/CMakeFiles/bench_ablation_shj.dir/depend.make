# Empty dependencies file for bench_ablation_shj.
# This may be replaced when dependencies are built.
