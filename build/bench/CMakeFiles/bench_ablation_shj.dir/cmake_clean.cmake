file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shj.dir/ablation_symmetric_join.cc.o"
  "CMakeFiles/bench_ablation_shj.dir/ablation_symmetric_join.cc.o.d"
  "bench_ablation_shj"
  "bench_ablation_shj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
