file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_hints.dir/fig14_hints.cc.o"
  "CMakeFiles/bench_fig14_hints.dir/fig14_hints.cc.o.d"
  "bench_fig14_hints"
  "bench_fig14_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
