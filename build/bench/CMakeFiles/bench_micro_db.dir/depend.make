# Empty dependencies file for bench_micro_db.
# This may be replaced when dependencies are built.
