file(REMOVE_RECURSE
  "CMakeFiles/db_advanced_test.dir/db/db_advanced_test.cc.o"
  "CMakeFiles/db_advanced_test.dir/db/db_advanced_test.cc.o.d"
  "db_advanced_test"
  "db_advanced_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
