file(REMOVE_RECURSE
  "CMakeFiles/symmetric_join_test.dir/db/symmetric_join_test.cc.o"
  "CMakeFiles/symmetric_join_test.dir/db/symmetric_join_test.cc.o.d"
  "symmetric_join_test"
  "symmetric_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetric_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
