# Empty dependencies file for symmetric_join_test.
# This may be replaced when dependencies are built.
