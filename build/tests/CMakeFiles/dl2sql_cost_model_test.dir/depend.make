# Empty dependencies file for dl2sql_cost_model_test.
# This may be replaced when dependencies are built.
