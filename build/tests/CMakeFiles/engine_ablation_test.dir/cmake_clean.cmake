file(REMOVE_RECURSE
  "CMakeFiles/engine_ablation_test.dir/engines/engine_ablation_test.cc.o"
  "CMakeFiles/engine_ablation_test.dir/engines/engine_ablation_test.cc.o.d"
  "engine_ablation_test"
  "engine_ablation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
