# Empty dependencies file for nn_compute_test.
# This may be replaced when dependencies are built.
