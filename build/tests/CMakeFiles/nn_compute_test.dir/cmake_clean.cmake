file(REMOVE_RECURSE
  "CMakeFiles/nn_compute_test.dir/nn/compute_test.cc.o"
  "CMakeFiles/nn_compute_test.dir/nn/compute_test.cc.o.d"
  "nn_compute_test"
  "nn_compute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_compute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
