# Empty compiler generated dependencies file for dl2sql_fuzz_test.
# This may be replaced when dependencies are built.
