file(REMOVE_RECURSE
  "CMakeFiles/join_reorder_test.dir/db/join_reorder_test.cc.o"
  "CMakeFiles/join_reorder_test.dir/db/join_reorder_test.cc.o.d"
  "join_reorder_test"
  "join_reorder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_reorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
