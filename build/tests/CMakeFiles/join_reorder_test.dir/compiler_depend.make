# Empty compiler generated dependencies file for join_reorder_test.
# This may be replaced when dependencies are built.
