file(REMOVE_RECURSE
  "CMakeFiles/dl2sql_batch_test.dir/dl2sql/batch_test.cc.o"
  "CMakeFiles/dl2sql_batch_test.dir/dl2sql/batch_test.cc.o.d"
  "dl2sql_batch_test"
  "dl2sql_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl2sql_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
