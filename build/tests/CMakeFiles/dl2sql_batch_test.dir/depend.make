# Empty dependencies file for dl2sql_batch_test.
# This may be replaced when dependencies are built.
