file(REMOVE_RECURSE
  "CMakeFiles/model_family_test.dir/engines/model_family_test.cc.o"
  "CMakeFiles/model_family_test.dir/engines/model_family_test.cc.o.d"
  "model_family_test"
  "model_family_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
