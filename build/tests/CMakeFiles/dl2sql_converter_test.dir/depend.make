# Empty dependencies file for dl2sql_converter_test.
# This may be replaced when dependencies are built.
