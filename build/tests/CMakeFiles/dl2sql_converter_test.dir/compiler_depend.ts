# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dl2sql_converter_test.
