file(REMOVE_RECURSE
  "CMakeFiles/db_basic_test.dir/db/db_basic_test.cc.o"
  "CMakeFiles/db_basic_test.dir/db/db_basic_test.cc.o.d"
  "db_basic_test"
  "db_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
